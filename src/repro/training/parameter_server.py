"""Parameter-server group state.

In the asynchronous architecture the paper studies, parameter servers hold
the model parameters, apply gradient updates pushed by the workers, and
serve fresh parameters back.  The group tracks how many servers exist, how
many updates they have applied, and exposes the capacity/utilization
queries the session and the bottleneck detector need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.perf.ps_capacity import PSCapacityModel


@dataclass
class ParameterServerGroup:
    """The parameter servers of one training session.

    Attributes:
        count: Number of parameter servers.
        region_name: Region the servers run in.
        capacity_model: Calibrated capacity model used for utilization and
            slowdown queries.
        updates_applied: Number of gradient updates applied so far.
    """

    count: int = 1
    region_name: str = "us-east1"
    capacity_model: PSCapacityModel = field(default_factory=PSCapacityModel)
    updates_applied: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("a training session needs at least one PS")

    # ------------------------------------------------------------------
    # Capacity queries.
    # ------------------------------------------------------------------
    def capacity(self, gradient_bytes: float) -> float:
        """Maximum update throughput (updates/second) of the group."""
        return self.capacity_model.capacity(gradient_bytes, self.count)

    def utilization(self, worker_speeds: Sequence[float], gradient_bytes: float) -> float:
        """Demand / capacity ratio for the given uncontended worker speeds."""
        return self.capacity_model.utilization(worker_speeds, gradient_bytes, self.count)

    def worker_slowdown(self, worker_speeds: Sequence[float], gradient_bytes: float,
                        scaling_efficiencies: Optional[Sequence[float]] = None) -> float:
        """Per-worker step-time inflation caused by the PS bottleneck."""
        return self.capacity_model.worker_slowdown(worker_speeds, gradient_bytes,
                                                   self.count, scaling_efficiencies)

    def cluster_speed(self, worker_speeds: Sequence[float], gradient_bytes: float,
                      scaling_efficiencies: Optional[Sequence[float]] = None) -> float:
        """Aggregate cluster speed (steps/second) including the bottleneck."""
        return self.capacity_model.cluster_speed(worker_speeds, gradient_bytes,
                                                 self.count, scaling_efficiencies)

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def record_updates(self, steps: int) -> None:
        """Record that ``steps`` gradient updates were applied."""
        if steps < 0:
            raise ConfigurationError("steps must be non-negative")
        self.updates_applied += steps

    def add_servers(self, count: int = 1) -> None:
        """Add parameter servers (the Fig. 12 mitigation).

        Note that current deep-learning frameworks require a session restart
        for this to take effect; the session applies that overhead.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        self.count += count
