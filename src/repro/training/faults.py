"""Fault injection for training sessions.

The paper's recomputation experiment (Section V-E, Fig. 11) *manually*
revokes the chief worker at a chosen step and adds a replacement at a
chosen later point.  :class:`FaultInjector` provides that control for any
session, and is also handy for users who want to test the resilience of
their own configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.training.cluster import WorkerSpec
from repro.training.session import TrainingSession


@dataclass
class _PlannedRevocation:
    worker_id: str
    at_step: int
    done: bool = False


@dataclass
class _PlannedReplacement:
    spec: WorkerSpec
    at_step: int
    overhead_seconds: float
    reuse_chief_ip: bool
    cold_start: bool
    done: bool = False


class FaultInjector:
    """Schedules manual revocations and replacements at given cluster steps.

    The injector polls the session at a fixed simulated-time cadence and
    fires each planned fault once the session's cluster step count crosses
    the planned step.

    Args:
        session: The training session to inject into.
        poll_interval_seconds: How often to check the session's progress.
    """

    def __init__(self, session: TrainingSession, poll_interval_seconds: float = 1.0):
        if poll_interval_seconds <= 0:
            raise ConfigurationError("poll_interval_seconds must be positive")
        self.session = session
        self.poll_interval_seconds = poll_interval_seconds
        self._revocations: List[_PlannedRevocation] = []
        self._replacements: List[_PlannedReplacement] = []
        self._armed = False

    # ------------------------------------------------------------------
    # Planning.
    # ------------------------------------------------------------------
    def revoke_at_step(self, worker_id: str, step: int) -> None:
        """Plan a manual revocation of ``worker_id`` at cluster step ``step``."""
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        self._revocations.append(_PlannedRevocation(worker_id=worker_id, at_step=step))
        self._arm()

    def replace_at_step(self, spec: WorkerSpec, step: int,
                        overhead_seconds: float = 0.0,
                        reuse_chief_ip: bool = False,
                        cold_start: bool = True) -> None:
        """Plan the addition of a replacement worker at cluster step ``step``."""
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        self._replacements.append(_PlannedReplacement(
            spec=spec, at_step=step, overhead_seconds=overhead_seconds,
            reuse_chief_ip=reuse_chief_ip, cold_start=cold_start))
        self._arm()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        if self._armed:
            return
        self._armed = True
        self.session.simulator.schedule(self.poll_interval_seconds, self._poll,
                                        label="fault-injector:poll")

    def _pending(self) -> bool:
        return (any(not plan.done for plan in self._revocations)
                or any(not plan.done for plan in self._replacements))

    def _poll(self, _sim) -> None:
        if self.session.finished or not self._pending():
            self._armed = False
            return
        step = self.session.cluster_steps
        for plan in self._revocations:
            if not plan.done and step >= plan.at_step:
                self.session.handle_revocation(plan.worker_id)
                plan.done = True
        for plan in self._replacements:
            if not plan.done and step >= plan.at_step:
                self.session.add_worker(plan.spec,
                                        overhead_seconds=plan.overhead_seconds,
                                        cold_start=plan.cold_start,
                                        reuse_chief_ip=plan.reuse_chief_ip)
                plan.done = True
        self.session.simulator.schedule(self.poll_interval_seconds, self._poll,
                                        label="fault-injector:poll")
