"""Worker state within a training session."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.training.cluster import WorkerSpec


@dataclass
class WorkerState:
    """Mutable state of one GPU worker inside a training session.

    Attributes:
        worker_id: Session-unique identifier (``"worker-0"``).
        spec: The worker's static specification (GPU type, region, class).
        is_chief: Whether this worker currently holds the chief role
            (responsible for checkpointing).
        active: Whether the worker is currently training (False after a
            revocation, before a replacement joins).
        steps_done: Training steps this worker has completed.
        joined_at: Simulation time the worker joined the session.
        revoked_at: Simulation time the worker was revoked, if it was.
        instance_id: Cloud instance backing this worker, when the session is
            driven through the simulated provider.
    """

    worker_id: str
    spec: WorkerSpec
    is_chief: bool = False
    active: bool = True
    steps_done: int = 0
    joined_at: float = 0.0
    revoked_at: Optional[float] = None
    instance_id: Optional[str] = None
    labels: dict = field(default_factory=dict)

    @property
    def gpu_name(self) -> str:
        """GPU type of the worker."""
        return self.spec.gpu_name

    @property
    def is_transient(self) -> bool:
        """Whether the worker runs on a transient server."""
        return self.spec.transient

    def revoke(self, at_time: float) -> None:
        """Mark the worker as revoked at ``at_time``."""
        self.active = False
        self.revoked_at = at_time

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "chief" if self.is_chief else "worker"
        status = "active" if self.active else "revoked"
        return (f"WorkerState({self.worker_id}, {self.gpu_name}, {role}, {status}, "
                f"steps={self.steps_done})")
