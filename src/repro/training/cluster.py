"""Cluster specifications.

The paper describes clusters with the shorthand ``(x, y, z)`` — the number
of K80, P100, and V100 GPU workers — plus a number of CPU-only parameter
servers.  :class:`ClusterSpec` captures that configuration together with
placement (region) and server class (transient vs. on-demand) choices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkerSpec:
    """Specification of one GPU worker.

    Attributes:
        gpu_name: GPU type (``"k80"``, ``"p100"``, ``"v100"``).
        region_name: Region the worker runs in.
        transient: Whether the worker is a transient (preemptible) server.
    """

    gpu_name: str
    region_name: str = "us-east1"
    transient: bool = True

    def __post_init__(self) -> None:
        gpu = get_gpu(self.gpu_name)
        region = get_region(self.region_name)
        if not region.offers(gpu.name):
            raise ConfigurationError(
                f"region {region.name!r} does not offer GPU {gpu.name!r}")
        object.__setattr__(self, "gpu_name", gpu.name)
        object.__setattr__(self, "region_name", region.name)


@dataclass(frozen=True)
class ClusterSpec:
    """Specification of a training cluster.

    Attributes:
        workers: GPU worker specifications, in launch order; the first
            worker is the chief by default.
        num_parameter_servers: Number of CPU-only parameter servers.
        ps_region_name: Region hosting the parameter servers (and the
            checkpoint bucket); the paper always co-locates them with the
            workers.
    """

    workers: Tuple[WorkerSpec, ...]
    num_parameter_servers: int = 1
    ps_region_name: str = "us-east1"

    def __post_init__(self) -> None:
        if not self.workers:
            raise ConfigurationError("a cluster needs at least one GPU worker")
        if self.num_parameter_servers < 1:
            raise ConfigurationError("a cluster needs at least one parameter server")
        get_region(self.ps_region_name)
        object.__setattr__(self, "workers", tuple(self.workers))

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(cls, k80: int = 0, p100: int = 0, v100: int = 0,
                    region_name: str = "us-east1", transient: bool = True,
                    num_parameter_servers: int = 1) -> "ClusterSpec":
        """Build a cluster from the paper's ``(x, y, z)`` notation.

        Args:
            k80: Number of K80 workers (``x``).
            p100: Number of P100 workers (``y``).
            v100: Number of V100 workers (``z``).
            region_name: Region for all servers.
            transient: Whether GPU workers are transient servers.
            num_parameter_servers: Number of parameter servers.
        """
        if min(k80, p100, v100) < 0:
            raise ConfigurationError("worker counts must be non-negative")
        workers: List[WorkerSpec] = []
        for gpu_name, count in (("k80", k80), ("p100", p100), ("v100", v100)):
            workers.extend(WorkerSpec(gpu_name=gpu_name, region_name=region_name,
                                      transient=transient)
                           for _ in range(count))
        return cls(workers=tuple(workers), num_parameter_servers=num_parameter_servers,
                   ps_region_name=region_name)

    @classmethod
    def single(cls, gpu_name: str, region_name: str = "us-east1",
               transient: bool = True) -> "ClusterSpec":
        """The paper's simplest cluster: one GPU worker plus one PS."""
        return cls(workers=(WorkerSpec(gpu_name=gpu_name, region_name=region_name,
                                       transient=transient),),
                   num_parameter_servers=1, ps_region_name=region_name)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Number of GPU workers."""
        return len(self.workers)

    def counts(self) -> Tuple[int, int, int]:
        """The ``(x, y, z)`` = (#K80, #P100, #V100) composition."""
        tally: Dict[str, int] = {"k80": 0, "p100": 0, "v100": 0}
        for worker in self.workers:
            tally[worker.gpu_name] += 1
        return (tally["k80"], tally["p100"], tally["v100"])

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the cluster mixes GPU types."""
        return len({worker.gpu_name for worker in self.workers}) > 1

    @property
    def is_transient(self) -> bool:
        """Whether any worker is a transient server."""
        return any(worker.transient for worker in self.workers)

    def gpu_names(self) -> Sequence[str]:
        """GPU type of each worker, in order."""
        return [worker.gpu_name for worker in self.workers]

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"(2, 1, 1) + 1 PS"``."""
        x, y, z = self.counts()
        return f"({x}, {y}, {z}) + {self.num_parameter_servers} PS"

    # ------------------------------------------------------------------
    # Derived clusters.
    # ------------------------------------------------------------------
    def with_parameter_servers(self, num_parameter_servers: int) -> "ClusterSpec":
        """The same cluster with a different number of parameter servers."""
        return replace(self, num_parameter_servers=num_parameter_servers)

    def with_additional_worker(self, worker: WorkerSpec) -> "ClusterSpec":
        """The same cluster with one extra worker appended."""
        return replace(self, workers=self.workers + (worker,))
