"""Distributed training substrate.

A discrete-event simulation of TensorFlow-style asynchronous
parameter-server training (Section II of the paper): GPU workers compute
gradients at their own pace, parameter servers apply updates, one chief
worker periodically checkpoints the model to cloud storage, and transient
workers can be revoked and replaced while training continues.
"""

from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import TrainingJob
from repro.training.trace import (
    CheckpointRecord,
    ReplacementRecord,
    RevocationRecord,
    StepRecord,
    TrainingTrace,
)
from repro.training.parameter_server import ParameterServerGroup
from repro.training.worker import WorkerState
from repro.training.session import TrainingSession
from repro.training.faults import FaultInjector

__all__ = [
    "ClusterSpec",
    "WorkerSpec",
    "TrainingJob",
    "TrainingTrace",
    "StepRecord",
    "CheckpointRecord",
    "RevocationRecord",
    "ReplacementRecord",
    "ParameterServerGroup",
    "WorkerState",
    "TrainingSession",
    "FaultInjector",
]
