"""Asynchronous parameter-server training session simulation.

This is the reproduction's stand-in for running transient-TensorFlow on a
real cluster.  Workers complete training steps at GPU-dependent speeds,
slowed when the parameter servers saturate; the chief worker periodically
checkpoints the model (sequentially with its own training); transient
workers can be revoked mid-training and replaced later; and everything is
recorded into a :class:`~repro.training.trace.TrainingTrace` for the
CM-DARE performance tracker to analyze.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.cloud.storage import CloudStorage
from repro.errors import ConfigurationError, TrainingError
from repro.perf.calibration import SESSION_RESTART_SECONDS
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.ps_capacity import PSCapacityModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import TrainingJob
from repro.training.parameter_server import ParameterServerGroup
from repro.training.trace import (
    CheckpointRecord,
    ReplacementRecord,
    RevocationRecord,
    StepRecord,
    TrainingTrace,
)
from repro.training.worker import WorkerState

#: Default number of training steps simulated per discrete event.  Larger
#: chunks make long simulations cheaper at a negligible fidelity cost; the
#: paper's own speed metric is already a 100-step average.
DEFAULT_STEPS_PER_EVENT = 10


class TrainingSession:
    """One simulated distributed training session.

    Args:
        simulator: Discrete-event simulator to schedule on.
        cluster: Cluster specification (workers and parameter servers).
        job: Training workload.
        streams: Named random streams; defaults to a fresh seed-0 family.
        step_time_model: Ground-truth step-time model (shared across
            sessions in a campaign so calibration stays consistent).
        ps_capacity_model: Ground-truth parameter-server capacity model.
        checkpoint_time_model: Ground-truth checkpoint-duration model.
        storage: Optional cloud storage bucket to upload checkpoints to.
        steps_per_event: Steps simulated per worker event.
        chief_worker_index: Index of the worker that starts as chief.
    """

    def __init__(self, simulator: Simulator, cluster: ClusterSpec, job: TrainingJob,
                 streams: Optional[RandomStreams] = None,
                 step_time_model: Optional[StepTimeModel] = None,
                 ps_capacity_model: Optional[PSCapacityModel] = None,
                 checkpoint_time_model: Optional[CheckpointTimeModel] = None,
                 storage: Optional[CloudStorage] = None,
                 steps_per_event: int = DEFAULT_STEPS_PER_EVENT,
                 chief_worker_index: int = 0):
        if steps_per_event < 1:
            raise ConfigurationError("steps_per_event must be >= 1")
        if not 0 <= chief_worker_index < cluster.num_workers:
            raise ConfigurationError("chief_worker_index out of range")
        self.simulator = simulator
        self.cluster = cluster
        self.job = job
        self.streams = streams if streams is not None else RandomStreams(seed=0)
        self.step_time_model = (step_time_model if step_time_model is not None
                                else StepTimeModel(rng=self.streams.get("step_time")))
        self.checkpoint_time_model = (
            checkpoint_time_model if checkpoint_time_model is not None
            else CheckpointTimeModel(rng=self.streams.get("checkpoint")))
        self.ps_group = ParameterServerGroup(
            count=cluster.num_parameter_servers,
            region_name=cluster.ps_region_name,
            capacity_model=ps_capacity_model or PSCapacityModel())
        self.storage = storage
        self.steps_per_event = steps_per_event

        self.trace = TrainingTrace(model_name=job.model_name,
                                   cluster_description=cluster.describe(),
                                   start_time=simulator.now)
        self.workers: Dict[str, WorkerState] = {}
        self._pending_events: Dict[str, Event] = {}
        self._worker_counter = itertools.count()
        self._cluster_steps = 0
        self._last_checkpoint_step = 0
        self._next_checkpoint_step = job.checkpoint_interval_steps
        self._restart_until = 0.0
        self._finished = False
        self.on_finished: List[Callable[["TrainingSession"], None]] = []
        self.on_revocation: List[Callable[["TrainingSession", WorkerState], None]] = []

        for index, spec in enumerate(cluster.workers):
            self._register_worker(spec, is_chief=(index == chief_worker_index),
                                  joined_at=simulator.now)

    # ------------------------------------------------------------------
    # Worker management.
    # ------------------------------------------------------------------
    def _register_worker(self, spec: WorkerSpec, is_chief: bool,
                         joined_at: float) -> WorkerState:
        worker_id = f"worker-{next(self._worker_counter)}"
        worker = WorkerState(worker_id=worker_id, spec=spec, is_chief=is_chief,
                             joined_at=joined_at)
        self.workers[worker_id] = worker
        return worker

    def active_workers(self) -> List[WorkerState]:
        """Workers currently training."""
        return [worker for worker in self.workers.values() if worker.active]

    def chief(self) -> Optional[WorkerState]:
        """The worker currently holding the chief role, if any is active."""
        for worker in self.workers.values():
            if worker.is_chief and worker.active:
                return worker
        return None

    @property
    def cluster_steps(self) -> int:
        """Cluster-wide training steps counted toward the workload."""
        return self._cluster_steps

    @property
    def finished(self) -> bool:
        """Whether the workload has completed."""
        return self._finished

    @property
    def steps_since_checkpoint(self) -> int:
        """Cluster steps completed since the last checkpoint."""
        return self._cluster_steps - self._last_checkpoint_step

    # ------------------------------------------------------------------
    # Effective speed computation.
    # ------------------------------------------------------------------
    def _worker_speeds(self) -> Dict[str, float]:
        gflops = self.job.profile.gflops
        return {worker.worker_id: self.step_time_model.mean_speed(gflops, worker.gpu_name)
                for worker in self.active_workers()}

    def _scaling_efficiencies(self) -> Dict[str, float]:
        gflops = self.job.profile.gflops
        return {worker.worker_id:
                self.step_time_model.scaling_efficiency(gflops, worker.gpu_name)
                for worker in self.active_workers()}

    def current_slowdown(self) -> float:
        """Current PS-induced per-worker step-time inflation factor."""
        speeds = self._worker_speeds()
        if not speeds:
            return 1.0
        efficiencies = self._scaling_efficiencies()
        ordered = list(speeds)
        return self.ps_group.worker_slowdown(
            [speeds[w] for w in ordered],
            self.job.profile.parameter_bytes,
            [efficiencies[w] for w in ordered])

    def current_utilization(self) -> float:
        """Current parameter-server utilization (demand / capacity)."""
        speeds = list(self._worker_speeds().values())
        if not speeds:
            return 0.0
        return self.ps_group.utilization(speeds, self.job.profile.parameter_bytes)

    def current_cluster_speed(self) -> float:
        """Analytic cluster speed (steps/second) for the current membership."""
        speeds = self._worker_speeds()
        if not speeds:
            return 0.0
        efficiencies = self._scaling_efficiencies()
        ordered = list(speeds)
        return self.ps_group.cluster_speed(
            [speeds[w] for w in ordered],
            self.job.profile.parameter_bytes,
            [efficiencies[w] for w in ordered])

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first chunk of every worker."""
        if self._finished:
            raise TrainingError("session already finished")
        for worker in self.active_workers():
            self._schedule_chunk(worker)

    def _chunk_duration(self, worker: WorkerState, steps: int) -> float:
        slowdown = self.current_slowdown()
        utilization = self.current_utilization()
        gflops = self.job.profile.gflops
        duration = 0.0
        for offset in range(steps):
            duration += self.step_time_model.sample_step_time(
                gflops, worker.gpu_name, step_index=worker.steps_done + offset,
                ps_utilization=max(0.0, utilization - 0.5), slowdown=slowdown)
        return duration

    def _schedule_chunk(self, worker: WorkerState, extra_delay: float = 0.0) -> None:
        if self._finished or not worker.active:
            return
        steps = self.steps_per_event
        duration = self._chunk_duration(worker, steps)
        delay = extra_delay + duration
        if self.simulator.now + extra_delay < self._restart_until:
            delay += self._restart_until - (self.simulator.now + extra_delay)
        start_time = self.simulator.now + delay - duration

        def complete(_sim: Simulator, worker=worker, steps=steps,
                     start_time=start_time) -> None:
            self._complete_chunk(worker, steps, start_time)

        event = self.simulator.schedule(delay, complete,
                                        label=f"{worker.worker_id}:chunk")
        self._pending_events[worker.worker_id] = event

    def _complete_chunk(self, worker: WorkerState, steps: int, start_time: float) -> None:
        if self._finished or not worker.active:
            return
        worker.steps_done += steps
        self._cluster_steps += steps
        self.ps_group.record_updates(steps)
        self.trace.step_records.append(StepRecord(
            worker_id=worker.worker_id, start_time=start_time,
            end_time=self.simulator.now, steps=steps,
            cluster_step=self._cluster_steps, worker_step=worker.steps_done))

        if self._cluster_steps >= self.job.total_steps:
            self._finish()
            return

        checkpoint_delay = 0.0
        if worker.is_chief and self._cluster_steps >= self._next_checkpoint_step:
            checkpoint_delay = self._perform_checkpoint(worker)
        self._schedule_chunk(worker, extra_delay=checkpoint_delay)

    def _perform_checkpoint(self, worker: WorkerState) -> float:
        """Run a checkpoint on the (acting) chief; returns its duration."""
        duration = self.checkpoint_time_model.sample_time(self.job.profile.checkpoint)
        size = self.job.profile.checkpoint.total_bytes
        self.trace.checkpoint_records.append(CheckpointRecord(
            worker_id=worker.worker_id, start_time=self.simulator.now,
            duration=duration, cluster_step=self._cluster_steps, size_bytes=size))
        if self.storage is not None:
            key = f"checkpoints/{self.job.model_name}/model.ckpt-{self._cluster_steps}"
            self.storage.put(key, size, at_time=self.simulator.now + duration,
                             metadata={"model": self.job.model_name,
                                       "step": str(self._cluster_steps)})
        self._last_checkpoint_step = self._cluster_steps
        self._next_checkpoint_step += self.job.checkpoint_interval_steps
        return duration

    def _finish(self) -> None:
        self._finished = True
        self.trace.end_time = self.simulator.now
        for event in self._pending_events.values():
            event.cancel()
        self._pending_events.clear()
        for callback in self.on_finished:
            callback(self)

    # ------------------------------------------------------------------
    # Membership changes (revocations, replacements, PS scaling).
    # ------------------------------------------------------------------
    def handle_revocation(self, worker_id: str) -> WorkerState:
        """Revoke a worker: it stops training immediately.

        With CM-DARE's transient-TensorFlow, a revoked chief hands the
        checkpointing responsibility to another active worker, so training
        progress is preserved (Section V-E).
        """
        if worker_id not in self.workers:
            raise TrainingError(f"unknown worker {worker_id!r}")
        worker = self.workers[worker_id]
        if not worker.active:
            return worker
        worker.revoke(self.simulator.now)
        pending = self._pending_events.pop(worker_id, None)
        if pending is not None:
            pending.cancel()
        self.trace.revocation_records.append(RevocationRecord(
            worker_id=worker_id, time=self.simulator.now,
            cluster_step=self._cluster_steps, was_chief=worker.is_chief))
        if worker.is_chief:
            self._handoff_chief(worker)
        for callback in self.on_revocation:
            callback(self, worker)
        return worker

    def _handoff_chief(self, revoked_chief: WorkerState) -> None:
        revoked_chief.is_chief = False
        replacement = next(iter(self.active_workers()), None)
        if replacement is not None:
            replacement.is_chief = True

    def add_worker(self, spec: WorkerSpec, overhead_seconds: float = 0.0,
                   cold_start: bool = True, as_chief: bool = False,
                   reuse_chief_ip: bool = False) -> WorkerState:
        """Add a (replacement) worker that starts training after an overhead.

        Args:
            spec: Specification of the new worker.
            overhead_seconds: Replacement overhead before the first step
                (cold/warm start cost, Fig. 10).
            cold_start: Whether the overhead corresponds to a cold start.
            as_chief: Whether the new worker takes the chief role.
            reuse_chief_ip: Reproduces the unmodified-TensorFlow behaviour of
                Section V-E: the replacement binds to the revoked chief's IP
                address, becomes chief, and forces the cluster to restart
                from the last checkpoint, discarding progress made since.
        """
        if overhead_seconds < 0:
            raise ConfigurationError("overhead_seconds must be non-negative")
        worker = self._register_worker(spec, is_chief=False,
                                       joined_at=self.simulator.now + overhead_seconds)
        self.trace.replacement_records.append(ReplacementRecord(
            worker_id=worker.worker_id, time=self.simulator.now,
            cluster_step=self._cluster_steps, cold_start=cold_start,
            overhead_seconds=overhead_seconds))

        def join(_sim: Simulator) -> None:
            if self._finished:
                return
            if as_chief or reuse_chief_ip:
                for other in self.workers.values():
                    other.is_chief = False
                worker.is_chief = True
            if reuse_chief_ip:
                self._recompute_from_checkpoint()
            self._schedule_chunk(worker)

        self.simulator.schedule(overhead_seconds, join,
                                label=f"{worker.worker_id}:join")
        return worker

    def _recompute_from_checkpoint(self) -> None:
        """Discard progress since the last checkpoint (legacy TF behaviour)."""
        discarded = self._cluster_steps - self._last_checkpoint_step
        self._cluster_steps = self._last_checkpoint_step
        self._next_checkpoint_step = (self._last_checkpoint_step
                                      + self.job.checkpoint_interval_steps)
        self._restart_until = self.simulator.now + SESSION_RESTART_SECONDS
        self.trace.step_records.append(StepRecord(
            worker_id="session-restart", start_time=self.simulator.now,
            end_time=self.simulator.now, steps=-discarded,
            cluster_step=self._cluster_steps))

    def add_parameter_server(self, count: int = 1) -> None:
        """Add parameter servers, paying the session-restart overhead.

        TensorFlow cannot add parameter servers to a live session; the paper
        measures the restart at roughly ten seconds (Section VI-B).
        """
        self.ps_group.add_servers(count)
        self._restart_until = max(self._restart_until,
                                  self.simulator.now + SESSION_RESTART_SECONDS)

    # ------------------------------------------------------------------
    # Convenience runners.
    # ------------------------------------------------------------------
    def run_to_completion(self, max_events: int = 5_000_000) -> TrainingTrace:
        """Start the session and run the simulator until the workload ends.

        The simulator is stepped only until the workload finishes, so events
        scheduled far in the future (e.g. the 24-hour reclamation of
        transient servers) do not advance the clock past the training run.
        """
        self.start()
        processed = 0
        while not self._finished and processed < max_events:
            if self.simulator.step() is None:
                break
            processed += 1
        if not self._finished:
            raise TrainingError(
                "training did not finish; the cluster may have lost all workers")
        return self.trace
