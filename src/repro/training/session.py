"""Asynchronous parameter-server training session simulation.

This is the reproduction's stand-in for running transient-TensorFlow on a
real cluster.  Workers complete training steps at GPU-dependent speeds,
slowed when the parameter servers saturate; the chief worker periodically
checkpoints the model (sequentially with its own training); transient
workers can be revoked mid-training and replaced later; and everything is
recorded into a :class:`~repro.training.trace.TrainingTrace` for the
CM-DARE performance tracker to analyze.

Simulation core performance
---------------------------
The session has two execution paths that are **bit-identical** by
contract (the golden-trace tests in ``tests/test_core_fastpath.py`` pin
this down):

* the *chunked* path — the original discrete-event loop: one heap event
  per ``steps_per_event`` steps per worker, one scalar RNG draw per step;
* the *fast-forward* path (:meth:`TrainingSession._fast_forward`, on by
  default) — whenever the next events due are this session's own chunk
  completions, the session pulls them out of the simulator heap and
  replays the exact same completion/schedule logic in a tight loop, up to
  its *disturbance horizon*: the first foreign event (a scheduled
  revocation, a replacement joining, a fault-injector poll, a controller
  wake-up, ...), or the end of the workload.  Checkpoints do not break the
  span — they draw from their own named RNG stream, so they are replayed
  in-line.  Step durations are drawn with vectorized
  :meth:`~repro.perf.step_time.StepTimeModel.sample_steps` calls (one
  ``Generator.normal`` per chunk instead of one per step), and when every
  active worker is past warm-up with the same step-time distribution and
  no foreign event is pending at all, the whole remaining workload's
  durations come from a *single* block draw.  Chunk rows are bulk-appended
  to the trace's columnar buffers.

Bit-identity holds because (a) the vector draws consume the shared
``step_time`` stream exactly like the scalar draws they replace, (b) every
time/duration expression is replicated operation-for-operation, and
(c) event sequence numbers are claimed from the simulator as the replay
goes, so any chunk re-materialized into the heap at a span boundary keeps
the exact (time, sequence) ordering the chunked path would have produced.
The per-worker RNG *order* is preserved too: draws happen at chunk
scheduling time, in completion order, on both paths.

Fleet-scale hooks
-----------------
Chunk-completion events are tagged with their owning session
(``Event.owner``), so a driver multiplexing many sessions on one simulator
(:mod:`repro.scenarios`) can map the heap top to the single session whose
fast-forward can progress in O(1).  A session additionally caches its
*disturbance horizon*: when :meth:`fast_forward` finds a foreign event at
the top of the heap it remembers that blocking event and, until the
blocker leaves the heap or the session schedules new chunks of its own
(tracked through the simulator's per-owner insertion epochs), later offers
return immediately without touching the heap at all.  Block-mode spans
draw their step durations in bounded segments and flush staged rows to the
columnar trace incrementally, and the trace buffers are shrunk to fit when
the workload finishes, so the fast path's peak memory stays close to the
chunked path's.  ``trace_level="summary"`` swaps the columnar trace for an
aggregates-only :class:`~repro.training.trace.StepRecordSummary` sink —
fleet runs that only consume end-of-run payloads keep O(1) trace memory
per job, with byte-identical payloads.

``REPRO_CORE_FASTFORWARD=0`` (or ``fast_forward=False``) forces the
chunked path.  The core-throughput baseline lives in
``benchmarks/BENCH_core.json``; regenerate it with
``python benchmarks/core_baseline.py`` after touching this module (CI runs
``python benchmarks/core_baseline.py --quick --check`` as a regression
gate).
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.storage import CloudStorage
from repro.errors import ConfigurationError, TrainingError
from repro.perf.calibration import SESSION_RESTART_SECONDS
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.ps_capacity import PSCapacityModel
from repro.perf.step_time import WARMUP_STEPS, StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.job import TrainingJob
from repro.training.parameter_server import ParameterServerGroup
from repro.training.trace import (
    CheckpointRecord,
    ReplacementRecord,
    RevocationRecord,
    TraceSink,
    TrainingTrace,
    make_step_sink,
)
from repro.training.worker import WorkerState

#: Default number of training steps simulated per discrete event.  Larger
#: chunks make long simulations cheaper at a negligible fidelity cost; the
#: paper's own speed metric is already a 100-step average.
DEFAULT_STEPS_PER_EVENT = 10

#: Environment switch for the vectorized fast-forward path (default on).
FASTFORWARD_ENV = "REPRO_CORE_FASTFORWARD"

#: Chunks whose durations are drawn per RNG call in block mode, and rows
#: staged before they are flushed to the trace: bounds the fast path's
#: transient memory (arrays of SEGMENT * steps_per_event floats) without
#: changing the draws — segmented ``Generator.normal`` fills consume the
#: bit stream exactly like one big fill.
FASTFORWARD_SEGMENT_CHUNKS = 1024


def _fast_forward_default() -> bool:
    return os.environ.get(FASTFORWARD_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no")


#: One scheduled-but-not-completed chunk of a worker, stored as a plain
#: ``(event, steps, start_time)`` tuple — it mirrors what the chunk event's
#: callback closure captures, so the fast-forward path can simulate the
#: completion without the heap, and a tuple keeps the per-chunk bookkeeping
#: of the replay loops allocation-cheap.
_InflightChunk = Tuple[Event, int, float]


class TrainingSession:
    """One simulated distributed training session.

    Args:
        simulator: Discrete-event simulator to schedule on.
        cluster: Cluster specification (workers and parameter servers).
        job: Training workload.
        streams: Named random streams; defaults to a fresh seed-0 family.
        step_time_model: Ground-truth step-time model (shared across
            sessions in a campaign so calibration stays consistent).
        ps_capacity_model: Ground-truth parameter-server capacity model.
        checkpoint_time_model: Ground-truth checkpoint-duration model.
        storage: Optional cloud storage bucket to upload checkpoints to.
        steps_per_event: Steps simulated per worker event.
        chief_worker_index: Index of the worker that starts as chief.
        fast_forward: Whether :meth:`run_to_completion` may use the
            vectorized fast-forward path (bit-identical to the chunked
            path; see the module docstring).  ``None`` reads the
            ``REPRO_CORE_FASTFORWARD`` environment variable (default on).
        trace_level: ``"full"`` records every chunk row in the columnar
            trace (the default); ``"summary"`` folds rows into an
            aggregates-only sink so long fleet runs keep O(1) trace
            memory per job.  Payload-visible behavior is identical.
        step_sink: Custom :class:`~repro.training.trace.TraceSink` used as
            the trace's ``step_records`` instead of the ``trace_level``
            built-in — e.g. a :class:`~repro.training.trace.TeeSink`
            feeding the fleet telemetry spool alongside the normal sink.
            The caller owns the sink's semantics; ``trace_level`` is still
            validated and recorded but builds no sink of its own.
    """

    def __init__(self, simulator: Simulator, cluster: ClusterSpec, job: TrainingJob,
                 streams: Optional[RandomStreams] = None,
                 step_time_model: Optional[StepTimeModel] = None,
                 ps_capacity_model: Optional[PSCapacityModel] = None,
                 checkpoint_time_model: Optional[CheckpointTimeModel] = None,
                 storage: Optional[CloudStorage] = None,
                 steps_per_event: int = DEFAULT_STEPS_PER_EVENT,
                 chief_worker_index: int = 0,
                 fast_forward: Optional[bool] = None,
                 trace_level: str = "full",
                 step_sink: Optional[TraceSink] = None):
        if steps_per_event < 1:
            raise ConfigurationError("steps_per_event must be >= 1")
        if not 0 <= chief_worker_index < cluster.num_workers:
            raise ConfigurationError("chief_worker_index out of range")
        if trace_level not in ("full", "summary"):
            raise ConfigurationError(
                f"trace_level must be 'full' or 'summary', got {trace_level!r}")
        self.simulator = simulator
        self.cluster = cluster
        self.job = job
        self.streams = streams if streams is not None else RandomStreams(seed=0)
        self.step_time_model = (step_time_model if step_time_model is not None
                                else StepTimeModel(rng=self.streams.get("step_time")))
        self.checkpoint_time_model = (
            checkpoint_time_model if checkpoint_time_model is not None
            else CheckpointTimeModel(rng=self.streams.get("checkpoint")))
        self.ps_group = ParameterServerGroup(
            count=cluster.num_parameter_servers,
            region_name=cluster.ps_region_name,
            capacity_model=ps_capacity_model or PSCapacityModel())
        self.storage = storage
        self.steps_per_event = steps_per_event
        self.fast_forward_enabled = (fast_forward if fast_forward is not None
                                     else _fast_forward_default())
        #: Chunks completed through the fast-forward path (stats/benchmarks).
        self.fast_forward_chunks = 0
        #: Fast-forward spans executed (stats/benchmarks).
        self.fast_forward_spans = 0
        #: Disturbance-horizon cache: the foreign event the last offer was
        #: blocked behind, and this session's insertion epoch at that time.
        #: The epoch is read through the simulator's live counter cell so a
        #: declined offer costs a few attribute reads, not a method call.
        self._ff_blocker: Optional[Event] = None
        self._ff_own_epoch = -1
        self._insertion_cell = simulator.owner_insertion_cell(self)
        #: Membership epoch and the (slowdown, utilization) memo keyed on
        #: it: both are pure functions of the active-worker set and the PS
        #: count, so they only change when a worker joins/is revoked or a
        #: parameter server is added.
        self._membership_epoch = 0
        self._speed_epoch = -1
        self._speed_cache = (1.0, 0.0, 0.0)
        #: Per-GPU (mean, sigma, floor) post-warm-up draw parameters,
        #: memoized alongside the speed state (same invalidation).
        self._draw_params: Dict[str, Tuple[float, float, float]] = {}

        self.trace_level = trace_level
        self.trace = TrainingTrace(model_name=job.model_name,
                                   cluster_description=cluster.describe(),
                                   start_time=simulator.now,
                                   step_records=(step_sink
                                                 if step_sink is not None
                                                 else make_step_sink(trace_level)))
        self.workers: Dict[str, WorkerState] = {}
        self._inflight: Dict[str, _InflightChunk] = {}
        self._worker_counter = itertools.count()
        self._cluster_steps = 0
        self._last_checkpoint_step = 0
        self._next_checkpoint_step = job.checkpoint_interval_steps
        self._restart_until = 0.0
        self._finished = False
        self.on_finished: List[Callable[["TrainingSession"], None]] = []
        self.on_revocation: List[Callable[["TrainingSession", WorkerState], None]] = []

        for index, spec in enumerate(cluster.workers):
            self._register_worker(spec, is_chief=(index == chief_worker_index),
                                  joined_at=simulator.now)

    # ------------------------------------------------------------------
    # Worker management.
    # ------------------------------------------------------------------
    def _register_worker(self, spec: WorkerSpec, is_chief: bool,
                         joined_at: float) -> WorkerState:
        worker_id = f"worker-{next(self._worker_counter)}"
        worker = WorkerState(worker_id=worker_id, spec=spec, is_chief=is_chief,
                             joined_at=joined_at)
        self.workers[worker_id] = worker
        self._membership_epoch += 1
        return worker

    def active_workers(self) -> List[WorkerState]:
        """Workers currently training."""
        return [worker for worker in self.workers.values() if worker.active]

    def chief(self) -> Optional[WorkerState]:
        """The worker currently holding the chief role, if any is active."""
        for worker in self.workers.values():
            if worker.is_chief and worker.active:
                return worker
        return None

    @property
    def cluster_steps(self) -> int:
        """Cluster-wide training steps counted toward the workload."""
        return self._cluster_steps

    @property
    def finished(self) -> bool:
        """Whether the workload has completed."""
        return self._finished

    @property
    def steps_since_checkpoint(self) -> int:
        """Cluster steps completed since the last checkpoint."""
        return self._cluster_steps - self._last_checkpoint_step

    # ------------------------------------------------------------------
    # Effective speed computation.
    # ------------------------------------------------------------------
    def _worker_speeds(self) -> Dict[str, float]:
        gflops = self.job.profile.gflops
        return {worker.worker_id: self.step_time_model.mean_speed(gflops, worker.gpu_name)
                for worker in self.active_workers()}

    def _scaling_efficiencies(self) -> Dict[str, float]:
        gflops = self.job.profile.gflops
        return {worker.worker_id:
                self.step_time_model.scaling_efficiency(gflops, worker.gpu_name)
                for worker in self.active_workers()}

    def current_slowdown(self) -> float:
        """Current PS-induced per-worker step-time inflation factor."""
        speeds = self._worker_speeds()
        if not speeds:
            return 1.0
        efficiencies = self._scaling_efficiencies()
        ordered = list(speeds)
        return self.ps_group.worker_slowdown(
            [speeds[w] for w in ordered],
            self.job.profile.parameter_bytes,
            [efficiencies[w] for w in ordered])

    def current_utilization(self) -> float:
        """Current parameter-server utilization (demand / capacity)."""
        speeds = list(self._worker_speeds().values())
        if not speeds:
            return 0.0
        return self.ps_group.utilization(speeds, self.job.profile.parameter_bytes)

    def _span_speed_state(self) -> Tuple[float, float, float]:
        """Memoized ``(slowdown, utilization, ps_arg)`` for the membership.

        Values are identical to calling :meth:`current_slowdown` /
        :meth:`current_utilization` directly (both are pure functions of
        the active workers and the PS count); ``ps_arg`` is the derived
        ``max(0, utilization - 0.5)`` contention argument the step-time
        draws take.  The memo just avoids recomputing them for every
        chunk/span while membership is stable.
        """
        if self._speed_epoch != self._membership_epoch:
            utilization = self.current_utilization()
            self._speed_cache = (self.current_slowdown(), utilization,
                                 max(0.0, utilization - 0.5))
            self._speed_epoch = self._membership_epoch
            self._draw_params.clear()
        return self._speed_cache

    def current_cluster_speed(self) -> float:
        """Analytic cluster speed (steps/second) for the current membership."""
        speeds = self._worker_speeds()
        if not speeds:
            return 0.0
        efficiencies = self._scaling_efficiencies()
        ordered = list(speeds)
        return self.ps_group.cluster_speed(
            [speeds[w] for w in ordered],
            self.job.profile.parameter_bytes,
            [efficiencies[w] for w in ordered])

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first chunk of every worker."""
        if self._finished:
            raise TrainingError("session already finished")
        for worker in self.active_workers():
            self._schedule_chunk(worker)

    def _chunk_duration(self, worker: WorkerState, steps: int) -> float:
        slowdown, _utilization, ps_arg = self._span_speed_state()
        gflops = self.job.profile.gflops
        duration = 0.0
        for offset in range(steps):
            duration += self.step_time_model.sample_step_time(
                gflops, worker.gpu_name, step_index=worker.steps_done + offset,
                ps_utilization=ps_arg, slowdown=slowdown)
        return duration

    def _schedule_chunk(self, worker: WorkerState, extra_delay: float = 0.0) -> None:
        if self._finished or not worker.active:
            return
        steps = self.steps_per_event
        duration = self._chunk_duration(worker, steps)
        delay = extra_delay + duration
        if self.simulator.now + extra_delay < self._restart_until:
            delay += self._restart_until - (self.simulator.now + extra_delay)
        start_time = self.simulator.now + delay - duration

        def complete(_sim: Simulator, worker=worker, steps=steps,
                     start_time=start_time) -> None:
            self._complete_chunk(worker, steps, start_time)

        event = self.simulator.schedule(delay, complete,
                                        label=f"{worker.worker_id}:chunk",
                                        owner=self)
        self._inflight[worker.worker_id] = (event, steps, start_time)

    def _complete_chunk(self, worker: WorkerState, steps: int, start_time: float) -> None:
        if self._finished or not worker.active:
            return
        worker.steps_done += steps
        self._cluster_steps += steps
        self.ps_group.record_updates(steps)
        self.trace.step_records.append_row(
            worker.worker_id, start_time, self.simulator.now, steps,
            self._cluster_steps, worker.steps_done)

        if self._cluster_steps >= self.job.total_steps:
            self._finish()
            return

        checkpoint_delay = 0.0
        if worker.is_chief and self._cluster_steps >= self._next_checkpoint_step:
            checkpoint_delay = self._perform_checkpoint(worker)
        self._schedule_chunk(worker, extra_delay=checkpoint_delay)

    def _perform_checkpoint(self, worker: WorkerState,
                            now: Optional[float] = None) -> float:
        """Run a checkpoint on the (acting) chief; returns its duration.

        Args:
            worker: The worker performing the checkpoint.
            now: Simulation time of the checkpoint; defaults to the
                simulator clock (the fast-forward replay passes it
                explicitly, since it advances the clock only at span ends).
        """
        at = self.simulator.now if now is None else now
        duration = self.checkpoint_time_model.sample_time(self.job.profile.checkpoint)
        size = self.job.profile.checkpoint.total_bytes
        self.trace.checkpoint_records.append(CheckpointRecord(
            worker_id=worker.worker_id, start_time=at,
            duration=duration, cluster_step=self._cluster_steps, size_bytes=size))
        if self.storage is not None:
            key = f"checkpoints/{self.job.model_name}/model.ckpt-{self._cluster_steps}"
            self.storage.put(key, size, at_time=at + duration,
                             metadata={"model": self.job.model_name,
                                       "step": str(self._cluster_steps)})
        self._last_checkpoint_step = self._cluster_steps
        self._next_checkpoint_step += self.job.checkpoint_interval_steps
        return duration

    def _finish(self) -> None:
        self._finished = True
        self.trace.end_time = self.simulator.now
        for inflight in self._inflight.values():
            inflight[0].cancel()
        self._inflight.clear()
        self._ff_blocker = None
        # A finished trace is read, never appended to: return the growth
        # slack of the columnar buffers (no-op for summary sinks).
        self.trace.step_records.shrink_to_fit()
        for callback in self.on_finished:
            callback(self)

    # ------------------------------------------------------------------
    # Vectorized fast-forward path.
    # ------------------------------------------------------------------
    def _fast_forward(self, max_pops: Optional[int] = None,
                      top: Optional[Event] = None) -> int:
        """Replay chunk completions up to the disturbance horizon.

        Pops this session's due chunk events off the simulator heap and
        processes them fused — in exact (time, sequence) order, consuming
        the same RNG draws at the same points — until the workload
        finishes, the next event due is *foreign* (not one of this
        session's in-flight chunks), or ``max_pops`` completions were
        replayed (each counts like one processed heap event, so
        :meth:`run_to_completion`'s ``max_events`` truncates identically on
        both paths).  Each completion schedules its successor chunk
        straight back into the heap; because nothing else can insert events
        during the replay, the successor receives exactly the sequence
        number plain event-by-event execution would have assigned, so the
        two paths can hand execution back and forth at any span boundary
        without drifting.

        Returns:
            The number of chunk completions replayed.
        """
        budget = math.inf if max_pops is None else max_pops
        if budget <= 0:
            return 0
        if self._finished or not self.fast_forward_enabled or not self._inflight:
            return 0
        sim = self.simulator
        # The disturbance-horizon cache only pays off for callers that
        # re-offer blindly (run_to_completion after every heap event, or
        # any external driver without its own peek).  A caller passing a
        # fresh ``top`` already knows what fires next, so the cache
        # bookkeeping is skipped entirely on that path.
        use_horizon = top is None
        if use_horizon:
            # A previous offer was blocked behind a foreign event.  While
            # that blocker is still in the heap and this session inserted
            # no new chunk events (its own-insertion epoch is unchanged, so
            # no own chunk can have sorted ahead of the blocker), every
            # chunk of this session still sorts after a foreign event — the
            # offer is declined without even peeking at the heap.
            blocker = self._ff_blocker
            if blocker is not None:
                if (blocker._in_queue and not blocker.cancelled
                        and self._insertion_cell[0] == self._ff_own_epoch):
                    return 0
                self._ff_blocker = None
            top = sim.peek_next()
            if top is None:
                return 0
        inflight = self._inflight
        if (top.owner is not self
                or (info := inflight.get(top.label[:-6])) is None
                or info[0] is not top):
            # A foreign event (disturbance) fires first; nothing to replay.
            # Chunk completions are the only events a session owns (their
            # labels are "<worker>:chunk"), so the ownership tag plus the
            # in-flight identity check replace the old O(workers) id-set
            # probe.  An owned event that is *not* the worker's current
            # in-flight chunk (a stale chunk of a re-started session)
            # counts as foreign too: it fires through the heap, exactly
            # like the old probe treated it.
            if use_horizon:
                self._ff_blocker = top
                self._ff_own_epoch = self._insertion_cell[0]
            return 0

        # pending_events() inlined (len(queue) - cancelled): this runs once
        # per span and fleets execute hundreds of thousands of short spans.
        if len(sim._queue) - sim._cancelled_in_queue == len(inflight):
            # Every pending event is one of this session's chunks: the
            # whole remaining workload can drain through the bulk span
            # (local heap, block draws, bulk trace appends).
            return self._drain_span(budget)

        # Fused span: foreign events are pending, so the span is bounded by
        # the first one.  Each due chunk is popped off the heap (a true
        # removal, no cancelled corpses), completed, and its successor
        # scheduled straight back; because nothing else can insert events
        # during the replay, the successor receives exactly the sequence
        # number plain event-by-event execution would have assigned, so the
        # two paths can hand execution back and forth at any span boundary
        # without drifting.  Span-constant quantities (membership cannot
        # change inside a span — membership changes arrive via foreign
        # events) come from the memoized _span_speed_state.
        model = self.step_time_model
        gflops = self.job.profile.gflops
        if self._speed_epoch == self._membership_epoch:
            slowdown, _utilization, ps_arg = self._speed_cache
        else:
            slowdown, _utilization, ps_arg = self._span_speed_state()
        steps_per = self.steps_per_event
        total = self.job.total_steps
        restart_until = self._restart_until
        workers = self.workers
        append_row = self.trace.step_records.append_row
        schedule_at = sim.schedule_at
        pop_next = sim.pop_next
        peek_next = sim.peek_next
        complete_chunk = self._complete_chunk

        draw_params = self._draw_params
        sample_chunk_raw = model.sample_chunk_raw
        pops = 0
        updates = 0
        finished = False
        now = sim.now
        while True:
            worker_id = top.label[:-6]
            worker = workers[worker_id]
            pop_next()
            steps = info[1]
            now = top.time
            # --- completion (mirrors _complete_chunk) ---
            worker.steps_done += steps
            self._cluster_steps += steps
            cluster = self._cluster_steps
            updates += steps
            pops += 1
            append_row(worker_id, info[2], now, steps, cluster,
                       worker.steps_done)
            if cluster >= total:
                del inflight[worker_id]
                finished = True
                break
            checkpoint_delay = 0.0
            if worker.is_chief and cluster >= self._next_checkpoint_step:
                checkpoint_delay = self._perform_checkpoint(worker, now=now)
            # --- next chunk (mirrors _schedule_chunk/_chunk_duration) ---
            if worker.steps_done >= WARMUP_STEPS:
                gpu = worker.gpu_name
                params = draw_params.get(gpu)
                if params is None:
                    params = draw_params[gpu] = model.chunk_draw_params(
                        gflops, gpu, ps_utilization=ps_arg, slowdown=slowdown)
                floor = params[2]
                duration = 0.0
                for value in sample_chunk_raw(params, steps_per).tolist():
                    # Inline max(floor, value): same float as np.maximum.
                    duration += value if value > floor else floor
            else:
                samples = model.sample_steps(
                    gflops, worker.gpu_name, steps_per,
                    start_step_index=worker.steps_done,
                    ps_utilization=ps_arg, slowdown=slowdown)
                duration = 0.0
                for value in samples.tolist():
                    duration += value
            delay = checkpoint_delay + duration
            if now + checkpoint_delay < restart_until:
                delay += restart_until - (now + checkpoint_delay)
            start_time = now + delay - duration

            def complete(_sim: Simulator, worker=worker, steps=steps_per,
                         start_time=start_time) -> None:
                complete_chunk(worker, steps, start_time)

            event = schedule_at(now + delay, complete,
                                label=f"{worker_id}:chunk", owner=self)
            inflight[worker_id] = (event, steps_per, start_time)
            if pops >= budget:
                break
            top = peek_next()
            # The span ends at the first event that is not a live in-flight
            # chunk of this session: foreign, or a stale own chunk of a
            # re-started session.  Cache it as the new disturbance horizon
            # — the epoch snapshot happens after this span's insertions, so
            # the cached verdict is consistent.
            if (top is None or top.owner is not self
                    or (info := inflight.get(top.label[:-6])) is None
                    or info[0] is not top):
                if use_horizon and top is not None:
                    self._ff_blocker = top
                    self._ff_own_epoch = self._insertion_cell[0]
                break

        if pops:
            self.ps_group.record_updates(updates)
            self.fast_forward_chunks += pops
            self.fast_forward_spans += 1
        if finished:
            # Remaining in-flight chunks stay scheduled and are cancelled
            # by _finish, exactly like on the chunked path; their RNG draws
            # were already consumed at scheduling time on both paths.
            sim.advance_to(now)
            self._finish()
        return pops

    def _drain_span(self, budget) -> int:
        """Bulk replay when every pending event is one of this session's
        own chunks (no foreign event anywhere — the single-session hot
        path of ``BENCH_core``).

        The chunk events are lifted into a local tuple heap (sequence
        numbers for successors are pre-claimed so any chunk re-materialized
        at a span boundary keeps the exact (time, sequence) ordering plain
        execution would have produced), rows are staged and bulk-appended
        in segments, and — when every worker is past warm-up with one
        shared step-time distribution — whole segments of durations come
        from single RNG calls (block mode).
        """
        sim = self.simulator
        heap: List[Tuple[float, int, str]] = []
        meta: Dict[str, Tuple[int, float]] = {}
        while True:
            event = sim.pop_next()
            if event is None:
                break
            worker_id = event.label[:-6]  # strip ":chunk"
            heap.append((event.time, event.sequence, worker_id))
            info = self._inflight[worker_id]
            meta[worker_id] = (info[1], info[2])
        self._inflight.clear()
        # Popped in heap order, so the list is already a valid min-heap.

        # Span-constant quantities (membership cannot change mid-span).
        model = self.step_time_model
        gflops = self.job.profile.gflops
        slowdown, _utilization, ps_arg = self._span_speed_state()
        steps_per = self.steps_per_event
        total = self.job.total_steps
        restart_until = self._restart_until

        # Block mode: the number of chunk completions left is fixed (each
        # adds exactly steps_per steps), so when every worker is past
        # warm-up and draws from the same step-time distribution, all
        # remaining durations can come from the same RNG stream run.
        # Which worker consumes each draw is decided by the replay, but
        # with identical per-draw distributions the values are identical
        # either way.
        def all_past_warmup() -> bool:
            return all(self.workers[w].steps_done + meta[w][0] >= WARMUP_STEPS
                       for w in meta)

        block_mode = False
        block_remaining = 0
        block_gpu = ""
        block_sums: List[float] = []
        block_index = 0
        upgrade_when_warm = False
        distributions = {(model.mean_step_time(gflops, self.workers[w].gpu_name),
                          model.noise_cov(self.workers[w].gpu_name))
                         for w in meta}
        if len(distributions) == 1:
            if not all_past_warmup():
                # Replay chunk-by-chunk until warm-up ends, then return so
                # the next span can take the block draw.
                upgrade_when_warm = True
            else:
                pops_left = -(-(total - self._cluster_steps) // steps_per)
                # The block draws commit to the whole remaining workload's
                # RNG consumption, so they are only taken when the pop
                # budget cannot cut the span short.  The draws happen
                # lazily in FASTFORWARD_SEGMENT_CHUNKS pieces to bound peak
                # memory; segmented normal fills consume the bit stream
                # exactly like one big fill, so the durations are
                # unchanged.
                if pops_left >= 2 and pops_left <= budget:
                    block_mode = True
                    block_remaining = pops_left - 1
                    block_gpu = self.workers[next(iter(meta))].gpu_name

        rec_workers: List[str] = []
        rec_starts: List[float] = []
        rec_ends: List[float] = []
        rec_steps: List[int] = []
        rec_clusters: List[int] = []
        rec_worker_steps: List[int] = []

        def flush_rows() -> None:
            # Staged rows land in the trace in segments so a long block
            # span never holds the whole workload's rows in Python lists.
            self.trace.step_records.extend_rows(
                rec_workers, rec_starts, rec_ends, rec_steps, rec_clusters,
                rec_worker_steps)
            del rec_workers[:], rec_starts[:], rec_ends[:]
            del rec_steps[:], rec_clusters[:], rec_worker_steps[:]

        pops = 0
        updates = 0
        finished = False
        now = sim.now
        while heap:
            if pops >= budget:
                break
            time, sequence, worker_id = heapq.heappop(heap)
            worker = self.workers[worker_id]
            steps, start_time = meta.pop(worker_id)
            now = time
            # --- completion (mirrors _complete_chunk) ---
            worker.steps_done += steps
            self._cluster_steps += steps
            cluster = self._cluster_steps
            updates += steps
            pops += 1
            rec_workers.append(worker_id)
            rec_starts.append(start_time)
            rec_ends.append(time)
            rec_steps.append(steps)
            rec_clusters.append(cluster)
            rec_worker_steps.append(worker.steps_done)
            if len(rec_workers) >= FASTFORWARD_SEGMENT_CHUNKS:
                flush_rows()
            if cluster >= total:
                finished = True
                break
            checkpoint_delay = 0.0
            if worker.is_chief and cluster >= self._next_checkpoint_step:
                checkpoint_delay = self._perform_checkpoint(worker, now=now)
            # --- next chunk (mirrors _schedule_chunk/_chunk_duration) ---
            if block_mode:
                if block_index == len(block_sums):
                    segment = min(FASTFORWARD_SEGMENT_CHUNKS, block_remaining)
                    samples = model.sample_steps(
                        gflops, block_gpu, segment * steps_per,
                        start_step_index=WARMUP_STEPS,
                        ps_utilization=ps_arg, slowdown=slowdown)
                    chunk_matrix = samples.reshape(segment, steps_per)
                    # Left-to-right accumulation per chunk (column by
                    # column) matches the scalar `duration += sample` loop
                    # bit-for-bit; numpy's pairwise `sum` would not.
                    acc = chunk_matrix[:, 0]
                    for column in range(1, steps_per):
                        acc = acc + chunk_matrix[:, column]
                    block_sums = acc.tolist()
                    block_index = 0
                    block_remaining -= segment
                duration = block_sums[block_index]
                block_index += 1
            else:
                samples = model.sample_steps(
                    gflops, worker.gpu_name, steps_per,
                    start_step_index=worker.steps_done,
                    ps_utilization=ps_arg, slowdown=slowdown)
                duration = 0.0
                for value in samples.tolist():
                    duration += value
            delay = checkpoint_delay + duration
            if now + checkpoint_delay < restart_until:
                delay += restart_until - (now + checkpoint_delay)
            heapq.heappush(heap, (now + delay, sim.claim_sequence(), worker_id))
            meta[worker_id] = (steps_per, now + delay - duration)
            if upgrade_when_warm and all_past_warmup():
                break

        if pops:
            if rec_workers:
                flush_rows()
            self.ps_group.record_updates(updates)
            self.fast_forward_chunks += pops
            self.fast_forward_spans += 1
        if finished:
            # Remaining in-flight chunks are dropped exactly as _finish
            # cancels them on the chunked path; their RNG draws were
            # already consumed at scheduling time on both paths.
            sim.advance_to(now)
            self._finish()
            return pops
        # Re-materialize surviving in-flight chunks as real heap events,
        # keeping their claimed sequence numbers.
        for time, sequence, worker_id in heap:
            worker = self.workers[worker_id]
            steps, start_time = meta[worker_id]

            def complete(_sim: Simulator, worker=worker, steps=steps,
                         start_time=start_time) -> None:
                self._complete_chunk(worker, steps, start_time)

            event = sim.schedule_at(time, complete,
                                    label=f"{worker_id}:chunk",
                                    sequence=sequence, owner=self)
            self._inflight[worker_id] = (event, steps, start_time)
        return pops

    # ------------------------------------------------------------------
    # Membership changes (revocations, replacements, PS scaling).
    # ------------------------------------------------------------------
    def handle_revocation(self, worker_id: str) -> WorkerState:
        """Revoke a worker: it stops training immediately.

        With CM-DARE's transient-TensorFlow, a revoked chief hands the
        checkpointing responsibility to another active worker, so training
        progress is preserved (Section V-E).
        """
        if worker_id not in self.workers:
            raise TrainingError(f"unknown worker {worker_id!r}")
        worker = self.workers[worker_id]
        if not worker.active:
            return worker
        worker.revoke(self.simulator.now)
        self._membership_epoch += 1
        pending = self._inflight.pop(worker_id, None)
        if pending is not None:
            pending[0].cancel()
        self.trace.revocation_records.append(RevocationRecord(
            worker_id=worker_id, time=self.simulator.now,
            cluster_step=self._cluster_steps, was_chief=worker.is_chief))
        if worker.is_chief:
            self._handoff_chief(worker)
        for callback in self.on_revocation:
            callback(self, worker)
        return worker

    def _handoff_chief(self, revoked_chief: WorkerState) -> None:
        revoked_chief.is_chief = False
        replacement = next(iter(self.active_workers()), None)
        if replacement is not None:
            replacement.is_chief = True

    def add_worker(self, spec: WorkerSpec, overhead_seconds: float = 0.0,
                   cold_start: bool = True, as_chief: bool = False,
                   reuse_chief_ip: bool = False) -> WorkerState:
        """Add a (replacement) worker that starts training after an overhead.

        Args:
            spec: Specification of the new worker.
            overhead_seconds: Replacement overhead before the first step
                (cold/warm start cost, Fig. 10).
            cold_start: Whether the overhead corresponds to a cold start.
            as_chief: Whether the new worker takes the chief role.
            reuse_chief_ip: Reproduces the unmodified-TensorFlow behaviour of
                Section V-E: the replacement binds to the revoked chief's IP
                address, becomes chief, and forces the cluster to restart
                from the last checkpoint, discarding progress made since.
        """
        if overhead_seconds < 0:
            raise ConfigurationError("overhead_seconds must be non-negative")
        worker = self._register_worker(spec, is_chief=False,
                                       joined_at=self.simulator.now + overhead_seconds)
        self.trace.replacement_records.append(ReplacementRecord(
            worker_id=worker.worker_id, time=self.simulator.now,
            cluster_step=self._cluster_steps, cold_start=cold_start,
            overhead_seconds=overhead_seconds))

        def join(_sim: Simulator) -> None:
            if self._finished:
                return
            if as_chief or reuse_chief_ip:
                for other in self.workers.values():
                    other.is_chief = False
                worker.is_chief = True
            if reuse_chief_ip:
                self._recompute_from_checkpoint()
            self._schedule_chunk(worker)

        self.simulator.schedule(overhead_seconds, join,
                                label=f"{worker.worker_id}:join")
        return worker

    def _recompute_from_checkpoint(self) -> None:
        """Discard progress since the last checkpoint (legacy TF behaviour)."""
        discarded = self._cluster_steps - self._last_checkpoint_step
        self._cluster_steps = self._last_checkpoint_step
        self._next_checkpoint_step = (self._last_checkpoint_step
                                      + self.job.checkpoint_interval_steps)
        self._restart_until = self.simulator.now + SESSION_RESTART_SECONDS
        self.trace.step_records.append_row(
            "session-restart", self.simulator.now, self.simulator.now,
            -discarded, self._cluster_steps)

    def add_parameter_server(self, count: int = 1) -> None:
        """Add parameter servers, paying the session-restart overhead.

        TensorFlow cannot add parameter servers to a live session; the paper
        measures the restart at roughly ten seconds (Section VI-B).
        """
        self.ps_group.add_servers(count)
        self._membership_epoch += 1
        self._restart_until = max(self._restart_until,
                                  self.simulator.now + SESSION_RESTART_SECONDS)

    def fast_forward(self, max_pops: Optional[int] = None,
                     top: Optional[Event] = None) -> int:
        """Public fast-forward hook for multi-session drivers.

        ``top``, when given, must be the caller's fresh ``peek_next()``
        result; the wake-set scheduler passes it so the heap is not peeked
        a second time.

        :mod:`repro.scenarios` runs many sessions on one simulator; each
        session can only replay spans while the next event due is one of its
        *own* chunk completions, so a fleet driver either offers every
        unfinished session a turn (the round-robin reference scheduler) or
        maps the heap top to its owning session via the event ownership
        tags (the wake-set scheduler).  Returns the number of chunk
        completions replayed (0 when the next event is foreign, the session
        is finished, or fast-forward is disabled).  Declined offers are
        cached against the blocking foreign event, so repeated offers to an
        undisturbed session cost no heap peeks.
        """
        return self._fast_forward(max_pops, top=top)

    def fast_forward_probed(self, max_pops: Optional[int] = None) -> int:
        """The PR 3 fast-forward offer, kept verbatim for benchmarking.

        This reproduces the original multi-session offer path — one heap
        peek plus an O(workers) id-set probe of the top event against this
        session's in-flight chunks, with no disturbance-horizon caching —
        so the round-robin reference scheduler
        (``REPRO_FLEET_SCHEDULER=roundrobin``) keeps the old fleet loop's
        *cost model* as well as its payloads, making
        ``benchmarks/fleet_baseline.py`` an honest before/after of the
        wake-set redesign.  Everything past the probe is shared with
        :meth:`fast_forward`, so the replayed spans stay bit-identical.
        """
        if self._finished or not self.fast_forward_enabled or not self._inflight:
            return 0
        top = self.simulator.peek_next()
        if top is None:
            return 0
        chunk_event_ids = {id(info[0]) for info in self._inflight.values()}
        if id(top) not in chunk_event_ids:
            # A foreign event (disturbance) fires first; nothing to replay.
            return 0
        return self._fast_forward(max_pops, top=top)

    # ------------------------------------------------------------------
    # Convenience runners.
    # ------------------------------------------------------------------
    def run_to_completion(self, max_events: int = 5_000_000) -> TrainingTrace:
        """Start the session and run the simulator until the workload ends.

        The simulator is stepped only until the workload finishes, so events
        scheduled far in the future (e.g. the 24-hour reclamation of
        transient servers) do not advance the clock past the training run.
        When the fast-forward path is enabled (the default), chunk events
        are replayed in vectorized spans between heap events; the result is
        bit-identical either way.
        """
        self.start()
        processed = 0
        while not self._finished and processed < max_events:
            processed += self._fast_forward(max_events - processed)
            if self._finished or processed >= max_events:
                break
            if self.simulator.step() is None:
                break
            processed += 1
        if not self._finished:
            raise TrainingError(
                "training did not finish; the cluster may have lost all workers")
        return self.trace
