"""Training job description.

A training job pairs a model with the workload the practitioner specifies:
the total number of training steps, the mini-batch size, and the
checkpoint interval.  The paper expresses all workloads in steps ("the
training workload is provided by practitioners in the form of number of
steps") and uses a checkpoint interval of 4K steps for its end-to-end
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.workloads.datasets import CIFAR10, DatasetSpec
from repro.workloads.profiler import ModelProfile


@dataclass(frozen=True)
class TrainingJob:
    """A training workload.

    Attributes:
        profile: Profile of the model being trained.
        total_steps: Number of training steps requested (``Nw`` in Eq. 4).
        batch_size: Mini-batch size per step.
        checkpoint_interval_steps: Steps between checkpoints (``Ic``); use a
            value larger than ``total_steps`` to disable checkpointing, as
            the paper does when measuring pure training speed.
        dataset: Training dataset.
    """

    profile: ModelProfile
    total_steps: int = 4000
    batch_size: int = 128
    checkpoint_interval_steps: int = 4000
    dataset: DatasetSpec = CIFAR10

    def __post_init__(self) -> None:
        if self.total_steps <= 0:
            raise ConfigurationError("total_steps must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.checkpoint_interval_steps <= 0:
            raise ConfigurationError("checkpoint_interval_steps must be positive")

    @property
    def model_name(self) -> str:
        """Name of the model being trained."""
        return self.profile.name

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints taken over the full workload."""
        return self.total_steps // self.checkpoint_interval_steps

    @property
    def checkpointing_enabled(self) -> bool:
        """Whether at least one checkpoint falls inside the workload."""
        return self.num_checkpoints > 0

    def images_processed(self) -> int:
        """Total number of training images processed by the workload."""
        return self.total_steps * self.batch_size

    def epochs(self) -> float:
        """Workload expressed in epochs over the training dataset."""
        return self.images_processed() / self.dataset.num_train_examples

    def with_steps(self, total_steps: int) -> "TrainingJob":
        """The same job with a different number of steps."""
        return TrainingJob(profile=self.profile, total_steps=total_steps,
                           batch_size=self.batch_size,
                           checkpoint_interval_steps=self.checkpoint_interval_steps,
                           dataset=self.dataset)


def measurement_job(profile: ModelProfile, steps: int = 4000,
                    checkpointing: bool = False,
                    checkpoint_interval_steps: Optional[int] = None) -> TrainingJob:
    """Build a job configured the way the paper's speed measurements are.

    The paper trains each cluster for 4000 steps and sets the checkpoint
    interval beyond the measurement window so checkpoint overhead is not
    mixed into speed measurements.

    Args:
        profile: Model profile.
        steps: Measurement duration in steps.
        checkpointing: Whether checkpoints should occur during the window.
        checkpoint_interval_steps: Explicit interval; defaults to ``steps``
            when checkpointing is enabled, or beyond the window otherwise.
    """
    if checkpoint_interval_steps is None:
        checkpoint_interval_steps = steps if checkpointing else steps + 1
    return TrainingJob(profile=profile, total_steps=steps,
                       checkpoint_interval_steps=checkpoint_interval_steps)
