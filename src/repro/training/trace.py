"""Training traces: the raw measurement data a session produces.

The CM-DARE performance tracker consumes these traces to compute the
quantities the paper reports: cluster training speed averaged over 100-step
windows (with the first 100 steps discarded), per-worker average step
times, checkpoint durations, and revocation/replacement events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DataError

#: Number of initial steps discarded from speed statistics, matching the
#: paper's methodology ("we discarded the measurements associated with the
#: first 100 steps").
DEFAULT_WARMUP_STEPS = 100

#: Window (in steps) over which training speed is averaged, matching the
#: paper's "we averaged the training speed every 100 steps".
DEFAULT_SPEED_WINDOW_STEPS = 100


@dataclass(frozen=True)
class StepRecord:
    """One completed chunk of training steps on one worker.

    Attributes:
        worker_id: Worker that completed the steps.
        start_time: Simulation time the chunk started.
        end_time: Simulation time the chunk finished.
        steps: Number of steps in the chunk.
        cluster_step: Cluster-wide cumulative step count after the chunk.
        worker_step: The worker's own cumulative step count after the chunk
            (used to discard each worker's individual warm-up steps).
    """

    worker_id: str
    start_time: float
    end_time: float
    steps: int
    cluster_step: int
    worker_step: int = 0

    @property
    def duration(self) -> float:
        """Chunk duration in seconds."""
        return self.end_time - self.start_time

    @property
    def step_time(self) -> float:
        """Average per-step time of the chunk, in seconds."""
        return self.duration / self.steps if self.steps else 0.0


@dataclass(frozen=True)
class CheckpointRecord:
    """One checkpoint performed by the (acting) chief worker."""

    worker_id: str
    start_time: float
    duration: float
    cluster_step: int
    size_bytes: int


@dataclass(frozen=True)
class RevocationRecord:
    """One worker revocation observed during training."""

    worker_id: str
    time: float
    cluster_step: int
    was_chief: bool


@dataclass(frozen=True)
class ReplacementRecord:
    """One worker replacement (a new worker joining mid-training)."""

    worker_id: str
    time: float
    cluster_step: int
    cold_start: bool
    overhead_seconds: float


@dataclass
class TrainingTrace:
    """Everything recorded while simulating one training session.

    Attributes:
        model_name: Name of the trained model.
        cluster_description: Human-readable cluster description.
        step_records: Per-worker chunk completions.
        checkpoint_records: Checkpoints taken.
        revocation_records: Worker revocations.
        replacement_records: Worker replacements.
        start_time: Simulation time training started.
        end_time: Simulation time the workload finished (None while running).
    """

    model_name: str
    cluster_description: str
    step_records: List[StepRecord] = field(default_factory=list)
    checkpoint_records: List[CheckpointRecord] = field(default_factory=list)
    revocation_records: List[RevocationRecord] = field(default_factory=list)
    replacement_records: List[ReplacementRecord] = field(default_factory=list)
    start_time: float = 0.0
    end_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Basic aggregates.
    # ------------------------------------------------------------------
    @property
    def total_steps(self) -> int:
        """Total training steps completed across all workers."""
        return sum(record.steps for record in self.step_records)

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) duration of the traced session."""
        if self.end_time is not None:
            return self.end_time - self.start_time
        if not self.step_records:
            return 0.0
        return max(record.end_time for record in self.step_records) - self.start_time

    def worker_ids(self) -> List[str]:
        """All workers that contributed steps, in first-appearance order."""
        seen: Dict[str, None] = {}
        for record in self.step_records:
            seen.setdefault(record.worker_id, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Speed statistics (Table I, Fig. 2, Fig. 4).
    # ------------------------------------------------------------------
    def cluster_speed(self, warmup_steps: int = DEFAULT_WARMUP_STEPS) -> float:
        """Average cluster training speed in steps/second.

        The first ``warmup_steps`` cluster steps are discarded, following
        the paper's methodology.
        """
        records = [r for r in self.step_records if r.cluster_step > warmup_steps]
        if not records:
            raise DataError("not enough steps beyond the warm-up window")
        steps = sum(record.steps for record in records)
        start = min(record.start_time for record in records)
        end = max(record.end_time for record in records)
        if end <= start:
            raise DataError("trace covers zero duration")
        return steps / (end - start)

    def speed_series(self, window_steps: int = DEFAULT_SPEED_WINDOW_STEPS
                     ) -> List[Tuple[int, float]]:
        """Cluster speed averaged over consecutive windows of steps.

        Returns:
            A list of ``(cluster step at window end, steps/second)`` pairs —
            the series plotted in Fig. 2.
        """
        if window_steps <= 0:
            raise DataError("window_steps must be positive")
        records = sorted(self.step_records, key=lambda r: r.end_time)
        if not records:
            return []
        series: List[Tuple[int, float]] = []
        window_start_time = self.start_time
        window_steps_done = 0
        next_boundary = window_steps
        for record in records:
            window_steps_done += record.steps
            if record.cluster_step >= next_boundary:
                elapsed = record.end_time - window_start_time
                if elapsed > 0:
                    series.append((record.cluster_step, window_steps_done / elapsed))
                window_start_time = record.end_time
                window_steps_done = 0
                next_boundary = record.cluster_step + window_steps
        return series

    def speed_stability(self, warmup_steps: int = DEFAULT_WARMUP_STEPS,
                        window_steps: int = DEFAULT_SPEED_WINDOW_STEPS) -> float:
        """Coefficient of variation of the windowed speed after warm-up."""
        series = [speed for step, speed in self.speed_series(window_steps)
                  if step > warmup_steps]
        if len(series) < 2:
            raise DataError("not enough windows to compute stability")
        values = np.asarray(series)
        return float(values.std(ddof=1) / values.mean())

    # ------------------------------------------------------------------
    # Per-worker statistics (Table III).
    # ------------------------------------------------------------------
    def worker_step_times(self, worker_id: str,
                          warmup_steps: int = DEFAULT_WARMUP_STEPS) -> np.ndarray:
        """Per-chunk average step times (seconds) for one worker.

        The worker's *own* first ``warmup_steps`` steps are discarded, which
        mirrors how the paper measures individual workers with TFProf.
        """
        times = [record.step_time for record in self.step_records
                 if record.worker_id == worker_id and record.worker_step > warmup_steps]
        if not times:
            raise DataError(f"no post-warm-up steps recorded for worker {worker_id!r}")
        return np.asarray(times)

    def worker_mean_step_time(self, worker_id: str,
                              warmup_steps: int = DEFAULT_WARMUP_STEPS) -> Tuple[float, float]:
        """Mean and standard deviation of one worker's step time (seconds)."""
        times = self.worker_step_times(worker_id, warmup_steps)
        std = float(times.std(ddof=1)) if len(times) > 1 else 0.0
        return float(times.mean()), std

    # ------------------------------------------------------------------
    # Checkpoint statistics (Section IV).
    # ------------------------------------------------------------------
    def checkpoint_durations(self) -> List[float]:
        """Durations (seconds) of all checkpoints in the trace."""
        return [record.duration for record in self.checkpoint_records]

    def total_checkpoint_time(self) -> float:
        """Total seconds spent checkpointing."""
        return float(sum(self.checkpoint_durations()))

    # ------------------------------------------------------------------
    # Revocation statistics (Section V).
    # ------------------------------------------------------------------
    @property
    def num_revocations(self) -> int:
        """Number of worker revocations observed."""
        return len(self.revocation_records)

    @property
    def num_replacements(self) -> int:
        """Number of replacement workers that joined."""
        return len(self.replacement_records)

    def summary(self) -> Dict[str, float]:
        """A compact numeric summary of the trace."""
        summary: Dict[str, float] = {
            "total_steps": float(self.total_steps),
            "duration_seconds": float(self.duration),
            "num_checkpoints": float(len(self.checkpoint_records)),
            "num_revocations": float(self.num_revocations),
            "num_replacements": float(self.num_replacements),
        }
        try:
            summary["cluster_speed"] = self.cluster_speed()
        except DataError:
            pass
        return summary
