"""Training traces: the raw measurement data a session produces.

The CM-DARE performance tracker consumes these traces to compute the
quantities the paper reports: cluster training speed averaged over 100-step
windows (with the first 100 steps discarded), per-worker average step
times, checkpoint durations, and revocation/replacement events.

Step records — by far the highest-volume stream, one row per simulated
chunk — are stored *columnar* (structure of arrays) in
:class:`StepRecordArray` instead of as a list of frozen dataclasses.  The
sequence still looks like a list of :class:`StepRecord` objects (``append``,
indexing, iteration), but each row costs six scalar slots in growable numpy
buffers rather than a Python object, and the trace statistics
(:meth:`TrainingTrace.cluster_speed`, :meth:`TrainingTrace.speed_series`,
:meth:`TrainingTrace.worker_step_times`) operate directly on the columns.
The array implementations reproduce the original record-by-record loops
bit for bit — same ordering, same floating-point expressions — which the
regression tests in ``tests/test_trace_columns.py`` pin down.

Memory is bounded two ways.  The growable buffers double geometrically only
up to :data:`GROWTH_CAP_ROWS` rows and then grow linearly by that cap, so a
long session never over-allocates more than one cap's worth of slack, and
:meth:`StepRecordArray.shrink_to_fit` (called by the training session when
the workload finishes) trims the slack entirely.  For fleet-scale runs that
only need end-of-run aggregates, :class:`StepRecordSummary` is a drop-in
*sink* with the same ``append``/``append_row``/``extend_rows`` surface that
keeps O(1) running aggregates (row/step totals, time bounds, per-worker
step counts) and stores no rows at all — the ``trace_level="summary"``
mode of :class:`~repro.training.session.TrainingSession`.

The write/read surface those two containers share is formalized by the
:class:`TraceSink` protocol: anything implementing it can be handed to
:class:`~repro.training.session.TrainingSession` via ``step_sink=`` and
will receive every chunk row the session produces.  :class:`TeeSink`
composes sinks — it forwards every write to all of its members and answers
reads from the first (*primary*) one, which is how the fleet telemetry
exporter (:mod:`repro.telemetry`) observes rows without perturbing the
trace the payload is computed from.  :func:`make_step_sink` builds the
built-in sink for a ``trace_level``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DataError

#: Number of initial steps discarded from speed statistics, matching the
#: paper's methodology ("we discarded the measurements associated with the
#: first 100 steps").
DEFAULT_WARMUP_STEPS = 100

#: Window (in steps) over which training speed is averaged, matching the
#: paper's "we averaged the training speed every 100 steps".
DEFAULT_SPEED_WINDOW_STEPS = 100

#: Buffer growth switches from doubling to linear at this many rows, so the
#: worst-case over-allocation of a huge trace is one cap (~3 MB of columns)
#: instead of the trace's own size again.
GROWTH_CAP_ROWS = 1 << 16


@dataclass(frozen=True)
class StepRecord:
    """One completed chunk of training steps on one worker.

    Attributes:
        worker_id: Worker that completed the steps.
        start_time: Simulation time the chunk started.
        end_time: Simulation time the chunk finished.
        steps: Number of steps in the chunk.
        cluster_step: Cluster-wide cumulative step count after the chunk.
        worker_step: The worker's own cumulative step count after the chunk
            (used to discard each worker's individual warm-up steps).
    """

    worker_id: str
    start_time: float
    end_time: float
    steps: int
    cluster_step: int
    worker_step: int = 0

    @property
    def duration(self) -> float:
        """Chunk duration in seconds."""
        return self.end_time - self.start_time

    @property
    def step_time(self) -> float:
        """Average per-step time of the chunk, in seconds."""
        return self.duration / self.steps if self.steps else 0.0


class TraceSink:
    """The write/read surface every step-record sink implements.

    A *sink* receives the session's chunk rows as they are produced and
    answers the handful of aggregate reads the session, the fleet payload,
    and the trace statistics need.  The two built-in sinks are
    :class:`StepRecordArray` (``trace_level="full"`` — keeps every row,
    columnar) and :class:`StepRecordSummary` (``trace_level="summary"`` —
    O(1) running aggregates, no rows); :class:`TeeSink` fans writes out to
    several sinks at once.  Custom sinks (e.g. the fleet telemetry spool in
    :mod:`repro.telemetry.writer`) subclass this and are attached through
    :class:`~repro.training.session.TrainingSession`'s ``step_sink=``.

    Write surface: :meth:`append` / :meth:`append_row` (one row),
    :meth:`extend_rows` (bulk, parallel columns), :meth:`shrink_to_fit`
    (end-of-workload trim hint).  Read surface: ``len()``,
    :attr:`steps_total`, :attr:`max_end_time`, :attr:`nbytes`.
    """

    def append(self, record: "StepRecord") -> None:
        """Append one :class:`StepRecord` (list-compatible API)."""
        self.append_row(record.worker_id, record.start_time, record.end_time,
                        record.steps, record.cluster_step, record.worker_step)

    def append_row(self, worker_id: str, start_time: float, end_time: float,
                   steps: int, cluster_step: int, worker_step: int = 0) -> None:
        """Append one row from scalars, skipping StepRecord construction."""
        raise NotImplementedError

    def extend_rows(self, worker_ids: Sequence[str], start_times: Sequence[float],
                    end_times: Sequence[float], steps: Sequence[int],
                    cluster_steps: Sequence[int], worker_steps: Sequence[int]) -> None:
        """Bulk-append rows from parallel scalar sequences (fast-path sink)."""
        raise NotImplementedError

    def shrink_to_fit(self) -> None:
        """End-of-workload hint: release growth slack (no-op by default)."""

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def steps_total(self) -> int:
        """Sum of all appended step counts."""
        raise NotImplementedError

    @property
    def max_end_time(self) -> float:
        """Latest chunk end time seen, or 0.0 when nothing was appended."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Approximate memory held by the sink."""
        raise NotImplementedError


class StepRecordArray(TraceSink, Sequence):
    """Columnar (structure-of-arrays) storage of :class:`StepRecord` rows.

    Rows live in six growable numpy buffers (worker index, start time, end
    time, steps, cluster step, worker step); worker ids are interned into a
    small side table in first-appearance order.  The container quacks like
    the ``List[StepRecord]`` it replaces — ``append``, ``len``, indexing,
    iteration and equality all work on :class:`StepRecord` values — while
    bulk producers (the simulation fast-path) and the trace statistics go
    straight to the columns.

    Example:
        >>> records = StepRecordArray()
        >>> records.append(StepRecord("w0", 0.0, 1.0, 10, 10, 10))
        >>> records[0].worker_id
        'w0'
        >>> records.step_counts
        array([10])
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, records: Iterable[StepRecord] = ()):
        self._names: List[str] = []
        self._name_index: Dict[str, int] = {}
        capacity = self._INITIAL_CAPACITY
        self._widx = np.empty(capacity, dtype=np.int64)
        self._start = np.empty(capacity, dtype=np.float64)
        self._end = np.empty(capacity, dtype=np.float64)
        self._steps = np.empty(capacity, dtype=np.int64)
        self._cluster = np.empty(capacity, dtype=np.int64)
        self._wstep = np.empty(capacity, dtype=np.int64)
        self._size = 0
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Growth and interning.
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._widx)
        if needed <= capacity:
            return
        capacity = max(capacity, self._INITIAL_CAPACITY)
        while capacity < needed:
            if capacity < GROWTH_CAP_ROWS:
                capacity = min(capacity * 2, GROWTH_CAP_ROWS)
            else:
                capacity += GROWTH_CAP_ROWS
        self._resize(capacity)

    def _resize(self, capacity: int) -> None:
        for name in ("_widx", "_start", "_end", "_steps", "_cluster", "_wstep"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[:self._size] = old[:self._size]
            setattr(self, name, grown)

    def shrink_to_fit(self) -> None:
        """Trim the column buffers to the live row count.

        Sessions call this when the workload finishes: a completed trace is
        read, not appended to, so the geometric growth slack (up to one
        :data:`GROWTH_CAP_ROWS` worth of rows) is returned to the allocator.
        Appending afterwards still works — the buffers simply regrow.
        """
        if len(self._widx) > self._size:
            self._resize(self._size)

    def _intern(self, worker_id: str) -> int:
        index = self._name_index.get(worker_id)
        if index is None:
            index = len(self._names)
            self._names.append(worker_id)
            self._name_index[worker_id] = index
        return index

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def append(self, record: StepRecord) -> None:
        """Append one :class:`StepRecord` (list-compatible API)."""
        self.append_row(record.worker_id, record.start_time, record.end_time,
                        record.steps, record.cluster_step, record.worker_step)

    def append_row(self, worker_id: str, start_time: float, end_time: float,
                   steps: int, cluster_step: int, worker_step: int = 0) -> None:
        """Append one row from scalars, skipping StepRecord construction."""
        i = self._size
        if i >= len(self._widx):
            self._reserve(1)
        index = self._name_index.get(worker_id)
        if index is None:
            index = self._intern(worker_id)
        self._widx[i] = index
        self._start[i] = start_time
        self._end[i] = end_time
        self._steps[i] = steps
        self._cluster[i] = cluster_step
        self._wstep[i] = worker_step
        self._size = i + 1

    def extend_rows(self, worker_ids: Sequence[str], start_times: Sequence[float],
                    end_times: Sequence[float], steps: Sequence[int],
                    cluster_steps: Sequence[int], worker_steps: Sequence[int]) -> None:
        """Bulk-append rows from parallel scalar sequences (fast-path sink)."""
        n = len(worker_ids)
        if not (len(start_times) == len(end_times) == len(steps)
                == len(cluster_steps) == len(worker_steps) == n):
            raise DataError("extend_rows requires equally sized columns")
        if n == 0:
            return
        if n <= 4:
            # Scalar writes beat six numpy slice assignments for the tiny
            # bulks the fleet's short fast-forward spans produce.
            for j in range(n):
                self.append_row(worker_ids[j], start_times[j], end_times[j],
                                steps[j], cluster_steps[j], worker_steps[j])
            return
        self._reserve(n)
        i = self._size
        intern = self._intern
        self._widx[i:i + n] = [intern(worker_id) for worker_id in worker_ids]
        self._start[i:i + n] = start_times
        self._end[i:i + n] = end_times
        self._steps[i:i + n] = steps
        self._cluster[i:i + n] = cluster_steps
        self._wstep[i:i + n] = worker_steps
        self._size = i + n

    # ------------------------------------------------------------------
    # Sequence protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _materialize(self, i: int) -> StepRecord:
        return StepRecord(worker_id=self._names[int(self._widx[i])],
                          start_time=float(self._start[i]),
                          end_time=float(self._end[i]),
                          steps=int(self._steps[i]),
                          cluster_step=int(self._cluster[i]),
                          worker_step=int(self._wstep[i]))

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(self._size))]
        i = index + self._size if index < 0 else index
        if not 0 <= i < self._size:
            raise IndexError("step record index out of range")
        return self._materialize(i)

    def __iter__(self) -> Iterator[StepRecord]:
        for i in range(self._size):
            yield self._materialize(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StepRecordArray):
            return (self._size == other._size
                    and [self._names[int(i)] for i in self.worker_indices]
                    == [other._names[int(i)] for i in other.worker_indices]
                    and np.array_equal(self.start_times, other.start_times)
                    and np.array_equal(self.end_times, other.end_times)
                    and np.array_equal(self.step_counts, other.step_counts)
                    and np.array_equal(self.cluster_step_counts, other.cluster_step_counts)
                    and np.array_equal(self.worker_step_counts, other.worker_step_counts))
        if isinstance(other, (list, tuple)):
            return len(other) == self._size and all(
                self._materialize(i) == other[i] for i in range(self._size))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StepRecordArray({self._size} rows, "
                f"{len(self._names)} workers, {self.nbytes / 1024.0:.1f} KiB)")

    # ------------------------------------------------------------------
    # Column views (trimmed to the live size; treat as read-only).
    # ------------------------------------------------------------------
    @property
    def worker_indices(self) -> np.ndarray:
        """Interned worker index per row (see :meth:`worker_name`)."""
        return self._widx[:self._size]

    @property
    def start_times(self) -> np.ndarray:
        """Chunk start times (seconds)."""
        return self._start[:self._size]

    @property
    def end_times(self) -> np.ndarray:
        """Chunk end times (seconds)."""
        return self._end[:self._size]

    @property
    def step_counts(self) -> np.ndarray:
        """Steps per chunk (negative for session-restart corrections)."""
        return self._steps[:self._size]

    @property
    def cluster_step_counts(self) -> np.ndarray:
        """Cluster-wide cumulative step count after each chunk."""
        return self._cluster[:self._size]

    @property
    def worker_step_counts(self) -> np.ndarray:
        """Per-worker cumulative step count after each chunk."""
        return self._wstep[:self._size]

    @property
    def worker_names(self) -> Tuple[str, ...]:
        """Interned worker ids in first-appearance order."""
        return tuple(self._names)

    def worker_name(self, index: int) -> str:
        """Worker id for an interned index."""
        return self._names[index]

    def worker_index(self, worker_id: str) -> Optional[int]:
        """Interned index of ``worker_id``, or ``None`` if it never appears."""
        return self._name_index.get(worker_id)

    @property
    def nbytes(self) -> int:
        """Bytes held by the column buffers (capacity included)."""
        return (self._widx.nbytes + self._start.nbytes + self._end.nbytes
                + self._steps.nbytes + self._cluster.nbytes + self._wstep.nbytes)

    # ------------------------------------------------------------------
    # Aggregates shared with :class:`StepRecordSummary`.
    # ------------------------------------------------------------------
    @property
    def steps_total(self) -> int:
        """Sum of the steps column (negative restart corrections included)."""
        return int(self.step_counts.sum())

    @property
    def max_end_time(self) -> float:
        """Latest chunk end time, or 0.0 for an empty trace."""
        return float(self.end_times.max()) if self._size else 0.0


class StepRecordSummary(TraceSink):
    """Aggregates-only stand-in for :class:`StepRecordArray`.

    The ``trace_level="summary"`` sink: it accepts the same ``append`` /
    ``append_row`` / ``extend_rows`` calls the session and its fast-forward
    path make, maintains O(1) running aggregates — row count, step total,
    time bounds, per-worker step totals — and stores no per-step rows, so a
    500-job fleet's traces stay a few hundred bytes each.  Everything the
    fleet payload and the CM-DARE controller read (``len``, the trace's
    ``end_time``/``duration``, session counters) keeps working; the
    row-level statistics (``cluster_speed``, ``speed_series``,
    ``worker_step_times``) raise :class:`~repro.errors.DataError` because
    the rows they need were never kept.
    """

    def __init__(self):
        self._rows = 0
        self._steps_total = 0
        self._first_start = math.inf
        self._max_end = 0.0
        self._worker_steps: Dict[str, int] = {}

    # -- mutation (mirrors the StepRecordArray write surface) ----------
    def append(self, record: StepRecord) -> None:
        self.append_row(record.worker_id, record.start_time, record.end_time,
                        record.steps, record.cluster_step, record.worker_step)

    def append_row(self, worker_id: str, start_time: float, end_time: float,
                   steps: int, cluster_step: int, worker_step: int = 0) -> None:
        del cluster_step
        self._rows += 1
        self._steps_total += steps
        if start_time < self._first_start:
            self._first_start = start_time
        if end_time > self._max_end:
            self._max_end = end_time
        if worker_step:
            self._worker_steps[worker_id] = worker_step

    def extend_rows(self, worker_ids: Sequence[str], start_times: Sequence[float],
                    end_times: Sequence[float], steps: Sequence[int],
                    cluster_steps: Sequence[int], worker_steps: Sequence[int]) -> None:
        n = len(worker_ids)
        if not (len(start_times) == len(end_times) == len(steps)
                == len(cluster_steps) == len(worker_steps) == n):
            raise DataError("extend_rows requires equally sized columns")
        if n == 0:
            return
        self._rows += n
        self._steps_total += int(sum(steps))
        first = min(start_times)
        if first < self._first_start:
            self._first_start = first
        last = max(end_times)
        if last > self._max_end:
            self._max_end = last
        for worker_id, worker_step in zip(worker_ids, worker_steps):
            if worker_step:
                self._worker_steps[worker_id] = worker_step

    # -- aggregates ----------------------------------------------------
    def __len__(self) -> int:
        return self._rows

    @property
    def steps_total(self) -> int:
        """Sum of all appended step counts."""
        return self._steps_total

    @property
    def max_end_time(self) -> float:
        """Latest chunk end time seen, or 0.0 when nothing was appended."""
        return self._max_end

    @property
    def first_start_time(self) -> float:
        """Earliest chunk start time seen (``inf`` when empty)."""
        return self._first_start

    @property
    def worker_names(self) -> Tuple[str, ...]:
        """Workers that reported a cumulative step count."""
        return tuple(self._worker_steps)

    def worker_steps_done(self, worker_id: str) -> int:
        """Last cumulative step count reported by one worker (0 if none)."""
        return self._worker_steps.get(worker_id, 0)

    def shrink_to_fit(self) -> None:
        """No-op: a summary holds no buffers to trim."""

    @property
    def nbytes(self) -> int:
        """Rough footprint; a summary keeps no row data."""
        return 64 * (1 + len(self._worker_steps))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"StepRecordSummary({self._rows} rows folded, "
                f"{self._steps_total} steps, {len(self._worker_steps)} workers)")


class TeeSink(TraceSink):
    """Fan one session's rows out to several sinks.

    Every write goes to every member sink, in construction order; reads
    (``len``, :attr:`steps_total`, :attr:`max_end_time`) are answered by
    the first sink — the *primary* — so wrapping a trace's normal sink in
    a tee is observationally transparent to everything that consumes the
    trace (the fleet payload contract).  :attr:`nbytes` sums the members,
    since the tee really does hold all of them.

    The trace statistics unwrap a tee to its primary
    (:meth:`TrainingTrace._step_columns`), so a full-trace session with a
    telemetry tee still answers row-level queries, and a summary primary
    still raises the usual :class:`~repro.errors.DataError`.
    """

    def __init__(self, primary: TraceSink, *secondaries: TraceSink):
        self.primary = primary
        self.sinks: Tuple[TraceSink, ...] = (primary,) + tuple(secondaries)

    def append(self, record: StepRecord) -> None:
        for sink in self.sinks:
            sink.append(record)

    def append_row(self, worker_id: str, start_time: float, end_time: float,
                   steps: int, cluster_step: int, worker_step: int = 0) -> None:
        for sink in self.sinks:
            sink.append_row(worker_id, start_time, end_time, steps,
                            cluster_step, worker_step)

    def extend_rows(self, worker_ids: Sequence[str], start_times: Sequence[float],
                    end_times: Sequence[float], steps: Sequence[int],
                    cluster_steps: Sequence[int], worker_steps: Sequence[int]) -> None:
        for sink in self.sinks:
            sink.extend_rows(worker_ids, start_times, end_times, steps,
                             cluster_steps, worker_steps)

    def shrink_to_fit(self) -> None:
        for sink in self.sinks:
            sink.shrink_to_fit()

    def __len__(self) -> int:
        return len(self.primary)

    @property
    def steps_total(self) -> int:
        return self.primary.steps_total

    @property
    def max_end_time(self) -> float:
        return self.primary.max_end_time

    @property
    def nbytes(self) -> int:
        return sum(sink.nbytes for sink in self.sinks)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TeeSink({', '.join(repr(sink) for sink in self.sinks)})"


def make_step_sink(trace_level: str) -> TraceSink:
    """The built-in step-record sink for a ``trace_level``.

    ``"full"`` builds a fresh :class:`StepRecordArray`, ``"summary"`` a
    fresh :class:`StepRecordSummary`; anything else raises
    :class:`~repro.errors.DataError`.
    """
    if trace_level == "summary":
        return StepRecordSummary()
    if trace_level == "full":
        return StepRecordArray()
    raise DataError(
        f"trace_level must be 'full' or 'summary', got {trace_level!r}")


@dataclass(frozen=True)
class CheckpointRecord:
    """One checkpoint performed by the (acting) chief worker."""

    worker_id: str
    start_time: float
    duration: float
    cluster_step: int
    size_bytes: int


@dataclass(frozen=True)
class RevocationRecord:
    """One worker revocation observed during training."""

    worker_id: str
    time: float
    cluster_step: int
    was_chief: bool


@dataclass(frozen=True)
class ReplacementRecord:
    """One worker replacement (a new worker joining mid-training)."""

    worker_id: str
    time: float
    cluster_step: int
    cold_start: bool
    overhead_seconds: float


@dataclass
class TrainingTrace:
    """Everything recorded while simulating one training session.

    Attributes:
        model_name: Name of the trained model.
        cluster_description: Human-readable cluster description.
        step_records: Per-worker chunk completions (columnar).
        checkpoint_records: Checkpoints taken.
        revocation_records: Worker revocations.
        replacement_records: Worker replacements.
        start_time: Simulation time training started.
        end_time: Simulation time the workload finished (None while running).
    """

    model_name: str
    cluster_description: str
    #: Per-worker chunk completions: the columnar array by default, a
    #: :class:`StepRecordSummary` for ``trace_level="summary"`` runs, or
    #: any custom :class:`TraceSink` (e.g. a :class:`TeeSink` feeding the
    #: fleet telemetry spool alongside one of the built-ins).
    step_records: TraceSink = field(default_factory=StepRecordArray)
    checkpoint_records: List[CheckpointRecord] = field(default_factory=list)
    revocation_records: List[RevocationRecord] = field(default_factory=list)
    replacement_records: List[ReplacementRecord] = field(default_factory=list)
    start_time: float = 0.0
    end_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Basic aggregates.
    # ------------------------------------------------------------------
    @property
    def total_steps(self) -> int:
        """Total training steps completed across all workers."""
        return int(self.step_records.steps_total)

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) duration of the traced session."""
        if self.end_time is not None:
            return self.end_time - self.start_time
        if not len(self.step_records):
            return 0.0
        return self.step_records.max_end_time - self.start_time

    def _step_columns(self) -> StepRecordArray:
        """The columnar step records, or a DataError for summary traces."""
        records = self.step_records
        if isinstance(records, TeeSink):
            # A tee is observationally its primary; row-level statistics
            # read the primary's columns (or fail on a summary primary).
            records = records.primary
        if isinstance(records, StepRecordSummary):
            raise DataError(
                "this trace was recorded with trace_level='summary'; "
                "per-step rows were not kept")
        return records

    def worker_ids(self) -> List[str]:
        """All workers that contributed steps, in first-appearance order.

        Raises:
            DataError: For ``trace_level="summary"`` traces — the summary
                sink cannot reproduce first-appearance order (query its
                :attr:`StepRecordSummary.worker_names` aggregate instead).
        """
        return list(self._step_columns().worker_names)

    # ------------------------------------------------------------------
    # Speed statistics (Table I, Fig. 2, Fig. 4).
    # ------------------------------------------------------------------
    def cluster_speed(self, warmup_steps: int = DEFAULT_WARMUP_STEPS) -> float:
        """Average cluster training speed in steps/second.

        The first ``warmup_steps`` cluster steps are discarded, following
        the paper's methodology.
        """
        records = self._step_columns()
        mask = records.cluster_step_counts > warmup_steps
        if not mask.any():
            raise DataError("not enough steps beyond the warm-up window")
        steps = int(records.step_counts[mask].sum())
        start = float(records.start_times[mask].min())
        end = float(records.end_times[mask].max())
        if end <= start:
            raise DataError("trace covers zero duration")
        return steps / (end - start)

    def speed_series(self, window_steps: int = DEFAULT_SPEED_WINDOW_STEPS
                     ) -> List[Tuple[int, float]]:
        """Cluster speed averaged over consecutive windows of steps.

        Returns:
            A list of ``(cluster step at window end, steps/second)`` pairs —
            the series plotted in Fig. 2.
        """
        if window_steps <= 0:
            raise DataError("window_steps must be positive")
        records = self._step_columns()
        n = len(records)
        if n == 0:
            return []
        order = np.argsort(records.end_times, kind="stable")
        end = records.end_times[order]
        steps = records.step_counts[order]
        cluster = records.cluster_step_counts[order]
        if np.all(np.diff(cluster) >= 0):
            return self._speed_series_sorted(end, steps, cluster, window_steps)
        return self._speed_series_scan(end, steps, cluster, window_steps)

    def _speed_series_sorted(self, end: np.ndarray, steps: np.ndarray,
                             cluster: np.ndarray, window_steps: int
                             ) -> List[Tuple[int, float]]:
        """Windowed speeds via cumulative sums + bisection (monotone traces).

        Each window boundary is located with ``np.searchsorted`` and the
        window's step count read off a cumulative sum, replacing the
        record-by-record accumulation while producing the same values: the
        cumulative int64 sums are exact, and the elapsed-time and division
        expressions are unchanged.
        """
        n = len(end)
        cumulative = np.cumsum(steps)
        series: List[Tuple[int, float]] = []
        window_start_time = self.start_time
        previous_index = -1
        next_boundary = window_steps
        while True:
            i = int(np.searchsorted(cluster, next_boundary, side="left"))
            if i >= n:
                break
            window_steps_done = int(cumulative[i]) - (
                int(cumulative[previous_index]) if previous_index >= 0 else 0)
            elapsed = float(end[i]) - window_start_time
            if elapsed > 0:
                series.append((int(cluster[i]), window_steps_done / elapsed))
            window_start_time = float(end[i])
            previous_index = i
            next_boundary = int(cluster[i]) + window_steps
        return series

    def _speed_series_scan(self, end: np.ndarray, steps: np.ndarray,
                           cluster: np.ndarray, window_steps: int
                           ) -> List[Tuple[int, float]]:
        """Reference record-order scan, kept for non-monotone traces.

        Sessions that restart from a checkpoint (legacy chief-IP reuse)
        append a negative correction row, making the cluster-step column
        non-monotone; bisection would find boundaries out of order there,
        so those traces take the original linear scan over the columns.
        """
        series: List[Tuple[int, float]] = []
        window_start_time = self.start_time
        window_steps_done = 0
        next_boundary = window_steps
        end_list = end.tolist()
        steps_list = steps.tolist()
        cluster_list = cluster.tolist()
        for i in range(len(end_list)):
            window_steps_done += steps_list[i]
            if cluster_list[i] >= next_boundary:
                elapsed = end_list[i] - window_start_time
                if elapsed > 0:
                    series.append((cluster_list[i], window_steps_done / elapsed))
                window_start_time = end_list[i]
                window_steps_done = 0
                next_boundary = cluster_list[i] + window_steps
        return series

    def speed_stability(self, warmup_steps: int = DEFAULT_WARMUP_STEPS,
                        window_steps: int = DEFAULT_SPEED_WINDOW_STEPS) -> float:
        """Coefficient of variation of the windowed speed after warm-up."""
        series = [speed for step, speed in self.speed_series(window_steps)
                  if step > warmup_steps]
        if len(series) < 2:
            raise DataError("not enough windows to compute stability")
        values = np.asarray(series)
        return float(values.std(ddof=1) / values.mean())

    # ------------------------------------------------------------------
    # Per-worker statistics (Table III).
    # ------------------------------------------------------------------
    def worker_step_times(self, worker_id: str,
                          warmup_steps: int = DEFAULT_WARMUP_STEPS) -> np.ndarray:
        """Per-chunk average step times (seconds) for one worker.

        The worker's *own* first ``warmup_steps`` steps are discarded, which
        mirrors how the paper measures individual workers with TFProf.
        """
        records = self._step_columns()
        index = records.worker_index(worker_id)
        if index is not None:
            mask = ((records.worker_indices == index)
                    & (records.worker_step_counts > warmup_steps))
        else:
            mask = np.zeros(0, dtype=bool)
        if not mask.any():
            raise DataError(f"no post-warm-up steps recorded for worker {worker_id!r}")
        durations = records.end_times[mask] - records.start_times[mask]
        steps = records.step_counts[mask]
        safe_steps = np.where(steps != 0, steps, 1)
        return np.where(steps != 0, durations / safe_steps, 0.0)

    def worker_mean_step_time(self, worker_id: str,
                              warmup_steps: int = DEFAULT_WARMUP_STEPS) -> Tuple[float, float]:
        """Mean and standard deviation of one worker's step time (seconds)."""
        times = self.worker_step_times(worker_id, warmup_steps)
        std = float(times.std(ddof=1)) if len(times) > 1 else 0.0
        return float(times.mean()), std

    # ------------------------------------------------------------------
    # Checkpoint statistics (Section IV).
    # ------------------------------------------------------------------
    def checkpoint_durations(self) -> List[float]:
        """Durations (seconds) of all checkpoints in the trace."""
        return [record.duration for record in self.checkpoint_records]

    def total_checkpoint_time(self) -> float:
        """Total seconds spent checkpointing."""
        return float(sum(self.checkpoint_durations()))

    # ------------------------------------------------------------------
    # Revocation statistics (Section V).
    # ------------------------------------------------------------------
    @property
    def num_revocations(self) -> int:
        """Number of worker revocations observed."""
        return len(self.revocation_records)

    @property
    def num_replacements(self) -> int:
        """Number of replacement workers that joined."""
        return len(self.replacement_records)

    def summary(self) -> Dict[str, float]:
        """A compact numeric summary of the trace."""
        summary: Dict[str, float] = {
            "total_steps": float(self.total_steps),
            "duration_seconds": float(self.duration),
            "num_checkpoints": float(len(self.checkpoint_records)),
            "num_revocations": float(self.num_revocations),
            "num_replacements": float(self.num_replacements),
        }
        try:
            summary["cluster_speed"] = self.cluster_speed()
        except DataError:
            pass
        return summary
