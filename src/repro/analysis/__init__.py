"""Analysis helpers: statistics, empirical CDFs, table/figure rendering.

The benches use these to print tables shaped like the paper's and to emit
the data series behind each figure (as text, since the repository has no
plotting dependency).  :mod:`repro.analysis.streaming` adds the
bounded-memory accumulators the out-of-core telemetry analysis rides on
(chunk-fed moments, fixed-bin histograms, and exact spill-and-merge
percentiles).
"""

from repro.analysis.stats import (
    coefficient_of_variation,
    describe,
    empirical_cdf,
    mean_and_std,
)
from repro.analysis.streaming import (
    ExactPercentiles,
    StreamingDescribe,
    StreamingHistogram,
    StreamingMoments,
)
from repro.analysis.tables import format_table
from repro.analysis.figures import FigureSeries, ascii_plot
from repro.analysis.report import ExperimentReport

__all__ = [
    "coefficient_of_variation",
    "describe",
    "empirical_cdf",
    "mean_and_std",
    "ExactPercentiles",
    "StreamingDescribe",
    "StreamingHistogram",
    "StreamingMoments",
    "format_table",
    "FigureSeries",
    "ascii_plot",
    "ExperimentReport",
]
