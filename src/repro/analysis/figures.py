"""Figure series containers and a small ASCII plotter.

The repository has no plotting dependency; each Fig. N bench emits the data
series behind the figure, and :func:`ascii_plot` renders a quick terminal
sketch so the shape of a curve can be eyeballed in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import DataError


@dataclass
class FigureSeries:
    """Named (x, y) series making up one figure.

    Attributes:
        title: Figure title, e.g. ``"Fig. 4: cluster speed vs P100 workers"``.
        x_label: Label of the shared x axis.
        y_label: Label of the shared y axis.
        series: ``{series name: [(x, y), ...]}``.
    """

    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        """Add one named series."""
        self.series[name] = [(float(x), float(y)) for x, y in points]

    def names(self) -> List[str]:
        """Series names in insertion order."""
        return list(self.series)

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """Flatten to ``(series, x, y)`` rows (handy for CSV export)."""
        rows: List[Tuple[str, float, float]] = []
        for name, points in self.series.items():
            rows.extend((name, x, y) for x, y in points)
        return rows

    def to_text(self, float_format: str = "{:.3f}") -> str:
        """Render the series as an aligned text block."""
        lines = [f"{self.title}", f"x: {self.x_label}    y: {self.y_label}"]
        for name, points in self.series.items():
            rendered = ", ".join(
                f"({float_format.format(x)}, {float_format.format(y)})" for x, y in points)
            lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)


def ascii_plot(points: Sequence[Tuple[float, float]], width: int = 60, height: int = 12,
               marker: str = "*") -> str:
    """Render a single series as a small ASCII scatter plot.

    Args:
        points: ``(x, y)`` pairs.
        width: Plot width in characters.
        height: Plot height in lines.
        marker: Character used for data points.
    """
    if not points:
        raise DataError("cannot plot an empty series")
    if width < 10 or height < 4:
        raise DataError("plot dimensions too small")
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][column] = marker
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_min:.3g}, {x_max:.3g}]  y: [{y_min:.3g}, {y_max:.3g}]")
    return "\n".join(lines)
