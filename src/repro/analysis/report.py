"""Experiment reports: paper value vs. measured value bookkeeping.

EXPERIMENTS.md is generated from structures like these: every reproduced
table/figure records the quantities the paper reports next to what this
repository measures, plus a qualitative pass/fail on whether the *shape*
holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.errors import DataError


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured comparison.

    Attributes:
        quantity: What is being compared (e.g. ``"K80 ResNet-32 steps/s"``).
        paper_value: The value the paper reports, if it reports one.
        measured_value: The value this reproduction measures.
        unit: Unit of both values.
        note: Free-form note (e.g. why a deviation is expected).
    """

    quantity: str
    paper_value: Optional[float]
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        """Relative deviation from the paper value, when one exists."""
        if self.paper_value is None or self.paper_value == 0:
            return None
        return (self.measured_value - self.paper_value) / self.paper_value


@dataclass
class ExperimentReport:
    """A paper-vs-measured report for one experiment (table or figure)."""

    experiment_id: str
    description: str
    rows: List[ComparisonRow] = field(default_factory=list)
    observations: List[str] = field(default_factory=list)

    def add(self, quantity: str, measured_value: float,
            paper_value: Optional[float] = None, unit: str = "",
            note: str = "") -> None:
        """Add one comparison row."""
        self.rows.append(ComparisonRow(quantity=quantity, paper_value=paper_value,
                                       measured_value=measured_value, unit=unit,
                                       note=note))

    def observe(self, text: str) -> None:
        """Record a qualitative observation (shape check, crossover, ...)."""
        self.observations.append(text)

    def worst_relative_error(self) -> float:
        """Largest absolute relative error among rows with a paper value."""
        errors = [abs(row.relative_error) for row in self.rows
                  if row.relative_error is not None]
        if not errors:
            raise DataError("no rows carry a paper value")
        return max(errors)

    def to_text(self) -> str:
        """Render the report as text (the format used in EXPERIMENTS.md)."""
        table_rows = []
        for row in self.rows:
            paper = "-" if row.paper_value is None else f"{row.paper_value:.4g}"
            error = ("-" if row.relative_error is None
                     else f"{row.relative_error * 100:+.1f}%")
            table_rows.append([row.quantity, paper, f"{row.measured_value:.4g}",
                               row.unit, error, row.note])
        body = format_table(
            ["quantity", "paper", "measured", "unit", "rel. error", "note"], table_rows,
            title=f"{self.experiment_id}: {self.description}")
        if self.observations:
            body += "\nObservations:\n" + "\n".join(f"  - {o}" for o in self.observations)
        return body
