"""Small statistics helpers used across campaigns and benches."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import DataError


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise DataError("cannot summarize an empty sequence")
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    return float(array.mean()), std


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean."""
    mean, std = mean_and_std(values)
    if mean == 0:
        raise DataError("coefficient of variation is undefined for a zero mean")
    return std / mean


def empirical_cdf(values: Sequence[float], grid: Sequence[float],
                  population: int = 0) -> np.ndarray:
    """Empirical CDF of ``values`` evaluated on ``grid``.

    Args:
        values: Observed values (e.g. lifetimes of revoked servers).
        grid: Points at which to evaluate the CDF.
        population: Total population size; when larger than ``len(values)``
            the CDF saturates below one (right-censored observations, as in
            the paper's lifetime data where survivors never revoke).
    """
    observations = np.asarray(list(values), dtype=float)
    denominator = max(population, observations.size)
    if denominator == 0:
        raise DataError("cannot build a CDF with no observations and no population")
    # One sort + searchsorted instead of an O(len(grid) * n) Python loop:
    # the count of observations <= point is the right-insertion index of
    # point into the sorted observations.
    ordered = np.sort(observations)
    counts = np.searchsorted(ordered, np.asarray(list(grid), dtype=float),
                             side="right")
    return counts / denominator


def describe(values: Sequence[float]) -> Dict[str, float]:
    """A small descriptive-statistics summary."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise DataError("cannot describe an empty sequence")
    p50, p95 = np.percentile(array, (50.0, 95.0))
    return {
        "count": float(array.size),
        "mean": float(array.mean()),
        "std": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "p50": float(p50),
        "p95": float(p95),
        "max": float(array.max()),
    }


def relative_difference(measured: float, reference: float) -> float:
    """``(measured - reference) / reference``; used for paper-vs-measured checks."""
    if reference == 0:
        raise DataError("reference value must be non-zero")
    return (measured - reference) / reference
