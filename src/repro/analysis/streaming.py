"""Bounded-memory streaming accumulators for out-of-core analysis.

The fleet telemetry artifacts of :mod:`repro.telemetry` hold step tables
far larger than a bounded-memory host should materialize (the ROADMAP
north star is 100k-job fleets).  The accumulators here consume those
tables one chunk at a time and never hold more than O(block) values:

* :class:`StreamingMoments` — count / mean / std (ddof=1) / min / max;
* :class:`StreamingHistogram` — fixed-bin counts;
* :class:`ExactPercentiles` — *exact* order statistics (numpy's
  ``linear`` interpolation, bit-identical to :func:`numpy.percentile`)
  via sorted runs spilled to disk and a lazy k-way merge;
* :class:`StreamingDescribe` — the three combined into the same summary
  dict shape as :func:`repro.analysis.stats.describe`.

Partition invariance
--------------------
Results must not depend on how the caller chunks the stream (an artifact
written with ``chunk_rows=512`` must analyze identically to the same
rows written with ``chunk_rows=4096``, and to the fully materialized
table).  Order statistics, min/max, and integer histogram counts are
partition-invariant by definition.  Mean/M2 are made so by *canonical
re-blocking*: values are buffered and folded in fixed ``block_rows``
blocks regardless of the incoming chunk sizes, each block summarized
with numpy's pairwise reduction and merged left-to-right with Chan's
parallel update — so the sequence of float operations is a pure function
of the value stream, and streaming results are bit-identical to feeding
one concatenated array through the same accumulator.

Memory contract
---------------
Peak held state is O(``block_rows``) per accumulator: the re-block
buffer for moments, one sorted run for percentiles (full runs live on
disk until :meth:`ExactPercentiles.percentile` merges them back in
bounded slices), and a constant-size counts array for histograms.  The
``BENCH_telemetry.json`` baseline pins this with tracemalloc: analysis
peak stays flat as the fleet grows 10x.
"""

from __future__ import annotations

import heapq
import math
import os
import shutil
import tempfile
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError

#: Values folded per canonical block (and per spilled percentile run).
DEFAULT_BLOCK_ROWS = 4096


def _as_vector(values) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        array = array.reshape(-1)
    return array


class StreamingMoments:
    """Count/mean/std/min/max of a float stream in O(block) memory.

    Chunk-size invariant (see the module docstring): feeding the same
    values through any chunking — including one concatenated array —
    produces bit-identical results.
    """

    def __init__(self, block_rows: int = DEFAULT_BLOCK_ROWS):
        if block_rows <= 0:
            raise DataError("block_rows must be positive")
        self.block_rows = int(block_rows)
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._pending: List[np.ndarray] = []
        self._pending_rows = 0

    def update(self, values) -> None:
        """Fold a chunk of values into the running summary."""
        array = _as_vector(values)
        if array.size == 0:
            return
        low = float(array.min())
        high = float(array.max())
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)
        self._pending.append(array)
        self._pending_rows += array.size
        while self._pending_rows >= self.block_rows:
            buffered = np.concatenate(self._pending)
            block, remainder = (buffered[:self.block_rows],
                                buffered[self.block_rows:])
            self._fold_block(block)
            self._pending = [remainder] if remainder.size else []
            self._pending_rows = int(remainder.size)

    def _fold_block(self, block: np.ndarray) -> None:
        n_b = int(block.size)
        mean_b = float(block.mean())
        m2_b = float(np.square(block - mean_b).sum())
        self._count, self._mean, self._m2 = _merge_moments(
            self._count, self._mean, self._m2, n_b, mean_b, m2_b)

    def _current(self) -> Tuple[int, float, float]:
        """Running moments including the not-yet-full remainder block."""
        if not self._pending_rows:
            return self._count, self._mean, self._m2
        remainder = (self._pending[0] if len(self._pending) == 1
                     else np.concatenate(self._pending))
        n_b = int(remainder.size)
        mean_b = float(remainder.mean())
        m2_b = float(np.square(remainder - mean_b).sum())
        return _merge_moments(self._count, self._mean, self._m2,
                              n_b, mean_b, m2_b)

    @property
    def count(self) -> int:
        return self._count + self._pending_rows

    @property
    def mean(self) -> float:
        count, mean, _ = self._current()
        if count == 0:
            raise DataError("cannot summarize an empty stream")
        return mean

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0.0 for a single value."""
        count, _, m2 = self._current()
        if count == 0:
            raise DataError("cannot summarize an empty stream")
        if count < 2:
            return 0.0
        return math.sqrt(m2 / (count - 1))

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise DataError("cannot summarize an empty stream")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise DataError("cannot summarize an empty stream")
        return self._max


def _merge_moments(n_a: int, mean_a: float, m2_a: float,
                   n_b: int, mean_b: float, m2_b: float
                   ) -> Tuple[int, float, float]:
    """Chan's parallel mean/M2 update (numerically stable merge)."""
    n = n_a + n_b
    if n == 0:
        return 0, 0.0, 0.0
    delta = mean_b - mean_a
    mean = mean_a + delta * (n_b / n)
    m2 = m2_a + m2_b + delta * delta * (n_a * (n_b / n))
    return n, mean, m2


class StreamingHistogram:
    """Fixed-bin histogram accumulated chunk by chunk.

    Integer counts sum exactly, so the result is independent of the
    chunking and equals ``np.histogram(all_values, bins=edges)``.
    """

    def __init__(self, edges: Sequence[float]):
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise DataError("histogram edges need at least two values")
        if not np.all(np.diff(self.edges) > 0):
            raise DataError("histogram edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)

    def update(self, values) -> None:
        array = _as_vector(values)
        if array.size:
            self.counts += np.histogram(array, bins=self.edges)[0]

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class ExactPercentiles:
    """Exact percentiles of a float stream in O(run) memory.

    Incoming values are buffered, sorted, and spilled as raw
    little-endian ``float64`` runs in a private temporary directory
    (headerless, so re-opening a run costs one file handle and nothing
    else); :meth:`percentile` lazily k-way merges the runs, read in
    bounded slices, just far enough to pull the order statistics the
    requested percentiles interpolate between.  The interpolation
    replicates numpy's default ``linear`` method operation for
    operation, so results are bit-identical to ``np.percentile`` over
    the materialized stream.
    """

    def __init__(self, run_rows: int = DEFAULT_BLOCK_ROWS,
                 spool_dir: Optional[str] = None):
        if run_rows <= 0:
            raise DataError("run_rows must be positive")
        self.run_rows = int(run_rows)
        self._own_dir = spool_dir is None
        self._dir = spool_dir or tempfile.mkdtemp(prefix="repro-percentiles-")
        self._runs: List[str] = []
        self._pending: List[np.ndarray] = []
        self._pending_rows = 0
        self._count = 0

    # ------------------------------------------------------------------
    def update(self, values) -> None:
        array = _as_vector(values)
        if array.size == 0:
            return
        self._count += int(array.size)
        self._pending.append(array)
        self._pending_rows += int(array.size)
        while self._pending_rows >= self.run_rows:
            buffered = np.concatenate(self._pending)
            self._spill(buffered[:self.run_rows])
            remainder = buffered[self.run_rows:]
            self._pending = [remainder] if remainder.size else []
            self._pending_rows = int(remainder.size)

    def _spill(self, run: np.ndarray) -> None:
        path = os.path.join(self._dir, f"run{len(self._runs):06d}.bin")
        np.sort(run).astype("<f8").tofile(path)
        self._runs.append(path)

    @property
    def count(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def _merged(self) -> Iterator[float]:
        """The globally sorted value stream, read in bounded slices."""
        sources: List[Iterable[float]] = []
        streams = len(self._runs) + (1 if self._pending_rows else 0)
        # Slice runs small enough that all resident slices together stay
        # O(run_rows) no matter how many runs were spilled.
        slice_rows = max(64, self.run_rows // max(1, streams))

        def run_values(path: str) -> Iterator[float]:
            # buffering=0: the explicit slice reads ARE the buffer; a
            # default BufferedReader would pin 8 KiB per open run.
            with open(path, "rb", buffering=0) as handle:
                while True:
                    data = handle.read(slice_rows * 8)
                    if not data:
                        return
                    # A raw handle may return short reads; top up to a
                    # whole number of float64 values.
                    while len(data) % 8:
                        more = handle.read(8 - len(data) % 8)
                        if not more:
                            raise DataError(f"truncated percentile run "
                                            f"{path!r}")
                        data += more
                    yield from np.frombuffer(data, dtype="<f8").tolist()

        def tail_values(tail: np.ndarray) -> Iterator[float]:
            # Slice like the disk runs: one full .tolist() would pin
            # O(run_rows) boxed floats for the whole merge.
            for start in range(0, tail.shape[0], slice_rows):
                yield from tail[start:start + slice_rows].tolist()

        sources.extend(run_values(path) for path in self._runs)
        if self._pending_rows:
            tail = (self._pending[0] if len(self._pending) == 1
                    else np.concatenate(self._pending))
            sources.append(tail_values(np.sort(tail)))
        return heapq.merge(*sources)

    def percentile(self, percentiles: Sequence[float]) -> List[float]:
        """Exact percentiles (numpy ``linear`` method) of the stream."""
        n = self._count
        if n == 0:
            raise DataError("cannot take percentiles of an empty stream")
        targets = [float(q) for q in percentiles]
        for q in targets:
            if not 0.0 <= q <= 100.0:
                raise DataError(f"percentile {q} outside [0, 100]")
        # The ranks the interpolation needs: floor and ceil of each
        # virtual index (q/100 * (n-1)), exactly as numpy computes them.
        virtuals = [(q / 100.0) * (n - 1) for q in targets]
        needed: Dict[int, float] = {}
        for virtual in virtuals:
            if virtual >= n - 1:
                needed[n - 1] = math.nan
            else:
                lower = int(math.floor(virtual))
                needed[lower] = math.nan
                needed[lower + 1] = math.nan
        highest = max(needed)
        for rank, value in enumerate(self._merged()):
            if rank in needed:
                needed[rank] = value
            if rank >= highest:
                break
        results = []
        for virtual in virtuals:
            if virtual >= n - 1:
                results.append(needed[n - 1])
                continue
            lower = int(math.floor(virtual))
            a, b = needed[lower], needed[lower + 1]
            gamma = virtual - lower
            # numpy's _lerp: the t >= 0.5 branch recomputes from b so
            # that q=100-q symmetry holds to the last bit.
            diff = b - a
            value = a + diff * gamma
            if gamma >= 0.5:
                value = b - diff * (1.0 - gamma)
            results.append(value)
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Delete the spilled runs; the accumulator is dead afterwards."""
        if self._own_dir and os.path.isdir(self._dir):
            shutil.rmtree(self._dir, ignore_errors=True)
        self._runs = []
        self._pending = []
        self._pending_rows = 0

    def __enter__(self) -> "ExactPercentiles":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StreamingDescribe:
    """Streaming counterpart of :func:`repro.analysis.stats.describe`.

    Combines :class:`StreamingMoments` and :class:`ExactPercentiles`
    into the same ``count/mean/std/min/p50/p95/max`` summary dict.
    Percentiles are bit-identical to the materialized ``np.percentile``;
    mean/std use the stable block-merge (chunk-size invariant, equal to
    the numpy reductions to ~1e-12 relative).
    """

    def __init__(self, block_rows: int = DEFAULT_BLOCK_ROWS,
                 percentiles: Sequence[float] = (50.0, 95.0),
                 spool_dir: Optional[str] = None):
        self.percentiles = tuple(float(q) for q in percentiles)
        self._moments = StreamingMoments(block_rows=block_rows)
        self._order = ExactPercentiles(run_rows=block_rows,
                                       spool_dir=spool_dir)

    def update(self, values) -> None:
        array = _as_vector(values)
        self._moments.update(array)
        self._order.update(array)

    @property
    def count(self) -> int:
        return self._moments.count

    def result(self) -> Dict[str, float]:
        """The describe-shaped summary; raises on an empty stream."""
        if self._moments.count == 0:
            raise DataError("cannot summarize an empty stream")
        quantiles = self._order.percentile(self.percentiles)
        summary = {
            "count": float(self._moments.count),
            "mean": self._moments.mean,
            "std": self._moments.std,
            "min": self._moments.minimum,
        }
        for q, value in zip(self.percentiles, quantiles):
            summary[f"p{q:g}"] = float(value)
        summary["max"] = self._moments.maximum
        return summary

    def close(self) -> None:
        self._order.close()

    def __enter__(self) -> "StreamingDescribe":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
