"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import DataError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.3f}") -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headers.
        rows: Table rows; floats are formatted with ``float_format``, other
            values with ``str``.
        title: Optional title printed above the table.
        float_format: Format string applied to float cells.

    Returns:
        The rendered table as a multi-line string.
    """
    if not headers:
        raise DataError("a table needs at least one column")

    def render_cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows: List[List[str]] = [[render_cell(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise DataError("every row must have one cell per header")
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
