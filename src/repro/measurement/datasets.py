"""Dataset persistence.

The paper publishes its raw measurement data alongside CM-DARE; this module
provides the equivalent for the reproduction: every campaign's records can
be written to and read back from plain CSV/JSON files, so the regression
models can be (re)fitted offline without re-running the simulator.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.cmdare.profiler import (
    CheckpointMeasurement,
    PerformanceProfiler,
    SpeedMeasurement,
)
from repro.errors import DataError
from repro.measurement.revocation_campaign import (
    RevocationCampaignResult,
    ServerFateRecord,
)

PathLike = Union[str, Path]

_SPEED_FIELDS = ["model_name", "gpu_name", "model_gflops", "gpu_teraflops",
                 "step_time", "cluster_size", "num_parameter_servers"]
_CHECKPOINT_FIELDS = ["model_name", "data_bytes", "index_bytes", "meta_bytes",
                      "duration"]
_FATE_FIELDS = ["gpu_name", "region_name", "day", "launch_hour_local", "stressed",
                "revoked", "lifetime_hours", "revocation_hour_local"]


def _ensure_parent(path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)


# ---------------------------------------------------------------------------
# Speed measurements.
# ---------------------------------------------------------------------------
def save_speed_measurements(measurements: Sequence[SpeedMeasurement],
                            path: PathLike) -> Path:
    """Write speed measurements to a CSV file and return the path."""
    target = Path(path)
    _ensure_parent(target)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_SPEED_FIELDS)
        writer.writeheader()
        for measurement in measurements:
            writer.writerow({field: getattr(measurement, field)
                             for field in _SPEED_FIELDS})
    return target


def load_speed_measurements(path: PathLike) -> List[SpeedMeasurement]:
    """Read speed measurements from a CSV file written by ``save_speed_measurements``."""
    source = Path(path)
    if not source.exists():
        raise DataError(f"speed dataset {source} does not exist")
    measurements: List[SpeedMeasurement] = []
    with source.open(newline="") as handle:
        for row in csv.DictReader(handle):
            measurements.append(SpeedMeasurement(
                model_name=row["model_name"], gpu_name=row["gpu_name"],
                model_gflops=float(row["model_gflops"]),
                gpu_teraflops=float(row["gpu_teraflops"]),
                step_time=float(row["step_time"]),
                cluster_size=int(row["cluster_size"]),
                num_parameter_servers=int(row["num_parameter_servers"])))
    if not measurements:
        raise DataError(f"speed dataset {source} is empty")
    return measurements


# ---------------------------------------------------------------------------
# Checkpoint measurements.
# ---------------------------------------------------------------------------
def save_checkpoint_measurements(measurements: Sequence[CheckpointMeasurement],
                                 path: PathLike) -> Path:
    """Write checkpoint measurements to a CSV file and return the path."""
    target = Path(path)
    _ensure_parent(target)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CHECKPOINT_FIELDS)
        writer.writeheader()
        for measurement in measurements:
            writer.writerow({field: getattr(measurement, field)
                             for field in _CHECKPOINT_FIELDS})
    return target


def load_checkpoint_measurements(path: PathLike) -> List[CheckpointMeasurement]:
    """Read checkpoint measurements from a CSV file."""
    source = Path(path)
    if not source.exists():
        raise DataError(f"checkpoint dataset {source} does not exist")
    measurements: List[CheckpointMeasurement] = []
    with source.open(newline="") as handle:
        for row in csv.DictReader(handle):
            measurements.append(CheckpointMeasurement(
                model_name=row["model_name"], data_bytes=int(row["data_bytes"]),
                index_bytes=int(row["index_bytes"]), meta_bytes=int(row["meta_bytes"]),
                duration=float(row["duration"])))
    if not measurements:
        raise DataError(f"checkpoint dataset {source} is empty")
    return measurements


def load_profiler(speed_path: PathLike, checkpoint_path: PathLike) -> PerformanceProfiler:
    """Build a profiler from previously saved speed and checkpoint datasets."""
    profiler = PerformanceProfiler()
    for measurement in load_speed_measurements(speed_path):
        profiler.record_speed(measurement)
    for measurement in load_checkpoint_measurements(checkpoint_path):
        profiler.record_checkpoint(measurement)
    return profiler


# ---------------------------------------------------------------------------
# Revocation campaign records.
# ---------------------------------------------------------------------------
def save_revocation_records(result: RevocationCampaignResult, path: PathLike) -> Path:
    """Write a revocation campaign's per-server records to a JSON file."""
    target = Path(path)
    _ensure_parent(target)
    payload: List[Dict] = []
    for record in result.records:
        payload.append({field: getattr(record, field) for field in _FATE_FIELDS})
    target.write_text(json.dumps({"records": payload}, indent=2))
    return target


def load_revocation_records(path: PathLike) -> RevocationCampaignResult:
    """Read a revocation campaign back from a JSON file."""
    source = Path(path)
    if not source.exists():
        raise DataError(f"revocation dataset {source} does not exist")
    try:
        payload = json.loads(source.read_text())
        rows = payload["records"]
    except (json.JSONDecodeError, KeyError) as error:
        raise DataError(f"revocation dataset {source} is malformed: {error}") from error
    result = RevocationCampaignResult()
    for row in rows:
        result.records.append(ServerFateRecord(
            gpu_name=row["gpu_name"], region_name=row["region_name"],
            day=int(row["day"]), launch_hour_local=float(row["launch_hour_local"]),
            stressed=bool(row["stressed"]), revoked=bool(row["revoked"]),
            lifetime_hours=float(row["lifetime_hours"]),
            revocation_hour_local=(None if row["revocation_hour_local"] is None
                                   else float(row["revocation_hour_local"]))))
    if not result.records:
        raise DataError(f"revocation dataset {source} is empty")
    return result
