"""Transient-server revocation campaign (Table V, Fig. 8, Fig. 9).

The paper requests transient GPU servers in batches across six regions on
twelve non-consecutive days, lets each batch run for its maximum 24-hour
lifetime, and records every revocation.  Half the servers are idle and half
are stressed with CPU/memory/GPU load; revocation behaviour turns out to be
identical for the two groups.

The campaign reproduces that protocol on the calibrated revocation model
and returns the per-server records, from which the Table V aggregation,
the per-region lifetime CDFs (Fig. 8), and the hour-of-day histograms
(Fig. 9) are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.errors import DataError
from repro.modeling.revocation_estimator import RevocationEstimator
from repro.simulation.rng import RandomStreams
from repro.units import hour_bin
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)

#: Servers launched per (GPU, region) cell, matching the Table V counts.
TABLE5_LAUNCH_COUNTS: Dict[Tuple[str, str], int] = {
    ("k80", "us-east1"): 30,
    ("k80", "us-central1"): 48,
    ("k80", "us-west1"): 48,
    ("k80", "europe-west1"): 30,
    ("p100", "us-east1"): 30,
    ("p100", "us-central1"): 30,
    ("p100", "us-west1"): 30,
    ("p100", "europe-west1"): 30,
    ("v100", "us-central1"): 30,
    ("v100", "us-west1"): 30,
    ("v100", "europe-west4"): 30,
    ("v100", "asia-east1"): 30,
}

#: The campaign spans twelve non-consecutive days.
CAMPAIGN_DAYS = 12


@dataclass(frozen=True)
class ServerFateRecord:
    """The fate of one launched transient server.

    Attributes:
        gpu_name: GPU type.
        region_name: Launch region.
        day: Campaign day index (0-11).
        launch_hour_local: Local hour-of-day at launch.
        stressed: Whether the server ran a training-like workload.
        revoked: Whether the server was revoked before 24 hours.
        lifetime_hours: Observed lifetime (24.0 for survivors).
        revocation_hour_local: Local hour of the revocation, if revoked.
    """

    gpu_name: str
    region_name: str
    day: int
    launch_hour_local: float
    stressed: bool
    revoked: bool
    lifetime_hours: float
    revocation_hour_local: Optional[float]


@dataclass
class RevocationCampaignResult:
    """All server fates observed by the campaign."""

    records: List[ServerFateRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Table V.
    # ------------------------------------------------------------------
    def cell_records(self, gpu_name: str, region_name: str) -> List[ServerFateRecord]:
        """Records for one (GPU, region) cell."""
        gpu = get_gpu(gpu_name).name
        region = get_region(region_name).name
        return [r for r in self.records
                if r.gpu_name == gpu and r.region_name == region]

    def revocation_table(self) -> Dict[Tuple[str, str], Tuple[int, int, float]]:
        """Table V: ``{(gpu, region): (launched, revoked, revoked fraction)}``."""
        table: Dict[Tuple[str, str], Tuple[int, int, float]] = {}
        cells = sorted({(r.gpu_name, r.region_name) for r in self.records})
        for gpu, region in cells:
            records = self.cell_records(gpu, region)
            launched = len(records)
            revoked = sum(1 for r in records if r.revoked)
            table[(gpu, region)] = (launched, revoked, revoked / launched)
        return table

    def totals_by_gpu(self) -> Dict[str, Tuple[int, int, float]]:
        """Table V's "total" row: per-GPU launched/revoked/fraction."""
        totals: Dict[str, Tuple[int, int, float]] = {}
        for gpu in sorted({r.gpu_name for r in self.records}):
            records = [r for r in self.records if r.gpu_name == gpu]
            launched = len(records)
            revoked = sum(1 for r in records if r.revoked)
            totals[gpu] = (launched, revoked, revoked / launched)
        return totals

    def workload_split(self) -> Dict[str, Tuple[int, int, float]]:
        """Revocation statistics split by idle vs. stressed servers."""
        split: Dict[str, Tuple[int, int, float]] = {}
        for stressed, label in ((False, "idle"), (True, "stressed")):
            records = [r for r in self.records if r.stressed == stressed]
            if not records:
                continue
            revoked = sum(1 for r in records if r.revoked)
            split[label] = (len(records), revoked, revoked / len(records))
        return split

    # ------------------------------------------------------------------
    # Fig. 8: lifetime CDFs.
    # ------------------------------------------------------------------
    def lifetime_cdf(self, gpu_name: str, region_name: str,
                     hours: Sequence[float]) -> np.ndarray:
        """Empirical lifetime CDF for one cell, evaluated on an hour grid."""
        records = self.cell_records(gpu_name, region_name)
        if not records:
            raise DataError(f"no records for ({gpu_name}, {region_name})")
        lifetimes = np.array([r.lifetime_hours for r in records if r.revoked])
        launched = len(records)
        return np.array([(lifetimes <= h).sum() / launched for h in hours])

    def mean_time_to_revocation(self, gpu_name: str, region_name: str,
                                include_survivors: bool = True) -> float:
        """Mean lifetime in hours for one cell."""
        records = self.cell_records(gpu_name, region_name)
        if not records:
            raise DataError(f"no records for ({gpu_name}, {region_name})")
        if include_survivors:
            return float(np.mean([r.lifetime_hours for r in records]))
        revoked = [r.lifetime_hours for r in records if r.revoked]
        if not revoked:
            raise DataError("no revocations in the cell")
        return float(np.mean(revoked))

    # ------------------------------------------------------------------
    # Fig. 9: time-of-day histograms.
    # ------------------------------------------------------------------
    def hour_of_day_histogram(self, gpu_name: str) -> np.ndarray:
        """Revocation counts per local hour-of-day (24 bins) for a GPU type."""
        gpu = get_gpu(gpu_name).name
        histogram = np.zeros(24, dtype=int)
        for record in self.records:
            if record.gpu_name == gpu and record.revoked:
                histogram[hour_bin(record.revocation_hour_local)] += 1
        return histogram

    # ------------------------------------------------------------------
    # Downstream consumers.
    # ------------------------------------------------------------------
    def to_estimator(self, fallback_model: Optional[RevocationModel] = None
                     ) -> RevocationEstimator:
        """Build the Eq. (5) revocation estimator from the observed data."""
        estimator = RevocationEstimator(fallback_model=fallback_model)
        for (gpu, region), (launched, _revoked, _frac) in self.revocation_table().items():
            lifetimes = [r.lifetime_hours for r in self.cell_records(gpu, region)
                         if r.revoked]
            estimator.add_observations(gpu, region, lifetimes, launched)
        return estimator


def _launch_batch(launch: Dict[str, Any], days: int, streams: RandomStreams,
                  model: RevocationModel) -> List[Dict[str, Any]]:
    """Launch one (GPU, region) batch and record every server's fate.

    Scheduling draws come from the cell's own streams so the protocol is
    identical whichever revocation model observes the launches.
    """
    gpu_name, region_name = launch["gpu"], launch["region"]
    scheduler_rng = streams.get("launch_schedule")
    records: List[Dict[str, Any]] = []
    for index in range(launch["count"]):
        day = int(scheduler_rng.integers(0, days))
        # Batches are requested during the (local) working day.
        launch_hour = float(scheduler_rng.uniform(7.0, 19.0))
        stressed = index % 2 == 1
        outcome = model.sample(gpu_name, region_name,
                               launch_hour_local=launch_hour, stressed=stressed)
        records.append({
            "gpu_name": get_gpu(gpu_name).name,
            "region_name": get_region(region_name).name,
            "day": day, "launch_hour_local": launch_hour, "stressed": stressed,
            "revoked": outcome.revoked,
            "lifetime_hours": float(outcome.lifetime_hours),
            "revocation_hour_local": (
                None if outcome.revocation_hour_local is None
                else float(outcome.revocation_hour_local)),
        })
    return records


def revocation_cell(cell: SweepCell, streams: RandomStreams,
                    _context: Any) -> List[Dict[str, Any]]:
    """Sweep cell: launch ``count`` servers in one (GPU, region) cell."""
    model = RevocationModel(rng=streams.get("revocation"))
    return _launch_batch(cell.params["launch"], cell.params["days"], streams,
                         model)


def build_revocation_spec(launch_counts: Optional[Dict[Tuple[str, str], int]] = None,
                          days: int = CAMPAIGN_DAYS) -> SweepSpec:
    """One sweep cell per (GPU, region) launch batch of Table V."""
    counts = (dict(launch_counts) if launch_counts is not None
              else dict(TABLE5_LAUNCH_COUNTS))
    launches = [{"gpu": gpu, "region": region, "count": int(count)}
                for (gpu, region), count in sorted(counts.items())]
    return SweepSpec("revocation", axes={"launch": launches},
                     fixed={"days": int(days)})


def run_revocation_campaign(launch_counts: Optional[Dict[Tuple[str, str], int]] = None,
                            days: int = CAMPAIGN_DAYS,
                            seed: int = 0,
                            revocation_model: Optional[RevocationModel] = None,
                            workers: Optional[int] = None,
                            cache_dir: Optional[str] = None
                            ) -> RevocationCampaignResult:
    """Launch transient servers across regions/days and record their fates.

    Args:
        launch_counts: Servers to launch per (GPU, region) cell; defaults to
            the paper's Table V counts.
        days: Number of campaign days the launches are spread over.
        seed: Root seed.
        revocation_model: Revocation model; the calibrated default if
            omitted.  A custom model forces the serial in-process path
            (it cannot be shipped to worker processes or cached).
        workers: Worker processes for the sweep (serial if omitted).
        cache_dir: Sweep result cache directory (no caching if omitted).

    Returns:
        A :class:`RevocationCampaignResult`.
    """
    result = RevocationCampaignResult()
    spec = build_revocation_spec(launch_counts, days)
    if revocation_model is not None:
        # Bespoke model: run through the runner's serial in-process path
        # (a closure never gets pickled there), sharing the cell fn's
        # scheduling protocol, error contract, and result assembly.  No
        # cache: the model's identity is not part of any cache key.
        def bespoke_cell(cell, streams, _context):
            return _launch_batch(cell.params["launch"], cell.params["days"],
                                 streams, revocation_model)

        sweep = SweepRunner(workers=None, seed=seed).run(spec, bespoke_cell)
    else:
        sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
            spec, revocation_cell)
    for batch in sweep.payloads():
        for record in batch:
            result.records.append(ServerFateRecord(
                gpu_name=record["gpu_name"], region_name=record["region_name"],
                day=record["day"], launch_hour_local=record["launch_hour_local"],
                stressed=record["stressed"], revoked=record["revoked"],
                lifetime_hours=record["lifetime_hours"],
                revocation_hour_local=record["revocation_hour_local"]))
    return result


register_sweep(SweepDefinition(
    name="revocation",
    description="12-day transient-server revocation campaign (Table V)",
    build_spec=build_revocation_spec,
    cell_fn=revocation_cell,
    summarize=lambda result: "\n".join(
        f"{r.cell.params['launch']['gpu']:5s} {r.cell.params['launch']['region']:14s}"
        f" launched={len(r.payload):3d}"
        f" revoked={sum(1 for record in r.payload if record['revoked']):3d}"
        for r in result.results)))
