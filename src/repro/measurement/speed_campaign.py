"""Training-speed measurement campaign (Table I, Figs. 2-3, Table II data).

The campaign trains each (model, GPU) pair on the paper's simplest cluster —
one GPU worker plus one parameter server in the same data center — for a
fixed number of steps, records the cluster speed and the per-100-step speed
series, and feeds a :class:`~repro.cmdare.profiler.PerformanceProfiler`
with the per-worker step-time measurements the regression models are
trained on.

The (model, GPU) grid runs through :class:`repro.sweeps.SweepRunner`, so
campaigns parallelize over a process pool and reuse cached cells when a
``cache_dir`` is given; results are identical either way because each
cell's random streams are derived from the cell parameters alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cloud.gpus import get_gpu
from repro.cmdare.profiler import PerformanceProfiler, SpeedMeasurement
from repro.perf.ps_capacity import PSCapacityModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession
from repro.training.trace import TrainingTrace
from repro.workloads.catalog import ModelCatalog, NAMED_MODELS, default_catalog

#: The GPUs of the study (Table I rows).
DEFAULT_GPUS: Tuple[str, ...] = ("k80", "p100", "v100")

#: The paper trains each measured cluster for 4000 steps.
DEFAULT_MEASUREMENT_STEPS = 4000


@dataclass(frozen=True)
class SpeedCell:
    """One (model, GPU) cell of the campaign.

    Attributes:
        model_name: CNN model name.
        gpu_name: GPU type.
        model_gflops: Model complexity in GFLOPs.
        gpu_teraflops: GPU capacity in teraflops.
        speed_mean: Cluster training speed (steps/second), post-warm-up.
        speed_std: Standard deviation of the windowed speed.
        step_time: Average per-step time (seconds).
    """

    model_name: str
    gpu_name: str
    model_gflops: float
    gpu_teraflops: float
    speed_mean: float
    speed_std: float
    step_time: float

    @property
    def computation_ratio(self) -> float:
        """``Cm / Cgpu``: the paper's computation ratio."""
        return self.model_gflops / self.gpu_teraflops


@dataclass
class SpeedCampaignResult:
    """Everything produced by one speed campaign.

    Attributes:
        cells: Per-(model, GPU) summary rows (Table I / Fig. 3 points).
        profiler: Profiler loaded with per-worker measurements (Table II
            training data).
        speed_series: Windowed speed series per (model, GPU), used by
            Fig. 2.
    """

    cells: List[SpeedCell] = field(default_factory=list)
    profiler: PerformanceProfiler = field(default_factory=PerformanceProfiler)
    speed_series: Dict[Tuple[str, str], List[Tuple[int, float]]] = field(default_factory=dict)

    def cell(self, model_name: str, gpu_name: str) -> SpeedCell:
        """Look up one cell."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.gpu_name == gpu_name.lower():
                return cell
        raise KeyError(f"no cell for ({model_name}, {gpu_name})")

    def table1(self, model_names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """Table I layout: ``{gpu: {model: (speed mean, speed std)}}``."""
        names = list(model_names) if model_names is not None else list(NAMED_MODELS)
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for cell in self.cells:
            if cell.model_name not in names:
                continue
            table.setdefault(cell.gpu_name, {})[cell.model_name] = (cell.speed_mean,
                                                                    cell.speed_std)
        return table

    def measurements(self) -> List[SpeedMeasurement]:
        """All per-worker speed measurements (the regression dataset)."""
        return self.profiler.speed_measurements


def _measure_single_worker(model_name: str, gpu_name: str, catalog: ModelCatalog,
                           steps: int, streams: RandomStreams
                           ) -> Tuple[SpeedCell, TrainingTrace]:
    """Run one single-worker measurement session and summarize it."""
    profile = catalog.profile(model_name)
    gpu = get_gpu(gpu_name)
    simulator = Simulator()
    region = "us-east1" if gpu.name != "v100" else "us-central1"
    cluster = ClusterSpec.single(gpu.name, region_name=region)
    session = TrainingSession(
        simulator, cluster, measurement_job(profile, steps=steps), streams=streams,
        step_time_model=StepTimeModel(rng=streams.get("step_time")),
        ps_capacity_model=PSCapacityModel())
    trace = session.run_to_completion()
    series = trace.speed_series()
    post_warmup = [speed for step, speed in series if step > 100]
    import numpy as np

    speeds = np.asarray(post_warmup)
    cell = SpeedCell(
        model_name=model_name,
        gpu_name=gpu.name,
        model_gflops=profile.gflops,
        gpu_teraflops=gpu.teraflops,
        speed_mean=float(speeds.mean()),
        speed_std=float(speeds.std(ddof=1)) if len(speeds) > 1 else 0.0,
        step_time=float(1.0 / speeds.mean()),
    )
    return cell, trace


def speed_cell(cell: SweepCell, streams: RandomStreams,
               catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: measure one (model, GPU) pair on a single-worker cluster."""
    catalog = catalog if catalog is not None else default_catalog()
    summary, trace = _measure_single_worker(
        cell.params["model_name"], cell.params["gpu_name"], catalog,
        cell.params["steps"], streams)
    return {
        "model_name": summary.model_name,
        "gpu_name": summary.gpu_name,
        "model_gflops": summary.model_gflops,
        "gpu_teraflops": summary.gpu_teraflops,
        "speed_mean": summary.speed_mean,
        "speed_std": summary.speed_std,
        "step_time": summary.step_time,
        "speed_series": [[int(step), float(speed)]
                         for step, speed in trace.speed_series()],
    }


def build_speed_spec(model_names: Optional[Sequence[str]] = None,
                     gpu_names: Sequence[str] = DEFAULT_GPUS,
                     steps: int = DEFAULT_MEASUREMENT_STEPS,
                     catalog: Optional[ModelCatalog] = None) -> SweepSpec:
    """The (model × GPU) grid behind Table I / Figs. 2-3."""
    if model_names is None:
        catalog = catalog if catalog is not None else default_catalog()
        model_names = catalog.names()
    return SweepSpec("speed",
                     axes={"model_name": list(model_names),
                           "gpu_name": list(gpu_names)},
                     fixed={"steps": int(steps)})


def run_speed_campaign(model_names: Optional[Sequence[str]] = None,
                       gpu_names: Sequence[str] = DEFAULT_GPUS,
                       steps: int = DEFAULT_MEASUREMENT_STEPS,
                       seed: int = 0,
                       catalog: Optional[ModelCatalog] = None,
                       workers: Optional[int] = None,
                       cache_dir: Optional[str] = None) -> SpeedCampaignResult:
    """Measure single-worker training speed for a grid of models and GPUs.

    Args:
        model_names: Models to measure; defaults to the full twenty-model
            catalog (use :data:`NAMED_MODELS` for the Table I subset).
        gpu_names: GPUs to measure.
        steps: Steps per measurement (4000 in the paper).
        seed: Root seed; each (model, GPU) cell derives its own streams.
        catalog: Model catalog; the default twenty-model catalog if omitted.
        workers: Worker processes for the sweep (serial if omitted).
        cache_dir: Sweep result cache directory (no caching if omitted).

    Returns:
        A :class:`SpeedCampaignResult`.
    """
    catalog = catalog if catalog is not None else default_catalog()
    spec = build_speed_spec(model_names, gpu_names, steps, catalog)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, speed_cell, context=catalog)
    result = SpeedCampaignResult()
    for payload in sweep.payloads():
        cell = SpeedCell(
            model_name=payload["model_name"], gpu_name=payload["gpu_name"],
            model_gflops=payload["model_gflops"],
            gpu_teraflops=payload["gpu_teraflops"],
            speed_mean=payload["speed_mean"], speed_std=payload["speed_std"],
            step_time=payload["step_time"])
        result.cells.append(cell)
        result.speed_series[(cell.model_name, cell.gpu_name)] = [
            (step, speed) for step, speed in payload["speed_series"]]
        result.profiler.record_speed(SpeedMeasurement(
            model_name=cell.model_name, gpu_name=cell.gpu_name,
            model_gflops=cell.model_gflops, gpu_teraflops=cell.gpu_teraflops,
            step_time=cell.step_time, cluster_size=1, num_parameter_servers=1))
    return result


def run_speed_stability_campaign(gpu_name: str = "k80",
                                 model_names: Sequence[str] = NAMED_MODELS,
                                 steps: int = DEFAULT_MEASUREMENT_STEPS,
                                 seed: int = 0,
                                 catalog: Optional[ModelCatalog] = None,
                                 workers: Optional[int] = None,
                                 cache_dir: Optional[str] = None
                                 ) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 2: per-100-step speed series for the four named models on one GPU.

    Returns:
        ``{model_name: [(step, steps/second), ...]}``.
    """
    campaign = run_speed_campaign(model_names=model_names, gpu_names=(gpu_name,),
                                  steps=steps, seed=seed, catalog=catalog,
                                  workers=workers, cache_dir=cache_dir)
    return {model: campaign.speed_series[(model, get_gpu(gpu_name).name)]
            for model in model_names}


register_sweep(SweepDefinition(
    name="speed",
    description="single-worker training speed, named models x 3 GPUs (Table I)",
    build_spec=lambda: build_speed_spec(model_names=NAMED_MODELS),
    cell_fn=speed_cell,
    build_context=default_catalog,
    summarize=lambda result: result.to_table(
        ["speed_mean", "speed_std", "step_time"],
        title="Table I: cluster speed (steps/s)")))
