"""Server startup-time campaigns (Fig. 6, Fig. 7).

Two campaigns:

* **startup breakdown** — request transient and on-demand K80/P100 servers
  in two regions and record the provisioning / staging / booting durations
  (Fig. 6);
* **replacement startup** — after a revocation, request replacement servers
  either immediately or after a delay of at least an hour, and compare the
  startup times (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.startup import StartupTimeModel
from repro.simulation.rng import RandomStreams


@dataclass(frozen=True)
class StartupBreakdownCell:
    """Mean stage durations for one (region, GPU, server class) combination.

    Attributes:
        region_name: Requested region.
        gpu_name: Requested GPU type.
        transient: Whether the servers were transient (preemptible).
        provisioning_mean: Mean provisioning time (seconds).
        staging_mean: Mean staging time (seconds).
        booting_mean: Mean booting time (seconds).
        total_mean: Mean total startup time (seconds).
        total_std: Standard deviation of the total startup time.
        samples: Number of servers requested.
    """

    region_name: str
    gpu_name: str
    transient: bool
    provisioning_mean: float
    staging_mean: float
    booting_mean: float
    total_mean: float
    total_std: float
    samples: int


@dataclass
class StartupBreakdownResult:
    """Fig. 6: startup-time breakdown per (region, GPU, class)."""

    cells: List[StartupBreakdownCell] = field(default_factory=list)

    def cell(self, region_name: str, gpu_name: str, transient: bool) -> StartupBreakdownCell:
        """Look up one combination."""
        gpu = get_gpu(gpu_name).name
        for cell in self.cells:
            if (cell.region_name == region_name and cell.gpu_name == gpu
                    and cell.transient == transient):
                return cell
        raise KeyError(f"no cell for ({region_name}, {gpu_name}, transient={transient})")

    def transient_slowdown(self, region_name: str, gpu_name: str) -> float:
        """Extra seconds a transient server takes vs. its on-demand twin."""
        return (self.cell(region_name, gpu_name, True).total_mean
                - self.cell(region_name, gpu_name, False).total_mean)


def run_startup_breakdown_campaign(region_names: Sequence[str] = ("us-east1", "us-west1"),
                                   gpu_names: Sequence[str] = ("k80", "p100"),
                                   samples_per_cell: int = 20,
                                   seed: int = 0) -> StartupBreakdownResult:
    """Reproduce Fig. 6: startup breakdown for new transient/on-demand servers."""
    streams = RandomStreams(seed=seed)
    model = StartupTimeModel(rng=streams.get("startup"))
    result = StartupBreakdownResult()
    for region_name in region_names:
        for gpu_name in gpu_names:
            for transient in (True, False):
                stages = [model.sample(gpu_name, transient, region_name)
                          for _ in range(samples_per_cell)]
                totals = np.array([s.total for s in stages])
                result.cells.append(StartupBreakdownCell(
                    region_name=region_name, gpu_name=get_gpu(gpu_name).name,
                    transient=transient,
                    provisioning_mean=float(np.mean([s.provisioning for s in stages])),
                    staging_mean=float(np.mean([s.staging for s in stages])),
                    booting_mean=float(np.mean([s.booting for s in stages])),
                    total_mean=float(totals.mean()),
                    total_std=float(totals.std(ddof=1)),
                    samples=samples_per_cell))
    return result


@dataclass(frozen=True)
class ReplacementStartupCell:
    """Startup statistics for replacement requests of one GPU type.

    Attributes:
        gpu_name: Requested GPU type.
        immediate: True when requested immediately after a revocation.
        mean_seconds: Mean startup time.
        std_seconds: Standard deviation.
        cov: Coefficient of variation.
        samples: Number of requests.
    """

    gpu_name: str
    immediate: bool
    mean_seconds: float
    std_seconds: float
    cov: float
    samples: int


@dataclass
class ReplacementStartupResult:
    """Fig. 7: replacement startup time, immediate vs. delayed requests."""

    cells: List[ReplacementStartupCell] = field(default_factory=list)

    def cell(self, gpu_name: str, immediate: bool) -> ReplacementStartupCell:
        """Look up one (GPU, timing) combination."""
        gpu = get_gpu(gpu_name).name
        for cell in self.cells:
            if cell.gpu_name == gpu and cell.immediate == immediate:
                return cell
        raise KeyError(f"no cell for ({gpu_name}, immediate={immediate})")

    def immediate_penalty(self, gpu_name: str) -> float:
        """Mean extra seconds of an immediate request vs. a delayed one."""
        return (self.cell(gpu_name, True).mean_seconds
                - self.cell(gpu_name, False).mean_seconds)

    def as_table(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """``{gpu: {"immediate"|"delayed": (mean, std)}}``."""
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for cell in self.cells:
            key = "immediate" if cell.immediate else "delayed"
            table.setdefault(cell.gpu_name, {})[key] = (cell.mean_seconds,
                                                        cell.std_seconds)
        return table


def run_replacement_startup_campaign(gpu_names: Sequence[str] = ("k80", "p100", "v100"),
                                     samples_per_cell: int = 30,
                                     seed: int = 0) -> ReplacementStartupResult:
    """Reproduce Fig. 7: replacement startup, immediate vs. delayed requests."""
    streams = RandomStreams(seed=seed)
    model = StartupTimeModel(rng=streams.get("replacement_startup"))
    result = ReplacementStartupResult()
    for gpu_name in gpu_names:
        for immediate in (True, False):
            times = np.array([model.sample_replacement(gpu_name, immediate)
                              for _ in range(samples_per_cell)])
            mean = float(times.mean())
            std = float(times.std(ddof=1))
            result.cells.append(ReplacementStartupCell(
                gpu_name=get_gpu(gpu_name).name, immediate=immediate,
                mean_seconds=mean, std_seconds=std, cov=std / mean,
                samples=samples_per_cell))
    return result
