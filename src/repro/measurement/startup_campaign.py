"""Server startup-time campaigns (Fig. 6, Fig. 7).

Two campaigns:

* **startup breakdown** — request transient and on-demand K80/P100 servers
  in two regions and record the provisioning / staging / booting durations
  (Fig. 6);
* **replacement startup** — after a revocation, request replacement servers
  either immediately or after a delay of at least an hour, and compare the
  startup times (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.startup import StartupTimeModel
from repro.simulation.rng import RandomStreams
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)


@dataclass(frozen=True)
class StartupBreakdownCell:
    """Mean stage durations for one (region, GPU, server class) combination.

    Attributes:
        region_name: Requested region.
        gpu_name: Requested GPU type.
        transient: Whether the servers were transient (preemptible).
        provisioning_mean: Mean provisioning time (seconds).
        staging_mean: Mean staging time (seconds).
        booting_mean: Mean booting time (seconds).
        total_mean: Mean total startup time (seconds).
        total_std: Standard deviation of the total startup time.
        samples: Number of servers requested.
    """

    region_name: str
    gpu_name: str
    transient: bool
    provisioning_mean: float
    staging_mean: float
    booting_mean: float
    total_mean: float
    total_std: float
    samples: int


@dataclass
class StartupBreakdownResult:
    """Fig. 6: startup-time breakdown per (region, GPU, class)."""

    cells: List[StartupBreakdownCell] = field(default_factory=list)

    def cell(self, region_name: str, gpu_name: str, transient: bool) -> StartupBreakdownCell:
        """Look up one combination."""
        gpu = get_gpu(gpu_name).name
        for cell in self.cells:
            if (cell.region_name == region_name and cell.gpu_name == gpu
                    and cell.transient == transient):
                return cell
        raise KeyError(f"no cell for ({region_name}, {gpu_name}, transient={transient})")

    def transient_slowdown(self, region_name: str, gpu_name: str) -> float:
        """Extra seconds a transient server takes vs. its on-demand twin."""
        return (self.cell(region_name, gpu_name, True).total_mean
                - self.cell(region_name, gpu_name, False).total_mean)


def startup_breakdown_cell(cell: SweepCell, streams: RandomStreams,
                           _context: Any) -> Dict[str, Any]:
    """Sweep cell: startup-stage samples for one (region, GPU, class)."""
    model = StartupTimeModel(rng=streams.get("startup"))
    stages = [model.sample(cell.params["gpu_name"], cell.params["transient"],
                           cell.params["region_name"])
              for _ in range(cell.params["samples"])]
    totals = np.array([s.total for s in stages])
    return {
        "region_name": cell.params["region_name"],
        "gpu_name": get_gpu(cell.params["gpu_name"]).name,
        "transient": cell.params["transient"],
        "provisioning_mean": float(np.mean([s.provisioning for s in stages])),
        "staging_mean": float(np.mean([s.staging for s in stages])),
        "booting_mean": float(np.mean([s.booting for s in stages])),
        "total_mean": float(totals.mean()),
        "total_std": float(totals.std(ddof=1)) if len(totals) > 1 else 0.0,
        "samples": cell.params["samples"],
    }


def build_startup_breakdown_spec(region_names: Sequence[str] = ("us-east1", "us-west1"),
                                 gpu_names: Sequence[str] = ("k80", "p100"),
                                 samples_per_cell: int = 20) -> SweepSpec:
    """The (region × GPU × server class) grid of Fig. 6."""
    return SweepSpec("startup_breakdown",
                     axes={"region_name": list(region_names),
                           "gpu_name": list(gpu_names),
                           "transient": [True, False]},
                     fixed={"samples": int(samples_per_cell)})


def run_startup_breakdown_campaign(region_names: Sequence[str] = ("us-east1", "us-west1"),
                                   gpu_names: Sequence[str] = ("k80", "p100"),
                                   samples_per_cell: int = 20,
                                   seed: int = 0,
                                   workers: Optional[int] = None,
                                   cache_dir: Optional[str] = None
                                   ) -> StartupBreakdownResult:
    """Reproduce Fig. 6: startup breakdown for new transient/on-demand servers."""
    spec = build_startup_breakdown_spec(region_names, gpu_names, samples_per_cell)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, startup_breakdown_cell)
    result = StartupBreakdownResult()
    for payload in sweep.payloads():
        result.cells.append(StartupBreakdownCell(
            region_name=payload["region_name"], gpu_name=payload["gpu_name"],
            transient=payload["transient"],
            provisioning_mean=payload["provisioning_mean"],
            staging_mean=payload["staging_mean"],
            booting_mean=payload["booting_mean"],
            total_mean=payload["total_mean"], total_std=payload["total_std"],
            samples=payload["samples"]))
    return result


@dataclass(frozen=True)
class ReplacementStartupCell:
    """Startup statistics for replacement requests of one GPU type.

    Attributes:
        gpu_name: Requested GPU type.
        immediate: True when requested immediately after a revocation.
        mean_seconds: Mean startup time.
        std_seconds: Standard deviation.
        cov: Coefficient of variation.
        samples: Number of requests.
    """

    gpu_name: str
    immediate: bool
    mean_seconds: float
    std_seconds: float
    cov: float
    samples: int


@dataclass
class ReplacementStartupResult:
    """Fig. 7: replacement startup time, immediate vs. delayed requests."""

    cells: List[ReplacementStartupCell] = field(default_factory=list)

    def cell(self, gpu_name: str, immediate: bool) -> ReplacementStartupCell:
        """Look up one (GPU, timing) combination."""
        gpu = get_gpu(gpu_name).name
        for cell in self.cells:
            if cell.gpu_name == gpu and cell.immediate == immediate:
                return cell
        raise KeyError(f"no cell for ({gpu_name}, immediate={immediate})")

    def immediate_penalty(self, gpu_name: str) -> float:
        """Mean extra seconds of an immediate request vs. a delayed one."""
        return (self.cell(gpu_name, True).mean_seconds
                - self.cell(gpu_name, False).mean_seconds)

    def as_table(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """``{gpu: {"immediate"|"delayed": (mean, std)}}``."""
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for cell in self.cells:
            key = "immediate" if cell.immediate else "delayed"
            table.setdefault(cell.gpu_name, {})[key] = (cell.mean_seconds,
                                                        cell.std_seconds)
        return table


def replacement_startup_cell(cell: SweepCell, streams: RandomStreams,
                             _context: Any) -> Dict[str, Any]:
    """Sweep cell: replacement startup samples for one (GPU, timing)."""
    model = StartupTimeModel(rng=streams.get("startup"))
    times = np.array([model.sample_replacement(cell.params["gpu_name"],
                                               cell.params["immediate"])
                      for _ in range(cell.params["samples"])])
    mean = float(times.mean())
    std = float(times.std(ddof=1)) if len(times) > 1 else 0.0
    return {"gpu_name": get_gpu(cell.params["gpu_name"]).name,
            "immediate": cell.params["immediate"],
            "mean_seconds": mean, "std_seconds": std, "cov": std / mean,
            "samples": cell.params["samples"]}


def build_replacement_startup_spec(gpu_names: Sequence[str] = ("k80", "p100", "v100"),
                                   samples_per_cell: int = 30) -> SweepSpec:
    """The (GPU × request timing) grid of Fig. 7."""
    return SweepSpec("replacement_startup",
                     axes={"gpu_name": list(gpu_names),
                           "immediate": [True, False]},
                     fixed={"samples": int(samples_per_cell)})


def run_replacement_startup_campaign(gpu_names: Sequence[str] = ("k80", "p100", "v100"),
                                     samples_per_cell: int = 30,
                                     seed: int = 0,
                                     workers: Optional[int] = None,
                                     cache_dir: Optional[str] = None
                                     ) -> ReplacementStartupResult:
    """Reproduce Fig. 7: replacement startup, immediate vs. delayed requests."""
    spec = build_replacement_startup_spec(gpu_names, samples_per_cell)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, replacement_startup_cell)
    result = ReplacementStartupResult()
    for payload in sweep.payloads():
        result.cells.append(ReplacementStartupCell(
            gpu_name=payload["gpu_name"], immediate=payload["immediate"],
            mean_seconds=payload["mean_seconds"],
            std_seconds=payload["std_seconds"], cov=payload["cov"],
            samples=payload["samples"]))
    return result


register_sweep(SweepDefinition(
    name="startup_breakdown",
    description="provisioning/staging/booting startup breakdown (Fig. 6)",
    build_spec=build_startup_breakdown_spec,
    cell_fn=startup_breakdown_cell,
    summarize=lambda result: result.to_table(
        ["provisioning_mean", "staging_mean", "booting_mean", "total_mean"],
        title="Fig. 6: startup breakdown (s)", float_format="{:.1f}")))

register_sweep(SweepDefinition(
    name="replacement_startup",
    description="replacement startup, immediate vs delayed requests (Fig. 7)",
    build_spec=build_replacement_startup_spec,
    cell_fn=replacement_startup_cell,
    summarize=lambda result: result.to_table(
        ["mean_seconds", "std_seconds", "cov"],
        title="Fig. 7: replacement startup (s)")))
