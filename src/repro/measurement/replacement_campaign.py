"""Worker-replacement and recomputation campaigns (Fig. 10, Fig. 11).

* **Replacement overhead** (Fig. 10): measure the cold-start and warm-start
  worker replacement overhead for the four named models on a single-K80
  cluster.
* **Recomputation overhead** (Fig. 11): train ResNet-15 on a two-K80
  cluster with a 4K-step checkpoint interval, manually revoke the chief 1K
  steps after the last checkpoint, add a replacement at a chosen later
  step, and compare the time to reach the next checkpoint when the
  replacement reuses the chief's old IP address (unmodified TensorFlow)
  versus when it gets a new one (CM-DARE's transient-TensorFlow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.replacement import ReplacementOverheadModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.training.faults import FaultInjector
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.workloads.catalog import ModelCatalog, NAMED_MODELS, default_catalog


# ---------------------------------------------------------------------------
# Fig. 10: cold vs. warm replacement overhead.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplacementOverheadCell:
    """Replacement overhead for one model and start type.

    Attributes:
        model_name: CNN model name.
        cold_start: True for cold starts (new server requested).
        mean_seconds: Mean total replacement overhead.
        std_seconds: Standard deviation across repetitions.
    """

    model_name: str
    cold_start: bool
    mean_seconds: float
    std_seconds: float


@dataclass
class ReplacementOverheadResult:
    """Fig. 10: replacement overheads per model."""

    cells: List[ReplacementOverheadCell] = field(default_factory=list)

    def cell(self, model_name: str, cold_start: bool) -> ReplacementOverheadCell:
        """Look up one (model, start type) combination."""
        for cell in self.cells:
            if cell.model_name == model_name and cell.cold_start == cold_start:
                return cell
        raise KeyError(f"no cell for ({model_name}, cold={cold_start})")

    def as_series(self) -> Dict[str, List[Tuple[str, float]]]:
        """``{"cold"|"warm": [(model, seconds), ...]}`` for plotting."""
        series: Dict[str, List[Tuple[str, float]]] = {"cold": [], "warm": []}
        for cell in self.cells:
            key = "cold" if cell.cold_start else "warm"
            series[key].append((cell.model_name, cell.mean_seconds))
        return series


def replacement_overhead_cell(cell: SweepCell, streams: RandomStreams,
                              catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: repeated replacement overheads for one (model, start type)."""
    catalog = catalog if catalog is not None else default_catalog()
    profile = catalog.profile(cell.params["model_name"])
    model = ReplacementOverheadModel(rng=streams.get("replacement"))
    totals = [float(model.sample(profile, cold=cell.params["cold_start"],
                                 gpu_name=cell.params["gpu_name"]).total)
              for _ in range(cell.params["repetitions"])]
    return {"totals": totals}


def build_replacement_overhead_spec(model_names: Sequence[str] = NAMED_MODELS,
                                    gpu_name: str = "k80",
                                    repetitions: int = 10) -> SweepSpec:
    """The (model × cold/warm) grid of Fig. 10."""
    return SweepSpec("replacement_overhead",
                     axes={"model_name": list(model_names),
                           "cold_start": [True, False]},
                     fixed={"gpu_name": gpu_name, "repetitions": int(repetitions)})


def run_replacement_overhead_campaign(model_names: Sequence[str] = NAMED_MODELS,
                                      gpu_name: str = "k80",
                                      repetitions: int = 10, seed: int = 0,
                                      catalog: Optional[ModelCatalog] = None,
                                      workers: Optional[int] = None,
                                      cache_dir: Optional[str] = None
                                      ) -> ReplacementOverheadResult:
    """Reproduce Fig. 10: cold and warm worker-replacement overhead."""
    catalog = catalog if catalog is not None else default_catalog()
    spec = build_replacement_overhead_spec(model_names, gpu_name, repetitions)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, replacement_overhead_cell, context=catalog)
    result = ReplacementOverheadResult()
    for cell_result in sweep:
        totals = np.array(cell_result.payload["totals"])
        result.cells.append(ReplacementOverheadCell(
            model_name=cell_result.cell.params["model_name"],
            cold_start=cell_result.cell.params["cold_start"],
            mean_seconds=float(totals.mean()),
            std_seconds=float(totals.std(ddof=1)) if len(totals) > 1 else 0.0))
    return result


# ---------------------------------------------------------------------------
# Fig. 11: recomputation overhead.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecomputationPoint:
    """One replacement-timing point of Fig. 11.

    Attributes:
        replacement_step: Cluster steps since the last checkpoint when the
            replacement worker joins.
        legacy_seconds: Time to reach the next checkpoint when the chief's
            IP address is reused (recompute from checkpoint).
        transient_tf_seconds: Time to reach the next checkpoint with a fresh
            IP (CM-DARE behaviour, no recomputation).
        overhead_seconds: The difference (the Fig. 11 y-axis).
    """

    replacement_step: int
    legacy_seconds: float
    transient_tf_seconds: float
    overhead_seconds: float


@dataclass
class RecomputationResult:
    """Fig. 11: recomputation overhead vs. replacement timing."""

    model_name: str
    checkpoint_interval_steps: int
    revocation_step: int
    points: List[RecomputationPoint] = field(default_factory=list)

    def overhead_series(self) -> List[Tuple[int, float]]:
        """``(replacement step, overhead seconds)`` pairs for plotting."""
        return [(p.replacement_step, p.overhead_seconds) for p in self.points]

    def max_overhead(self) -> float:
        """Largest observed recomputation overhead."""
        return max(p.overhead_seconds for p in self.points)


def _time_to_reach_step(model_name: str, catalog: ModelCatalog, seed: int,
                        checkpoint_interval: int, revoke_at: int,
                        replace_at: int, reuse_chief_ip: bool,
                        target_step: int) -> float:
    """Simulate one Fig. 11 scenario and return the time to the target step."""
    profile = catalog.profile(model_name)
    streams = RandomStreams(seed=seed)
    simulator = Simulator()
    cluster = ClusterSpec.from_counts(k80=2, region_name="us-east1")
    job = TrainingJob(profile=profile, total_steps=target_step,
                      checkpoint_interval_steps=checkpoint_interval)
    session = TrainingSession(simulator, cluster, job, streams=streams,
                              step_time_model=StepTimeModel(rng=streams.get("step")))
    injector = FaultInjector(session, poll_interval_seconds=1.0)
    injector.revoke_at_step("worker-0", revoke_at)
    injector.replace_at_step(WorkerSpec(gpu_name="k80"), replace_at,
                             overhead_seconds=15.0, reuse_chief_ip=reuse_chief_ip,
                             cold_start=False)
    trace = session.run_to_completion()
    assert trace.end_time is not None
    return trace.end_time - trace.start_time


def recomputation_cell(cell: SweepCell, streams: RandomStreams,
                       catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: one paired legacy/transient-TF Fig. 11 scenario.

    Both scenarios replay the same derived seed so the comparison stays
    paired, exactly as in the paper's protocol.
    """
    catalog = catalog if catalog is not None else default_catalog()
    interval = cell.params["checkpoint_interval_steps"]
    revoke_offset = cell.params["revocation_offset_steps"]
    replace_at = cell.params["replacement_step"]
    target = 2 * interval
    run_seed = streams.seed
    legacy = _time_to_reach_step(
        cell.params["model_name"], catalog, run_seed, interval,
        interval + revoke_offset, interval + replace_at, True, target)
    transient = _time_to_reach_step(
        cell.params["model_name"], catalog, run_seed, interval,
        interval + revoke_offset, interval + replace_at, False, target)
    return {"replacement_step": int(replace_at),
            "legacy_seconds": float(legacy),
            "transient_tf_seconds": float(transient),
            "overhead_seconds": float(legacy - transient)}


def build_recomputation_spec(model_name: str = "resnet_15",
                             checkpoint_interval_steps: int = 4000,
                             revocation_offset_steps: int = 1000,
                             replacement_steps: Sequence[int] = (1500, 2000, 2500,
                                                                 3000, 3500)
                             ) -> SweepSpec:
    """The replacement-timing axis of Fig. 11."""
    return SweepSpec(
        "recomputation",
        axes={"replacement_step": [int(step) for step in replacement_steps]},
        fixed={"model_name": model_name,
               "checkpoint_interval_steps": int(checkpoint_interval_steps),
               "revocation_offset_steps": int(revocation_offset_steps)})


def run_recomputation_campaign(model_name: str = "resnet_15",
                               checkpoint_interval_steps: int = 4000,
                               revocation_offset_steps: int = 1000,
                               replacement_steps: Sequence[int] = (1500, 2000, 2500,
                                                                   3000, 3500),
                               seed: int = 0,
                               catalog: Optional[ModelCatalog] = None,
                               workers: Optional[int] = None,
                               cache_dir: Optional[str] = None
                               ) -> RecomputationResult:
    """Reproduce Fig. 11: TensorFlow-specific recomputation overhead.

    Args:
        model_name: Model to train (ResNet-15 in the paper).
        checkpoint_interval_steps: Checkpoint interval (4K in the paper).
        revocation_offset_steps: Steps after the last checkpoint at which the
            chief is revoked (1K in the paper).
        replacement_steps: Steps since the last checkpoint at which the
            replacement worker joins (the Fig. 11 x-axis).
        seed: Root seed.
        catalog: Model catalog.
    """
    catalog = catalog if catalog is not None else default_catalog()
    spec = build_recomputation_spec(model_name, checkpoint_interval_steps,
                                    revocation_offset_steps, replacement_steps)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, recomputation_cell, context=catalog)
    result = RecomputationResult(model_name=model_name,
                                 checkpoint_interval_steps=checkpoint_interval_steps,
                                 revocation_step=revocation_offset_steps)
    for payload in sweep.payloads():
        result.points.append(RecomputationPoint(
            replacement_step=payload["replacement_step"],
            legacy_seconds=payload["legacy_seconds"],
            transient_tf_seconds=payload["transient_tf_seconds"],
            overhead_seconds=payload["overhead_seconds"]))
    return result


register_sweep(SweepDefinition(
    name="replacement_overhead",
    description="cold vs warm worker replacement overhead (Fig. 10)",
    build_spec=build_replacement_overhead_spec,
    cell_fn=replacement_overhead_cell,
    build_context=default_catalog))

register_sweep(SweepDefinition(
    name="recomputation",
    description="recomputation overhead vs replacement timing (Fig. 11)",
    build_spec=build_recomputation_spec,
    cell_fn=recomputation_cell,
    build_context=default_catalog,
    summarize=lambda result: result.to_table(
        ["legacy_seconds", "transient_tf_seconds", "overhead_seconds"],
        title="Fig. 11: recomputation overhead (s)")))
