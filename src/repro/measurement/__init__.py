"""Measurement campaigns.

Each module reproduces one of the paper's measurement campaigns by driving
the simulated substrate and collecting the same quantities the paper
collects.  Every campaign is deterministic given its seed, and every bench
in ``benchmarks/`` calls exactly one campaign function.

| Campaign | Paper experiments |
|---|---|
| :mod:`repro.measurement.speed_campaign` | Table I, Fig. 2, Fig. 3, Table II dataset |
| :mod:`repro.measurement.scaling_campaign` | Table III, Fig. 4, Fig. 12 |
| :mod:`repro.measurement.checkpoint_campaign` | Fig. 5, Table IV dataset |
| :mod:`repro.measurement.startup_campaign` | Fig. 6, Fig. 7 |
| :mod:`repro.measurement.revocation_campaign` | Table V, Fig. 8, Fig. 9 |
| :mod:`repro.measurement.replacement_campaign` | Fig. 10, Fig. 11 |
"""

from repro.measurement.speed_campaign import (
    SpeedCampaignResult,
    run_speed_campaign,
    run_speed_stability_campaign,
)
from repro.measurement.scaling_campaign import (
    ClusterScalingResult,
    WorkerStepTimeResult,
    run_cluster_scaling_campaign,
    run_ps_mitigation_campaign,
    run_worker_step_time_campaign,
)
from repro.measurement.checkpoint_campaign import CheckpointCampaignResult, run_checkpoint_campaign
from repro.measurement.startup_campaign import (
    StartupBreakdownResult,
    ReplacementStartupResult,
    run_startup_breakdown_campaign,
    run_replacement_startup_campaign,
)
from repro.measurement.revocation_campaign import RevocationCampaignResult, run_revocation_campaign
from repro.measurement.replacement_campaign import (
    RecomputationResult,
    ReplacementOverheadResult,
    run_recomputation_campaign,
    run_replacement_overhead_campaign,
)
from repro.measurement.datasets import (
    load_checkpoint_measurements,
    load_profiler,
    load_revocation_records,
    load_speed_measurements,
    save_checkpoint_measurements,
    save_revocation_records,
    save_speed_measurements,
)

__all__ = [
    "SpeedCampaignResult",
    "run_speed_campaign",
    "run_speed_stability_campaign",
    "ClusterScalingResult",
    "WorkerStepTimeResult",
    "run_cluster_scaling_campaign",
    "run_ps_mitigation_campaign",
    "run_worker_step_time_campaign",
    "CheckpointCampaignResult",
    "run_checkpoint_campaign",
    "StartupBreakdownResult",
    "ReplacementStartupResult",
    "run_startup_breakdown_campaign",
    "run_replacement_startup_campaign",
    "RevocationCampaignResult",
    "run_revocation_campaign",
    "RecomputationResult",
    "ReplacementOverheadResult",
    "run_recomputation_campaign",
    "run_replacement_overhead_campaign",
    "load_checkpoint_measurements",
    "load_profiler",
    "load_revocation_records",
    "load_speed_measurements",
    "save_checkpoint_measurements",
    "save_revocation_records",
    "save_speed_measurements",
]
