"""Checkpoint measurement campaign (Fig. 5, Table IV dataset).

The paper instruments the checkpoint function and measures the time to
checkpoint each of the twenty CNN models five times on a cluster consisting
of one parameter server and a single K80 chief worker, saving to storage in
the same data center.  It also cross-checks that training and checkpointing
happen sequentially by comparing the time to run 100 steps with and without
a checkpoint in the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cmdare.profiler import CheckpointMeasurement, PerformanceProfiler
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession
from repro.workloads.catalog import ModelCatalog, default_catalog


@dataclass(frozen=True)
class CheckpointSample:
    """Summary of the repeated checkpoint measurements for one model.

    Attributes:
        model_name: CNN model name.
        total_mb: Total checkpoint size (MB).
        data_mb: Data-file size (MB).
        meta_mb: Meta-file size (MB).
        index_mb: Index-file size (MB).
        mean_seconds: Mean checkpoint duration.
        cov: Coefficient of variation across repetitions.
    """

    model_name: str
    total_mb: float
    data_mb: float
    meta_mb: float
    index_mb: float
    mean_seconds: float
    cov: float


@dataclass
class CheckpointCampaignResult:
    """Fig. 5 points plus the Table IV regression dataset.

    Attributes:
        samples: Per-model summaries (the Fig. 5 scatter points).
        profiler: Profiler holding the individual repetition measurements.
        sequential_check: Optional result of the with/without-checkpoint
            cross-check: ``(with, without, difference, checkpoint time)``
            durations in seconds for a 100-step window.
    """

    samples: List[CheckpointSample] = field(default_factory=list)
    profiler: PerformanceProfiler = field(default_factory=PerformanceProfiler)
    sequential_check: Optional[Tuple[float, float, float, float]] = None

    def sample(self, model_name: str) -> CheckpointSample:
        """Look up the summary for one model."""
        for sample in self.samples:
            if sample.model_name == model_name:
                return sample
        raise KeyError(f"no checkpoint sample for {model_name!r}")

    def measurements(self) -> List[CheckpointMeasurement]:
        """All individual repetition measurements (Table IV dataset)."""
        return self.profiler.checkpoint_measurements

    def scatter(self) -> List[Tuple[float, float, float]]:
        """Fig. 5 points: ``(size MB, mean seconds, CoV)`` per model."""
        return [(s.total_mb, s.mean_seconds, s.cov) for s in self.samples]


def checkpoint_cell(cell: SweepCell, streams: RandomStreams,
                    catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: repeated checkpoint measurements for one model."""
    catalog = catalog if catalog is not None else default_catalog()
    profile = catalog.profile(cell.params["model_name"])
    checkpoint_model = CheckpointTimeModel(rng=streams.get("checkpoint"))
    durations = [float(checkpoint_model.sample_time(profile.checkpoint))
                 for _ in range(cell.params["repetitions"])]
    files = profile.checkpoint
    return {
        "model_name": cell.params["model_name"],
        "total_mb": files.total_mb, "data_mb": files.data_mb,
        "meta_mb": files.meta_mb, "index_mb": files.index_mb,
        "data_bytes": files.data_bytes, "index_bytes": files.index_bytes,
        "meta_bytes": files.meta_bytes,
        "durations": durations,
    }


def build_checkpoint_spec(model_names: Optional[Sequence[str]] = None,
                          repetitions: int = 5,
                          catalog: Optional[ModelCatalog] = None) -> SweepSpec:
    """The per-model checkpoint measurement grid of Fig. 5 / Table IV."""
    if model_names is None:
        catalog = catalog if catalog is not None else default_catalog()
        model_names = catalog.names()
    return SweepSpec("checkpoint", axes={"model_name": list(model_names)},
                     fixed={"repetitions": int(repetitions)})


def run_checkpoint_campaign(model_names: Optional[Sequence[str]] = None,
                            repetitions: int = 5, seed: int = 0,
                            catalog: Optional[ModelCatalog] = None,
                            with_sequential_check: bool = True,
                            sequential_check_model: str = "resnet_32",
                            workers: Optional[int] = None,
                            cache_dir: Optional[str] = None
                            ) -> CheckpointCampaignResult:
    """Measure checkpoint durations for every model in the catalog.

    Args:
        model_names: Models to measure; the full catalog by default.
        repetitions: Checkpoints measured per model (5 in the paper).
        seed: Root seed.
        catalog: Model catalog.
        with_sequential_check: Also run the 100-steps-with/without-checkpoint
            cross-check the paper uses to show checkpointing is sequential.
        sequential_check_model: Model used for the cross-check.
        workers: Worker processes for the sweep (serial if omitted).
        cache_dir: Sweep result cache directory (no caching if omitted).
    """
    catalog = catalog if catalog is not None else default_catalog()
    spec = build_checkpoint_spec(model_names, repetitions, catalog)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, checkpoint_cell, context=catalog)
    result = CheckpointCampaignResult()

    for payload in sweep.payloads():
        values = np.asarray(payload["durations"])
        cov = float(values.std(ddof=1) / values.mean()) if len(values) > 1 else 0.0
        result.samples.append(CheckpointSample(
            model_name=payload["model_name"], total_mb=payload["total_mb"],
            data_mb=payload["data_mb"], meta_mb=payload["meta_mb"],
            index_mb=payload["index_mb"],
            mean_seconds=float(values.mean()), cov=cov))
        for duration in payload["durations"]:
            result.profiler.record_checkpoint(CheckpointMeasurement(
                model_name=payload["model_name"],
                data_bytes=payload["data_bytes"],
                index_bytes=payload["index_bytes"],
                meta_bytes=payload["meta_bytes"],
                duration=float(duration)))

    if with_sequential_check:
        result.sequential_check = _sequential_check(sequential_check_model, catalog, seed)
    return result


def _sequential_check(model_name: str, catalog: ModelCatalog, seed: int
                      ) -> Tuple[float, float, float, float]:
    """Compare 100-step durations with and without a checkpoint in the window.

    Returns:
        ``(with_checkpoint, without_checkpoint, difference, checkpoint_time)``
        in seconds, mirroring the ResNet-32 example of Section IV-B.
    """
    profile = catalog.profile(model_name)

    def run(with_checkpoint: bool) -> Tuple[float, float]:
        streams = RandomStreams(seed=seed + (1 if with_checkpoint else 0))
        simulator = Simulator()
        job = measurement_job(profile, steps=200,
                              checkpointing=with_checkpoint,
                              checkpoint_interval_steps=100 if with_checkpoint else 1000)
        session = TrainingSession(simulator, ClusterSpec.single("k80"), job,
                                  streams=streams,
                                  step_time_model=StepTimeModel(rng=streams.get("step")),
                                  checkpoint_time_model=CheckpointTimeModel(
                                      rng=streams.get("ckpt")))
        trace = session.run_to_completion()
        # Duration of the second 100-step window (steps 100-200), which
        # contains the checkpoint when enabled and excludes warm-up effects.
        # The window is measured from the moment the cluster reached step 100
        # to the moment it reached step 200, so the sequential checkpoint gap
        # is included.
        records = trace.step_records
        reached_100 = float(
            records.end_times[records.cluster_step_counts <= 100].max())
        reached_200 = float(records.end_times.max())
        checkpoint_time = trace.total_checkpoint_time()
        return reached_200 - reached_100, checkpoint_time

    with_duration, checkpoint_time = run(with_checkpoint=True)
    without_duration, _ = run(with_checkpoint=False)
    return (with_duration, without_duration, with_duration - without_duration,
            checkpoint_time)


register_sweep(SweepDefinition(
    name="checkpoint",
    description="checkpoint duration vs size, all twenty models (Fig. 5)",
    build_spec=build_checkpoint_spec,
    cell_fn=checkpoint_cell,
    build_context=default_catalog,
    summarize=lambda result: result.to_table(
        ["total_mb"], title="Fig. 5: checkpoint sizes (per-repetition "
                            "durations in payloads)")))
