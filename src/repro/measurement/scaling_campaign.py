"""Cluster-scaling campaigns (Table III, Fig. 4, Fig. 12).

Three related campaigns:

* **worker step time** — the impact of cluster size and heterogeneity on an
  *individual* worker's step time (Table III): baseline single-worker
  clusters, homogeneous clusters of 2/4/8 workers, and the heterogeneous
  ``(2, 1, 1)`` cluster, all training ResNet-32;
* **cluster scaling** — cluster training speed versus the number of P100
  workers for the four named models (Fig. 4);
* **PS mitigation** — the same sweep with one versus two parameter servers
  for the ResNet models (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.perf.ps_capacity import PSCapacityModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import (
    SweepCell,
    SweepDefinition,
    SweepRunner,
    SweepSpec,
    register_sweep,
)
from repro.training.cluster import ClusterSpec
from repro.training.job import measurement_job
from repro.training.session import TrainingSession
from repro.workloads.catalog import ModelCatalog, default_catalog

#: Cluster compositions of Table III, expressed as (K80, P100, V100) counts
#: per measured GPU type.  The paper's homogeneous columns scale the *same*
#: GPU type as the measured worker.
TABLE3_HOMOGENEOUS_SIZES: Tuple[int, ...] = (1, 2, 4, 8)
TABLE3_HETEROGENEOUS: Tuple[int, int, int] = (2, 1, 1)


def _run_cluster(cluster: ClusterSpec, model_name: str, catalog: ModelCatalog,
                 steps: int, streams: RandomStreams):
    """Run one measurement session on a cluster and return its trace/session."""
    profile = catalog.profile(model_name)
    simulator = Simulator()
    session = TrainingSession(simulator, cluster, measurement_job(profile, steps=steps),
                              streams=streams,
                              step_time_model=StepTimeModel(rng=streams.get("step_time")),
                              ps_capacity_model=PSCapacityModel())
    trace = session.run_to_completion()
    return trace, session


# ---------------------------------------------------------------------------
# Table III.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerStepTimeCell:
    """One cell of Table III: an individual worker's step time.

    Attributes:
        gpu_name: GPU of the measured worker.
        cluster_label: Cluster description, e.g. ``"(8, 0, 0)"``.
        step_time_ms: Mean step time of one worker of that GPU type, in ms.
        step_time_std_ms: Standard deviation across measurement chunks.
    """

    gpu_name: str
    cluster_label: str
    step_time_ms: float
    step_time_std_ms: float


@dataclass
class WorkerStepTimeResult:
    """Table III: per-worker step time across cluster configurations."""

    model_name: str
    cells: List[WorkerStepTimeCell] = field(default_factory=list)

    def cell(self, gpu_name: str, cluster_label: str) -> WorkerStepTimeCell:
        """Look up one cell by GPU and cluster label."""
        gpu = get_gpu(gpu_name).name
        for cell in self.cells:
            if cell.gpu_name == gpu and cell.cluster_label == cluster_label:
                return cell
        raise KeyError(f"no cell for ({gpu_name}, {cluster_label})")

    def as_table(self) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """``{gpu: {cluster label: (mean ms, std ms)}}``."""
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for cell in self.cells:
            table.setdefault(cell.gpu_name, {})[cell.cluster_label] = (
                cell.step_time_ms, cell.step_time_std_ms)
        return table


def _worker_step_time_for(trace, session, gpu_name: str) -> Tuple[float, float]:
    """Average step time (seconds) of the workers with the given GPU type."""
    gpu = get_gpu(gpu_name).name
    per_worker: List[Tuple[float, float]] = []
    for worker_id, worker in session.workers.items():
        if worker.gpu_name != gpu:
            continue
        try:
            per_worker.append(trace.worker_mean_step_time(worker_id))
        except Exception:  # pragma: no cover - workers with no post-warmup data
            continue
    means = np.array([m for m, _ in per_worker])
    stds = np.array([s for _, s in per_worker])
    return float(means.mean()), float(stds.mean())


def worker_step_time_cell(cell: SweepCell, streams: RandomStreams,
                          catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: one homogeneous cluster of ``size`` × ``gpu_name``."""
    catalog = catalog if catalog is not None else default_catalog()
    gpu = get_gpu(cell.params["gpu_name"])
    size = int(cell.params["size"])
    region = "us-central1" if gpu.name == "v100" else "us-east1"
    counts = {name: 0 for name in ("k80", "p100", "v100")}
    counts[gpu.name] = size
    cluster = ClusterSpec.from_counts(region_name=region, **counts)
    trace, session = _run_cluster(cluster, cell.params["model_name"], catalog,
                                  cell.params["steps"], streams)
    mean, std = _worker_step_time_for(trace, session, gpu.name)
    label = ("baseline" if size == 1
             else f"({counts['k80']}, {counts['p100']}, {counts['v100']})")
    return {"gpu_name": gpu.name, "cluster_label": label,
            "step_time_ms": mean * 1000.0, "step_time_std_ms": std * 1000.0}


def heterogeneous_step_time_cell(cell: SweepCell, streams: RandomStreams,
                                 catalog: Optional[ModelCatalog]
                                 ) -> List[Dict[str, Any]]:
    """Sweep cell: measure every GPU type inside one mixed-cluster session."""
    catalog = catalog if catalog is not None else default_catalog()
    k80, p100, v100 = cell.params["composition"]
    cluster = ClusterSpec.from_counts(k80=k80, p100=p100, v100=v100,
                                      region_name="us-central1")
    trace, session = _run_cluster(cluster, cell.params["model_name"], catalog,
                                  cell.params["steps"], streams)
    label = f"({k80}, {p100}, {v100})"
    payload = []
    for gpu_name in cell.params["gpu_names"]:
        mean, std = _worker_step_time_for(trace, session, gpu_name)
        payload.append({"gpu_name": get_gpu(gpu_name).name, "cluster_label": label,
                        "step_time_ms": mean * 1000.0,
                        "step_time_std_ms": std * 1000.0})
    return payload


def build_worker_step_time_spec(model_name: str = "resnet_32",
                                gpu_names: Sequence[str] = ("k80", "p100", "v100"),
                                homogeneous_sizes: Sequence[int] = TABLE3_HOMOGENEOUS_SIZES,
                                steps: int = 2000) -> SweepSpec:
    """The homogeneous (GPU × cluster size) grid of Table III."""
    return SweepSpec("worker_step_time",
                     axes={"gpu_name": list(gpu_names),
                           "size": [int(size) for size in homogeneous_sizes]},
                     fixed={"model_name": model_name, "steps": int(steps)})


def run_worker_step_time_campaign(model_name: str = "resnet_32",
                                  gpu_names: Sequence[str] = ("k80", "p100", "v100"),
                                  homogeneous_sizes: Sequence[int] = TABLE3_HOMOGENEOUS_SIZES,
                                  heterogeneous: Tuple[int, int, int] = TABLE3_HETEROGENEOUS,
                                  steps: int = 2000, seed: int = 0,
                                  catalog: Optional[ModelCatalog] = None,
                                  workers: Optional[int] = None,
                                  cache_dir: Optional[str] = None
                                  ) -> WorkerStepTimeResult:
    """Reproduce Table III: individual worker step time vs. cluster shape.

    Args:
        model_name: Model to train (ResNet-32 in the paper).
        gpu_names: GPU types measured (one table row each).
        homogeneous_sizes: Homogeneous cluster sizes (1 is the baseline).
        heterogeneous: The mixed cluster composition (K80, P100, V100).
        steps: Measurement duration in steps.
        seed: Root seed.
        catalog: Model catalog.
        workers: Worker processes for the sweep (serial if omitted).
        cache_dir: Sweep result cache directory (no caching if omitted).
    """
    catalog = catalog if catalog is not None else default_catalog()
    runner = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed)
    result = WorkerStepTimeResult(model_name=model_name)

    homogeneous = runner.run(
        build_worker_step_time_spec(model_name, gpu_names, homogeneous_sizes,
                                    steps),
        worker_step_time_cell, context=catalog)
    for payload in homogeneous.payloads():
        result.cells.append(WorkerStepTimeCell(
            gpu_name=payload["gpu_name"], cluster_label=payload["cluster_label"],
            step_time_ms=payload["step_time_ms"],
            step_time_std_ms=payload["step_time_std_ms"]))

    # Heterogeneous cluster: one single-cell sweep measuring every GPU type.
    hetero_spec = SweepSpec("worker_step_time_hetero",
                            axes={"composition": [list(heterogeneous)]},
                            fixed={"model_name": model_name, "steps": int(steps),
                                   "gpu_names": list(gpu_names)})
    hetero = runner.run(hetero_spec, heterogeneous_step_time_cell, context=catalog)
    for payload in hetero.payloads()[0]:
        result.cells.append(WorkerStepTimeCell(
            gpu_name=payload["gpu_name"], cluster_label=payload["cluster_label"],
            step_time_ms=payload["step_time_ms"],
            step_time_std_ms=payload["step_time_std_ms"]))
    return result


# ---------------------------------------------------------------------------
# Fig. 4 and Fig. 12.
# ---------------------------------------------------------------------------
@dataclass
class ClusterScalingResult:
    """Cluster speed versus worker count (Fig. 4 / Fig. 12 series).

    Attributes:
        gpu_name: GPU type being scaled.
        num_parameter_servers: Parameter servers in every measured cluster.
        series: ``{model_name: [(num_workers, steps/second), ...]}``.
    """

    gpu_name: str
    num_parameter_servers: int
    series: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)

    def speeds_for(self, model_name: str) -> List[Tuple[int, float]]:
        """The scaling series of one model."""
        return self.series[model_name]

    def plateau_ratio(self, model_name: str) -> float:
        """Speed at the largest cluster divided by the single-worker speed."""
        series = self.series[model_name]
        return series[-1][1] / series[0][1]


def cluster_scaling_cell(cell: SweepCell, streams: RandomStreams,
                         catalog: Optional[ModelCatalog]) -> Dict[str, Any]:
    """Sweep cell: cluster speed of one (model, worker count) combination."""
    catalog = catalog if catalog is not None else default_catalog()
    gpu = get_gpu(cell.params["gpu_name"])
    counts = {name: 0 for name in ("k80", "p100", "v100")}
    counts[gpu.name] = int(cell.params["count"])
    cluster = ClusterSpec.from_counts(
        region_name="us-central1" if gpu.name == "v100" else "us-east1",
        num_parameter_servers=cell.params["num_parameter_servers"], **counts)
    trace, _session = _run_cluster(cluster, cell.params["model_name"], catalog,
                                   cell.params["steps"], streams)
    return {"count": int(cell.params["count"]),
            "speed": float(trace.cluster_speed())}


def build_cluster_scaling_spec(model_names: Sequence[str] = ("resnet_15", "resnet_32",
                                                             "shake_shake_small",
                                                             "shake_shake_big"),
                               gpu_name: str = "p100",
                               worker_counts: Sequence[int] = tuple(range(1, 9)),
                               num_parameter_servers: int = 1,
                               steps: int = 2000) -> SweepSpec:
    """The (model × worker count) grid of Fig. 4 / Fig. 12."""
    return SweepSpec("cluster_scaling",
                     axes={"model_name": list(model_names),
                           "count": [int(count) for count in worker_counts]},
                     fixed={"gpu_name": gpu_name,
                            "num_parameter_servers": int(num_parameter_servers),
                            "steps": int(steps)})


def run_cluster_scaling_campaign(model_names: Sequence[str] = ("resnet_15", "resnet_32",
                                                               "shake_shake_small",
                                                               "shake_shake_big"),
                                 gpu_name: str = "p100",
                                 worker_counts: Sequence[int] = tuple(range(1, 9)),
                                 num_parameter_servers: int = 1,
                                 steps: int = 2000, seed: int = 0,
                                 catalog: Optional[ModelCatalog] = None,
                                 workers: Optional[int] = None,
                                 cache_dir: Optional[str] = None
                                 ) -> ClusterScalingResult:
    """Reproduce Fig. 4: cluster speed vs. the number of (P100) workers."""
    catalog = catalog if catalog is not None else default_catalog()
    gpu = get_gpu(gpu_name)
    spec = build_cluster_scaling_spec(model_names, gpu_name, worker_counts,
                                      num_parameter_servers, steps)
    sweep = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed).run(
        spec, cluster_scaling_cell, context=catalog)
    result = ClusterScalingResult(gpu_name=gpu.name,
                                  num_parameter_servers=num_parameter_servers)
    for model_name, cell_results in sweep.group_by("model_name").items():
        result.series[model_name] = [
            (r.payload["count"], r.payload["speed"]) for r in cell_results]
    return result


def run_ps_mitigation_campaign(model_names: Sequence[str] = ("resnet_15", "resnet_32"),
                               gpu_name: str = "p100",
                               worker_counts: Sequence[int] = tuple(range(1, 9)),
                               steps: int = 2000, seed: int = 0,
                               catalog: Optional[ModelCatalog] = None,
                               workers: Optional[int] = None,
                               cache_dir: Optional[str] = None
                               ) -> Dict[int, ClusterScalingResult]:
    """Reproduce Fig. 12: the Fig. 4 sweep with one and two parameter servers.

    Returns:
        ``{num_parameter_servers: ClusterScalingResult}`` for 1 and 2 PS.
    """
    return {
        num_ps: run_cluster_scaling_campaign(
            model_names=model_names, gpu_name=gpu_name, worker_counts=worker_counts,
            num_parameter_servers=num_ps, steps=steps, seed=seed + num_ps,
            catalog=catalog, workers=workers, cache_dir=cache_dir)
        for num_ps in (1, 2)
    }


register_sweep(SweepDefinition(
    name="cluster_scaling",
    description="cluster speed vs #P100 workers, four named models (Fig. 4)",
    build_spec=build_cluster_scaling_spec,
    cell_fn=cluster_scaling_cell,
    build_context=default_catalog,
    summarize=lambda result: result.to_table(
        ["speed"], title="Fig. 4: cluster speed (steps/s)")))

register_sweep(SweepDefinition(
    name="worker_step_time",
    description="per-worker step time vs homogeneous cluster size "
                "(Table III, homogeneous rows)",
    build_spec=build_worker_step_time_spec,
    cell_fn=worker_step_time_cell,
    build_context=default_catalog,
    summarize=lambda result: result.to_table(
        ["step_time_ms", "step_time_std_ms"],
        title="Table III (homogeneous clusters only; "
              "run_worker_step_time_campaign adds the heterogeneous rows): "
              "worker step time (ms)")))
