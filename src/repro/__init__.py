"""CM-DARE reproduction library.

A from-scratch Python reproduction of *Characterizing and Modeling
Distributed Training with Transient Cloud GPU Servers* (Li, Walls, Guo;
ICDCS 2020), built on a simulated transient-GPU cloud substrate.

Top-level convenience imports cover the most common entry points; see the
subpackages for the full API:

* :mod:`repro.cloud` — simulated cloud provider (GPUs, regions, pricing,
  startup, revocations, storage),
* :mod:`repro.workloads` — CNN model graphs, profiles, and checkpoints,
* :mod:`repro.perf` — calibrated hardware performance ground truth,
* :mod:`repro.training` — asynchronous parameter-server training simulator,
* :mod:`repro.cmdare` — the CM-DARE measurement/training framework,
* :mod:`repro.modeling` — regression-based performance models,
* :mod:`repro.measurement` — measurement campaigns behind every table and
  figure,
* :mod:`repro.analysis` — statistics, tables, and figure series.
"""

from repro._version import __version__

__all__ = ["__version__"]
