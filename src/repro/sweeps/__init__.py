"""Parallel sweep orchestration for measurement campaigns and benchmarks.

The paper's results are grids of experiments — models × GPU types ×
cluster sizes × revocation regimes.  This package turns such grids into
declarative, cacheable, parallel sweeps shared by every measurement
campaign in :mod:`repro.measurement` and by the ``benchmarks/bench_*``
harness.

Building blocks
===============

:class:`~repro.sweeps.spec.SweepSpec`
    A named parameter grid: ordered axes (name → values) plus fixed
    parameters.  Expands row-major into :class:`~repro.sweeps.spec.SweepCell`
    objects with stable indices and canonical JSON keys.

:class:`~repro.sweeps.runner.SweepRunner`
    Executes a spec serially or over a ``concurrent.futures`` process
    pool.  Per-cell random streams are derived (via
    :class:`repro.simulation.rng.RandomStreams`) from the root seed, the
    sweep name, and the cell parameters only, so **parallel runs are
    bit-identical to serial runs**.  With a ``cache_dir``, each completed
    cell is persisted as one JSON file; re-running skips completed cells,
    which is also how interrupted sweeps resume.

:class:`~repro.sweeps.result.SweepResult`
    Cell results in canonical order, with helpers that feed
    :mod:`repro.analysis` tables and figure series directly.

:mod:`~repro.sweeps.registry`
    Named sweeps registered by the campaign modules, runnable from the
    command line.

Command line
============

::

    python -m repro.sweeps list
    python -m repro.sweeps run speed --workers 4 --cache-dir .sweep-cache
    python -m repro.sweeps resume speed --cache-dir .sweep-cache

Example
=======

A model × GPU sweep end to end (see ``examples/sweep_campaign.py`` for a
longer version)::

    from repro.sweeps import SweepSpec, SweepRunner
    from repro.measurement.speed_campaign import speed_cell

    spec = SweepSpec("speed", axes={"model_name": ["resnet_15", "resnet_32"],
                                    "gpu_name": ["k80", "p100", "v100"]},
                     fixed={"steps": 2000})
    result = SweepRunner(workers=4, cache_dir=".sweep-cache").run(spec, speed_cell)
    print(result.to_table(["speed_mean", "speed_std"]))

Writing a cell function
=======================

A cell function is a module-level callable
``fn(cell, streams, context) -> payload`` that returns a JSON-encodable
payload.  Draw all randomness from ``streams`` (a
:class:`~repro.simulation.rng.RandomStreams`) so the cell stays
deterministic and order-independent; put shared deterministic objects
(e.g. the model catalog) in ``context``.
"""

from repro.sweeps.cache import SweepCache
from repro.sweeps.registry import (
    SweepDefinition,
    get_sweep,
    list_sweeps,
    register_sweep,
)
from repro.sweeps.result import CellResult, SweepResult, series_from
from repro.sweeps.runner import SweepExecutionError, SweepRunner
from repro.sweeps.spec import SweepCell, SweepSpec

__all__ = [
    "CellResult",
    "SweepCache",
    "SweepCell",
    "SweepDefinition",
    "SweepExecutionError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "get_sweep",
    "list_sweeps",
    "register_sweep",
    "series_from",
]
