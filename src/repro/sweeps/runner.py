"""Parallel, cached execution of sweep specs.

The :class:`SweepRunner` expands a :class:`~repro.sweeps.spec.SweepSpec`,
serves completed cells from the on-disk cache, and fans the remaining
cells out over a :class:`concurrent.futures.ProcessPoolExecutor` (or runs
them in-process when ``workers`` is 1/None).

Determinism contract: a cell's random streams are derived from
``(root seed, sweep name, cell parameters)`` only — never from execution
order or worker identity — and results are re-assembled in canonical cell
order, so a parallel run aggregates bit-identical values to a serial run
of the same spec and seed.

Transient-failure contract: a worker process that *dies* (surfacing as
:class:`concurrent.futures.process.BrokenProcessPool`) is not a cell
failure — the pool is recreated and the not-yet-completed cells are
resubmitted, up to ``max_retries`` times (``REPRO_SWEEP_RETRIES``,
default 2), before a :class:`SweepExecutionError` surfaces.  Because
cells are deterministic in ``(root seed, sweep name, cell parameters)``,
a resubmitted cell produces the identical payload, so retries preserve
the resume/cache contract exactly.  A cell function that *raises* is
deterministic and still fails fast — replaying a deterministic failure
would just repeat it.

Cell functions must be importable module-level callables (the process
pool pickles them by reference) with the signature::

    def cell_fn(cell: SweepCell, streams: RandomStreams, context: Any) -> payload

and must return a JSON-encodable payload (scalars, lists, dicts).  The
optional ``context`` carries shared deterministic configuration such as a
model catalog.  Because the context affects results, a stable fingerprint
of it is folded into every cell's cache key — taken from
``context.fingerprint()`` when available, or passed explicitly as
``context_key``; contexts with neither must use distinct cache
directories.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import inspect
import os
import time
from pathlib import Path
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import chaos
from repro.errors import ConfigurationError, ReproError
from repro.simulation.rng import RandomStreams
from repro.sweeps.cache import MISS, SweepCache, canonicalize
from repro.sweeps.result import CellResult, SweepResult
from repro.sweeps.spec import SweepCell, SweepSpec

#: A cell function: ``(cell, streams, context) -> JSON-encodable payload``.
CellFunction = Callable[[SweepCell, RandomStreams, Any], Any]

#: Environment override for the pooled-execution retry budget.
SWEEP_RETRIES_ENV = "REPRO_SWEEP_RETRIES"

#: Default extra attempts after a worker-process death breaks the pool.
DEFAULT_MAX_RETRIES = 2


def _max_retries_default() -> int:
    raw = os.environ.get(SWEEP_RETRIES_ENV, "")
    if not raw:
        return DEFAULT_MAX_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SWEEP_RETRIES_ENV} expects a non-negative integer, "
            f"got {raw!r}")
    if value < 0:
        raise ConfigurationError(
            f"{SWEEP_RETRIES_ENV} must be >= 0, got {value}")
    return value


class SweepExecutionError(ReproError):
    """Raised when a sweep cell fails; names the offending cell."""

    def __init__(self, cell: SweepCell, cause: BaseException):
        self.cell = cell
        self.cause = cause
        super().__init__(
            f"sweep {cell.spec_name!r} cell #{cell.index} ({cell.label()}) "
            f"failed: {cause!r}")


def _execute_cell(cell_fn: CellFunction, cell: SweepCell, root_seed: int,
                  context: Any) -> Tuple[int, Any, float]:
    """Run one cell (possibly in a worker process) and time it.

    The cell function receives a deep copy of the cell, so an in-place
    mutation of ``cell.params`` can never corrupt the streams derivation
    or the cache key the caller computes from the original cell.
    """
    started = time.perf_counter()
    streams = cell.streams(root_seed)
    payload = cell_fn(copy.deepcopy(cell), streams, context)
    return cell.index, canonicalize(payload), time.perf_counter() - started


#: Per-worker shared context, installed once by the pool initializer so the
#: (potentially large) context object is not re-pickled for every cell.
_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _execute_cell_pooled(cell_fn: CellFunction, cell: SweepCell,
                         root_seed: int) -> Tuple[int, Any, float]:
    plan = chaos.active_plan()
    if plan is not None:
        # ``sweep_kill`` matches by cell index and the pool generation
        # (exported as REPRO_CHAOS_INCARNATION before each pool spawn),
        # so a retried cell does not re-trigger the fault that killed
        # its first attempt.
        faults = plan.select("sweep_kill", cell=cell.index,
                             incarnation=chaos.worker_incarnation())
        if faults:
            chaos.chaos_exit(faults[0], site="sweep_cell", cell=cell.index,
                             incarnation=chaos.worker_incarnation())
    return _execute_cell(cell_fn, cell, root_seed, _WORKER_CONTEXT)


def default_worker_count() -> int:
    """A sensible process count for ``workers="auto"``."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def parse_workers(text: str):
    """Parse a worker-count string: a non-negative integer or ``"auto"``.

    Shared by the CLI and the benchmark harness so both front ends accept
    and reject exactly the same values.  Raises :class:`ValueError` for
    anything else, including negative counts.
    """
    raw = str(text).strip().lower()
    if raw == "auto":
        return "auto"
    value = int(raw or "0")
    if value < 0:
        raise ValueError(f"workers must be non-negative, got {value}")
    return value


@functools.lru_cache(maxsize=1)
def _library_source_digest() -> str:
    """A digest of every ``repro`` source file, computed once per process.

    Folded into cache keys so that editing *any* library code — the cell
    function's callees included, e.g. a calibration constant — invalidates
    persistent caches.  Falls back to the package version when sources are
    unreadable (e.g. zipped installs).
    """
    import repro

    try:
        package_root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(path.read_bytes())
        return digest.hexdigest()[:16]
    except OSError:  # pragma: no cover - exotic install layouts
        return f"v{repro.__version__}"


def _runtime_knobs_key() -> str:
    """A fingerprint of process-wide runtime toggles that cells inherit.

    Cell functions run library code whose behavior can be switched by
    environment knobs — the simulation core's fast-forward toggle
    (``REPRO_CORE_FASTFORWARD`` / ``fast_forward``), the fleet scheduler
    (``REPRO_FLEET_SCHEDULER``), the fleet trace level
    (``REPRO_FLEET_TRACE_LEVEL``), the fleet shard count
    (``REPRO_FLEET_SHARDS``), and the placement score backend
    (``REPRO_PLACEMENT_SCORES``).  The *effective* normalized settings are
    fingerprinted (so ``"0"``, ``"false"``, and ``"off"`` key identically,
    as do defaults and unset), and folded into every cache key: a warm
    cache can never silently mix payloads computed under different paths,
    even ones whose equivalence is only contractual.  Worker processes
    inherit the parent's environment, so the parent-side value covers
    pooled execution too.
    """
    from repro.modeling.launch_advisor import placement_scores_backend
    from repro.scenarios.fleet import (
        _scheduler_default,
        _shards_default,
        _trace_level_default,
    )
    from repro.training.session import _fast_forward_default

    knobs = {
        "core_fastforward": "1" if _fast_forward_default() else "0",
        "fleet_scheduler": _scheduler_default(),
        "fleet_shards": str(_shards_default()),
        "fleet_trace_level": _trace_level_default(),
        "placement_scores": placement_scores_backend(),
    }
    return ",".join(f"{key}={value}" for key, value in sorted(knobs.items()))


def _code_key(cell_fn: CellFunction) -> str:
    """A fingerprint of the cell function's identity and source.

    Folded into cache keys so editing a cell function (or two functions
    sharing one spec name) never serves stale cached results.  Source may
    be unavailable (e.g. interactively defined callables); identity alone
    still separates functions.
    """
    identity = f"{getattr(cell_fn, '__module__', '?')}." \
               f"{getattr(cell_fn, '__qualname__', repr(cell_fn))}"
    try:
        source = inspect.getsource(cell_fn)
    except (OSError, TypeError):
        source = ""
    digest = hashlib.sha256(f"{identity}\n{source}".encode("utf-8"))
    return f"{identity}:{digest.hexdigest()[:12]}"


class SweepRunner:
    """Execute sweep specs with optional parallelism and result caching.

    Args:
        workers: Worker processes.  ``None``, 0, or 1 run cells serially
            in-process; ``"auto"`` picks from the CPU count.
        cache_dir: Directory for the JSON result cache; caching is
            disabled when omitted.
        seed: Default root seed for runs that don't pass one.
        max_retries: Extra pooled attempts after a worker-process death
            (``BrokenProcessPool``) before the run fails; defaults to
            ``REPRO_SWEEP_RETRIES`` or 2.  Each retry recreates the pool
            and resubmits only the cells without results yet.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache_dir: Optional[os.PathLike] = None, seed: int = 0,
                 max_retries: Optional[int] = None):
        if workers == "auto":
            workers = default_worker_count()
        if workers is not None and int(workers) < 0:
            raise ConfigurationError("workers must be non-negative")
        self.workers = max(1, int(workers)) if workers else 1
        self.cache = SweepCache(cache_dir) if cache_dir is not None else None
        self.seed = int(seed)
        if max_retries is None:
            max_retries = _max_retries_default()
        if int(max_retries) < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = int(max_retries)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec, cell_fn: CellFunction,
            seed: Optional[int] = None, context: Any = None,
            context_key: Optional[str] = None) -> SweepResult:
        """Run every cell of ``spec`` and return the assembled result.

        Cached cells are skipped; the rest run serially or on the process
        pool.  Cell failures abort the run with
        :class:`SweepExecutionError`, but results computed before the
        failure remain in the cache, so a fixed re-run resumes where the
        failed one stopped.

        ``context_key`` is a stable fingerprint of ``context`` folded into
        every cell's cache key, so results computed against different
        contexts (say, two model catalogs) never collide.  When omitted,
        it is taken from ``context.fingerprint()`` if the context provides
        one.
        """
        root_seed = self.seed if seed is None else int(seed)
        if context_key is None and hasattr(context, "fingerprint"):
            context_key = context.fingerprint()
        # Cache entries are additionally keyed by the cell function's
        # identity + source digest, by a digest of the whole library
        # source, and by the effective runtime toggles (e.g. the core
        # fast-forward path), so edits to cell code or its callees and
        # behavior-changing env knobs all invalidate.
        if self.cache:
            context_key = (f"{_library_source_digest()}|{_code_key(cell_fn)}"
                           f"|{_runtime_knobs_key()}|{context_key or ''}")
        started = time.perf_counter()
        cells = spec.cells()

        outcomes: Dict[int, CellResult] = {}
        pending = []
        for cell in cells:
            cached = (self.cache.get(cell, root_seed, context_key)
                      if self.cache else MISS)
            if cached is not MISS:
                outcomes[cell.index] = CellResult(
                    cell=cell, payload=cached, seed=cell.seed(root_seed),
                    cached=True, duration_seconds=0.0)
            else:
                pending.append(cell)

        if pending:
            if self.workers > 1 and len(pending) > 1:
                self._run_parallel(pending, cell_fn, root_seed, context,
                                   context_key, outcomes)
            else:
                self._run_serial(pending, cell_fn, root_seed, context,
                                 context_key, outcomes)

        results = [outcomes[index] for index in range(len(cells))]
        return SweepResult(spec=spec, results=results, workers=self.workers,
                           wall_seconds=time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _record(self, cell: SweepCell, payload: Any, root_seed: int,
                context_key: Optional[str], duration: float,
                outcomes: Dict[int, CellResult]) -> None:
        if self.cache:
            self.cache.put(cell, root_seed, payload, context_key)
        outcomes[cell.index] = CellResult(
            cell=cell, payload=payload, seed=cell.seed(root_seed),
            cached=False, duration_seconds=duration)

    def _run_serial(self, cells, cell_fn, root_seed, context, context_key,
                    outcomes) -> None:
        for cell in cells:
            try:
                _index, payload, duration = _execute_cell(
                    cell_fn, cell, root_seed, context)
            except Exception as exc:
                # Same failure contract as the pooled path: every cell
                # failure surfaces as a SweepExecutionError naming the cell.
                raise SweepExecutionError(cell, exc) from exc
            self._record(cell, payload, root_seed, context_key, duration,
                         outcomes)

    def _run_parallel(self, cells, cell_fn, root_seed, context, context_key,
                      outcomes) -> None:
        """Pooled execution with bounded retry of worker-process deaths.

        Each attempt submits only the cells still missing from
        ``outcomes``; a :class:`BrokenExecutor` (a worker died — SIGKILL,
        ``os._exit``, OOM) recreates the pool and resubmits, up to
        ``max_retries`` extra attempts.  Deterministic cell *exceptions*
        never retry — they fail fast exactly as before.
        """
        remaining_cells = list(cells)
        attempt = 0
        while True:
            try:
                self._run_pool_once(remaining_cells, cell_fn, root_seed,
                                    context, context_key, outcomes,
                                    generation=attempt)
                return
            except BrokenExecutor as exc:
                remaining_cells = [cell for cell in remaining_cells
                                   if cell.index not in outcomes]
                attempt += 1
                if attempt > self.max_retries or not remaining_cells:
                    victim = remaining_cells[0] if remaining_cells else cells[0]
                    raise SweepExecutionError(victim, exc) from exc
                chaos.log_event(
                    "sweep_pool_retry", attempt=attempt,
                    max_retries=self.max_retries,
                    resubmitted=[cell.index for cell in remaining_cells],
                    error=str(exc) or exc.__class__.__name__)

    def _run_pool_once(self, cells: List[SweepCell], cell_fn, root_seed,
                       context, context_key, outcomes, generation: int
                       ) -> None:
        """One process-pool attempt over ``cells``.

        Raises :class:`BrokenExecutor` through to the retry loop after
        recording every result that did complete, so a retry resubmits
        the true remainder.  The pool generation is exported as
        ``REPRO_CHAOS_INCARNATION`` before workers spawn, which is how
        chaos ``sweep_kill`` faults scoped to incarnation 0 stay dead on
        the retry.
        """
        plan = chaos.active_plan()
        previous = os.environ.get(chaos.CHAOS_INCARNATION_ENV)
        if plan is not None:
            os.environ[chaos.CHAOS_INCARNATION_ENV] = str(generation)
        max_workers = min(self.workers, len(cells))
        failure = None
        broken = None
        try:
            with ProcessPoolExecutor(max_workers=max_workers,
                                     initializer=_init_worker,
                                     initargs=(context,)) as pool:
                futures = {pool.submit(_execute_cell_pooled, cell_fn, cell,
                                       root_seed): cell
                           for cell in cells}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        cell = futures[future]
                        try:
                            _index, payload, duration = future.result()
                        except CancelledError:
                            continue
                        except BrokenExecutor as exc:
                            # A worker died.  Keep draining the done set —
                            # completed results are still recorded — then
                            # surface to the retry loop.
                            broken = exc
                            continue
                        except Exception as exc:
                            # Remember the first failure but keep draining:
                            # cells that completed (or are in flight) are
                            # still recorded and cached, honoring the
                            # resume contract.
                            if failure is None:
                                failure = (cell, exc)
                                for other in remaining:
                                    other.cancel()
                            continue
                        self._record(cell, payload, root_seed, context_key,
                                     duration, outcomes)
                    if broken is not None:
                        break
        finally:
            if plan is not None:
                if previous is None:
                    os.environ.pop(chaos.CHAOS_INCARNATION_ENV, None)
                else:
                    os.environ[chaos.CHAOS_INCARNATION_ENV] = previous
        if broken is not None:
            raise broken
        if failure is not None:
            cell, exc = failure
            raise SweepExecutionError(cell, exc) from exc
