"""On-disk JSON result cache for sweep cells.

Each completed cell is stored as one JSON file under
``<root>/<sweep name>/<cache key>.json``.  The cache key is a stable hash
covering the library version, the sweep name, the root seed, the cell
parameters, and a runner-supplied composite of the library source digest,
the cell-function source digest, the effective runtime toggles (e.g. the
``REPRO_CORE_FASTFORWARD`` core path), and the context fingerprint (see
:meth:`repro.sweeps.spec.SweepCell.cache_key` and the ``_code_key`` /
``_library_source_digest`` / ``_runtime_knobs_key`` helpers in
:mod:`repro.sweeps.runner`), so editing any library or cell code, flipping
a behavior-changing env knob, changing the catalog, or upgrading the
package all invalidate correctly.  Re-running the same sweep with the same
code, spec, and seed skips every completed cell, which is also how
interrupted sweeps resume.

Payloads are *canonicalized* (round-tripped through JSON) before they are
returned to the caller, whether they came from disk or from a fresh
computation, so warm-cache and cold-cache runs aggregate bit-identical
values.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional

from repro.errors import DataError
from repro.sweeps.spec import SweepCell

#: Bump when the on-disk layout changes; old entries are ignored.
CACHE_FORMAT_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached ``None`` payload.
MISS = object()


def canonicalize(payload: Any) -> Any:
    """Round-trip ``payload`` through JSON.

    This normalizes tuples to lists and validates encodability, so a
    freshly computed payload is exactly what a later cache hit would
    return.
    """
    try:
        return json.loads(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise DataError(f"sweep cell payloads must be JSON-encodable: {exc}") from exc


class SweepCache:
    """A directory of per-cell JSON result files.

    Args:
        root: Cache directory; created on first write.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    def path_for(self, cell: SweepCell, seed: int,
                 context_key: Optional[str] = None) -> Path:
        """The file that would hold this cell's result."""
        return (self.root / cell.spec_name
                / f"{cell.cache_key(seed, context_key)}.json")

    # ------------------------------------------------------------------
    # Read/write.
    # ------------------------------------------------------------------
    def get(self, cell: SweepCell, seed: int,
            context_key: Optional[str] = None) -> Any:
        """Return the cached payload, or :data:`MISS` if absent/corrupt.

        A file that exists but cannot be parsed (e.g. a worker was killed
        mid-write before atomic writes existed, or the disk filled) is
        treated as a miss with a warning — the cell simply recomputes and
        overwrites it — instead of poisoning ``resume`` with an exception.
        """
        path = self.path_for(cell, seed, context_key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return MISS
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"ignoring unreadable sweep-cache cell {path} ({exc}); "
                f"the cell will be recomputed", RuntimeWarning,
                stacklevel=2)
            return MISS
        if (not isinstance(entry, dict)
                or entry.get("version") != CACHE_FORMAT_VERSION
                or "payload" not in entry):
            if not isinstance(entry, dict) or "payload" not in entry:
                warnings.warn(
                    f"ignoring malformed sweep-cache cell {path}; "
                    f"the cell will be recomputed", RuntimeWarning,
                    stacklevel=2)
            return MISS
        return entry["payload"]

    def put(self, cell: SweepCell, seed: int, payload: Any,
            context_key: Optional[str] = None) -> None:
        """Atomically persist one cell result (write to temp, then rename)."""
        path = self.path_for(cell, seed, context_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "sweep": cell.spec_name,
            "seed": seed,
            "context_key": context_key,
            "params": cell.params,
            "payload": payload,
        }
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(path.parent),
            prefix=path.stem, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(entry, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def entry_count(self, sweep_name: Optional[str] = None) -> int:
        """Number of cached cells (for one sweep, or overall)."""
        pattern = f"{sweep_name}/*.json" if sweep_name else "*/*.json"
        return sum(1 for _ in self.root.glob(pattern))

    def clear(self, sweep_name: Optional[str] = None) -> int:
        """Delete cached cells; returns how many files were removed."""
        pattern = f"{sweep_name}/*.json" if sweep_name else "*/*.json"
        removed = 0
        for path in self.root.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
