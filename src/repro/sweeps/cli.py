"""Command-line interface for the sweep engine.

Usage::

    python -m repro.sweeps list
    python -m repro.sweeps run speed --workers 4 --cache-dir .sweep-cache
    python -m repro.sweeps resume speed --cache-dir .sweep-cache

``run`` executes a registered sweep; with ``--cache-dir`` every completed
cell is persisted, so an interrupted run (or ``resume``, which requires a
cache directory) picks up where it stopped.  ``--set axis=v1,v2``
overrides an axis of the default spec.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, List, Optional, Sequence, Tuple

from repro.cli import (
    add_run_resume_arguments,
    parse_workers_arg,
    resume_requires_cache,
    run_cli,
    write_json_out,
)
from repro.sweeps.registry import get_sweep, list_sweeps
from repro.sweeps.result import SweepResult
from repro.sweeps.runner import SweepRunner

# Historical import location (the scenarios CLI used to share the
# ``--workers`` type from here); the canonical home is ``repro.cli``.
_parse_workers = parse_workers_arg


def _parse_axis_override(text: str) -> Tuple[str, List[Any]]:
    """Parse an axis override: ``axis=<JSON value or list>`` or ``axis=v1,v2``.

    The value is first parsed as one JSON document — a JSON list becomes
    the axis values, any other JSON value a single-value axis — so values
    containing commas (dicts, nested lists) survive intact.  Non-JSON input
    falls back to comma-splitting with per-token JSON coercion, keeping the
    common ``axis=k80,p100`` form working.
    """
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"--set expects axis=v1,v2,... (got {text!r})")
    axis, _, raw = text.partition("=")
    try:
        value = json.loads(raw)
        values = value if isinstance(value, list) else [value]
    except ValueError:
        values = []
        for token in raw.split(","):
            try:
                values.append(json.loads(token))
            except ValueError:
                values.append(token)
    return axis.strip(), values


def _render(result: SweepResult, definition) -> str:
    """The sweep's own summary when it has one, else a generic table."""
    if definition.summarize is not None:
        return definition.summarize(result)
    payloads = result.payloads()
    if payloads and all(isinstance(payload, dict) for payload in payloads):
        scalar_keys = [key for key, value in payloads[0].items()
                       if isinstance(value, (int, float, str, bool))
                       and key not in result.spec.axis_names]
        if scalar_keys:
            return result.to_table(scalar_keys, title=f"sweep {result.spec.name}")
    return f"{len(payloads)} cell payloads (no tabular summary)"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sweeps`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweeps",
        description="List, run, and resume parameter sweeps.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered sweeps")

    for command, help_text in (("run", "run a sweep"),
                               ("resume", "resume a cached sweep")):
        sub = commands.add_parser(command, help=help_text)
        add_run_resume_arguments(
            sub, name_help="registered sweep name",
            json_help="also write cell payloads to a JSON file")
        sub.add_argument("--set", dest="overrides", action="append", default=[],
                         metavar="AXIS=V1,V2",
                         type=_parse_axis_override,
                         help="override one axis of the default spec")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    def body() -> int:
        if args.command == "list":
            for definition in list_sweeps():
                spec = definition.build_spec()
                print(f"{definition.name:24s} {len(spec):4d} cells  "
                      f"{definition.description}")
            return 0

        if resume_requires_cache(args):
            return 2

        definition = get_sweep(args.name)
        spec = definition.build_spec()
        if args.overrides:
            spec = spec.with_axes(**dict(args.overrides))
        context = (definition.build_context()
                   if definition.build_context is not None else None)
        runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                             seed=args.seed)
        result = runner.run(spec, definition.cell_fn, context=context)
        print(result.summary())
        print(_render(result, definition))
        if args.json_out:
            write_json_out(args.json_out,
                           {"sweep": spec.name, "seed": args.seed,
                            "cells": [{"params": r.cell.params,
                                       "payload": r.payload}
                                      for r in result.results]},
                           len(result), "cell payloads")
        return 0

    return run_cli(body)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
