"""Declarative sweep specifications.

A :class:`SweepSpec` names a set of *axes* (parameter name → list of
values) plus *fixed* parameters shared by every cell.  Expanding the spec
yields one :class:`SweepCell` per point of the cartesian product, in a
deterministic row-major order (the last axis varies fastest), so cell
indices are stable across processes and runs.

Axis and fixed values must be JSON-encodable (scalars, lists/tuples, and
dicts thereof): the canonical JSON encoding of a cell's parameters is what
keys both its derived RNG seed and its on-disk cache entry.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.simulation.rng import RandomStreams


def canonical_json(value: Any) -> str:
    """Encode ``value`` as canonical (sorted-key, compact) JSON.

    Raises:
        ConfigurationError: If the value is not JSON-encodable.
    """
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"sweep parameters must be JSON-encodable: {exc}") from exc


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep's parameter grid.

    Attributes:
        spec_name: Name of the owning :class:`SweepSpec`.
        index: Position in the spec's row-major cell order.
        coords: Per-axis value indices, in axis order.
        params: Axis values plus fixed parameters for this cell.
    """

    spec_name: str
    index: int
    coords: Tuple[int, ...]
    params: Dict[str, Any] = field(compare=False)

    def key(self) -> str:
        """Canonical JSON of the cell parameters (stable across runs)."""
        return canonical_json(self.params)

    def cache_key(self, seed: int, context_key: Optional[str] = None) -> str:
        """Stable hex digest identifying this cell's result.

        Covers the library version (so calibration/model changes shipped in
        a release invalidate persistent caches), the sweep name, the root
        seed, the cell parameters, and — when given — a fingerprint of the
        shared context (e.g. the model catalog), so results computed
        against different code or contexts never collide in the cache.
        """
        digest = hashlib.sha256(
            f"{__version__}:{self.spec_name}:{seed}:{context_key or ''}:"
            f"{self.key()}".encode("utf-8"))
        return digest.hexdigest()

    def seed(self, root_seed: int) -> int:
        """The cell's derived RNG seed (independent of execution order)."""
        return RandomStreams(seed=root_seed).spawn(
            f"sweep:{self.spec_name}:{self.key()}").seed

    def streams(self, root_seed: int) -> RandomStreams:
        """Named random streams for this cell, derived from ``root_seed``.

        The derivation depends only on ``(root_seed, spec name, params)``,
        never on the cell's position in the grid or on which process runs
        it, so serial and parallel executions draw identical samples.
        """
        return RandomStreams(seed=self.seed(root_seed))

    def label(self) -> str:
        """Short human-readable label, e.g. ``model=resnet_15/gpu=k80``."""
        return "/".join(f"{k}={v}" for k, v in sorted(self.params.items()))


class SweepSpec:
    """A named parameter grid: ordered axes plus fixed parameters.

    Args:
        name: Sweep name (used for seeding, caching, and the CLI).
        axes: Mapping of axis name → sequence of values.  Axis order is
            preserved; the cartesian product is expanded row-major with the
            last axis varying fastest.
        fixed: Parameters shared by every cell.  A fixed key may not also
            be an axis name.

    Example:
        >>> spec = SweepSpec("speed", axes={"model": ["resnet_15", "resnet_32"],
        ...                                 "gpu": ["k80", "p100"]},
        ...                  fixed={"steps": 2000})
        >>> len(spec)
        4
        >>> spec.cells()[1].params
        {'model': 'resnet_15', 'gpu': 'p100', 'steps': 2000}
    """

    def __init__(self, name: str, axes: Mapping[str, Sequence[Any]],
                 fixed: Optional[Mapping[str, Any]] = None):
        if not name:
            raise ConfigurationError("a sweep needs a non-empty name")
        if not axes:
            raise ConfigurationError("a sweep needs at least one axis")
        self.name = str(name)
        self.axes: Dict[str, List[Any]] = {}
        for axis_name, values in axes.items():
            values = list(values)
            if not values:
                raise ConfigurationError(f"axis {axis_name!r} has no values")
            # Duplicate values would expand to cells with identical params,
            # hence identical derived RNG streams and cache keys — silently
            # correlated "replicates".  Reject them up front.
            encoded = [canonical_json(value) for value in values]
            if len(set(encoded)) != len(encoded):
                raise ConfigurationError(
                    f"axis {axis_name!r} has duplicate values; replicate "
                    "measurements need a distinguishing axis (e.g. a "
                    "repetition index)")
            self.axes[axis_name] = values
        self.fixed: Dict[str, Any] = dict(fixed or {})
        overlap = set(self.axes) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} are both axes and fixed")
        # Validate encodability eagerly so misuse fails at spec build time.
        canonical_json({"axes": self.axes, "fixed": self.fixed})

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Axis names in declaration order."""
        return tuple(self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Number of values per axis, in axis order."""
        return tuple(len(values) for values in self.axes.values())

    def __len__(self) -> int:
        cells = 1
        for extent in self.shape:
            cells *= extent
        return cells

    def __repr__(self) -> str:
        axes = ", ".join(f"{name}[{len(values)}]"
                         for name, values in self.axes.items())
        return f"SweepSpec({self.name!r}, {axes}, {len(self)} cells)"

    # ------------------------------------------------------------------
    # Expansion.
    # ------------------------------------------------------------------
    def cells(self) -> List[SweepCell]:
        """Expand the grid into cells, row-major (last axis fastest).

        Mutable values (dicts, lists) are deep-copied into each cell, so a
        cell function that mutates its params cannot corrupt the spec,
        sibling cells, or cache keying.
        """
        names = self.axis_names
        expanded: List[SweepCell] = []
        for index, combo in enumerate(itertools.product(
                *(range(len(self.axes[name])) for name in names))):
            params = {name: copy.deepcopy(self.axes[name][coord])
                      for name, coord in zip(names, combo)}
            params.update(copy.deepcopy(self.fixed))
            expanded.append(SweepCell(spec_name=self.name, index=index,
                                      coords=tuple(combo), params=params))
        return expanded

    def with_axes(self, **overrides: Sequence[Any]) -> "SweepSpec":
        """A copy of this spec with some axes replaced (CLI ``--set``)."""
        unknown = set(overrides) - set(self.axes)
        if unknown:
            raise ConfigurationError(
                f"unknown axes {sorted(unknown)}; spec has {list(self.axes)}")
        axes = dict(self.axes)
        axes.update({name: list(values) for name, values in overrides.items()})
        return SweepSpec(self.name, axes, self.fixed)
