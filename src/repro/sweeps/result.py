"""Structured sweep results.

A :class:`SweepResult` holds one :class:`CellResult` per cell, always in
the spec's canonical row-major order regardless of which worker finished
first, so downstream aggregation is deterministic.  Helpers feed
:mod:`repro.analysis` directly: :meth:`SweepResult.to_rows` builds table
rows and :meth:`SweepResult.to_table` renders them through
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.errors import DataError
from repro.sweeps.spec import SweepCell, SweepSpec, canonical_json


@dataclass(frozen=True)
class CellResult:
    """Outcome of one sweep cell.

    Attributes:
        cell: The cell that was executed.
        payload: The (JSON-canonical) value returned by the cell function.
        seed: Derived per-cell RNG seed.
        cached: Whether the payload came from the on-disk cache.
        duration_seconds: Wall-clock time of the computation (0 for hits).
    """

    cell: SweepCell
    payload: Any
    seed: int
    cached: bool
    duration_seconds: float


@dataclass
class SweepResult:
    """All cell results of one sweep run, in canonical cell order.

    Attributes:
        spec: The executed spec.
        results: One :class:`CellResult` per cell, ordered by cell index.
        workers: Worker processes used (1 means in-process serial).
        wall_seconds: Total wall-clock duration of the run.
    """

    spec: SweepSpec
    results: List[CellResult]
    workers: int = 1
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.results)

    @property
    def cache_hits(self) -> int:
        """Cells served from the cache."""
        return sum(1 for result in self.results if result.cached)

    @property
    def cache_misses(self) -> int:
        """Cells actually computed by this run."""
        return sum(1 for result in self.results if not result.cached)

    def payloads(self) -> List[Any]:
        """All payloads, in canonical cell order."""
        return [result.payload for result in self.results]

    def payload(self, **params: Any) -> Any:
        """The payload of the unique cell matching the given parameters."""
        matches = self.select(**params)
        if not matches:
            raise KeyError(f"no cell matches {params}")
        if len(matches) > 1:
            raise KeyError(f"{len(matches)} cells match {params}")
        return matches[0].payload

    def select(self, **params: Any) -> List[CellResult]:
        """All cell results whose parameters match the given values."""
        return [result for result in self.results
                if all(result.cell.params.get(key) == value
                       for key, value in params.items())]

    def group_by(self, axis: str) -> Dict[Any, List[CellResult]]:
        """Cell results grouped by one axis value, insertion-ordered.

        Unhashable axis values (dicts, lists) are keyed by their canonical
        JSON encoding instead of the raw value.
        """
        if axis not in self.spec.axes:
            raise DataError(f"unknown axis {axis!r}; spec has {list(self.spec.axes)}")
        groups: Dict[Any, List[CellResult]] = {}
        for result in self.results:
            value = result.cell.params[axis]
            try:
                hash(value)
            except TypeError:
                value = canonical_json(value)
            groups.setdefault(value, []).append(result)
        return groups

    # ------------------------------------------------------------------
    # repro.analysis integration.
    # ------------------------------------------------------------------
    def to_rows(self, columns: Sequence[str],
                extract: Optional[Callable[[SweepCell, Any], Sequence[Any]]] = None
                ) -> List[List[Any]]:
        """Build table rows: one per cell, axis values then payload fields.

        Args:
            columns: Payload keys appended after the axis-value columns
                (payloads must be dicts unless ``extract`` is given).
            extract: Optional override mapping ``(cell, payload)`` to the
                payload columns.
        """
        rows: List[List[Any]] = []
        for result in self.results:
            row: List[Any] = [result.cell.params[name]
                              for name in self.spec.axis_names]
            if extract is not None:
                row.extend(extract(result.cell, result.payload))
            else:
                if not isinstance(result.payload, dict):
                    raise DataError("to_rows needs dict payloads or an extractor")
                row.extend(result.payload[column] for column in columns)
            rows.append(row)
        return rows

    def to_table(self, columns: Sequence[str], title: Optional[str] = None,
                 float_format: str = "{:.3f}") -> str:
        """Render the sweep as a fixed-width text table."""
        headers = list(self.spec.axis_names) + list(columns)
        return format_table(headers, self.to_rows(columns), title=title,
                            float_format=float_format)

    def summary(self) -> str:
        """One-line run summary (cells, cache behaviour, timing)."""
        return (f"sweep {self.spec.name!r}: {len(self)} cells "
                f"({self.cache_hits} cached, {self.cache_misses} computed) "
                f"with {self.workers} worker(s) in {self.wall_seconds:.2f}s")


def series_from(results: Sequence[CellResult], x_axis: str,
                value: Callable[[Any], float]) -> List[Tuple[Any, float]]:
    """Build an ``[(x, y), ...]`` series for :mod:`repro.analysis.figures`."""
    return [(result.cell.params[x_axis], value(result.payload))
            for result in results]
