"""Registry of named, CLI-runnable sweeps.

Measurement campaigns register a :class:`SweepDefinition` at import time;
``python -m repro.sweeps list`` shows every registered sweep and
``python -m repro.sweeps run <name>`` executes one.  The built-in
definitions live in the campaign modules themselves so that the registry
stays dependency-free; :func:`load_builtin_sweeps` imports them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sweeps.result import SweepResult
from repro.sweeps.runner import CellFunction
from repro.sweeps.spec import SweepSpec

#: Campaign modules that register built-in sweeps when imported.
_BUILTIN_MODULES = (
    "repro.measurement.speed_campaign",
    "repro.measurement.scaling_campaign",
    "repro.measurement.checkpoint_campaign",
    "repro.measurement.revocation_campaign",
    "repro.measurement.replacement_campaign",
    "repro.measurement.startup_campaign",
    "repro.scenarios.catalog",
)


@dataclass(frozen=True)
class SweepDefinition:
    """A named sweep the CLI can list and run.

    Attributes:
        name: Unique sweep name.
        description: One-line summary shown by ``list``.
        build_spec: Zero-argument factory producing the default spec.
        cell_fn: Module-level cell function executed per cell.
        build_context: Optional factory for the shared cell context
            (e.g. the model catalog); called once per run.
        summarize: Optional renderer turning a result into CLI output.
    """

    name: str
    description: str
    build_spec: Callable[[], SweepSpec]
    cell_fn: CellFunction
    build_context: Optional[Callable[[], object]] = None
    summarize: Optional[Callable[[SweepResult], str]] = field(default=None)


_REGISTRY: Dict[str, SweepDefinition] = {}


def register_sweep(definition: SweepDefinition) -> SweepDefinition:
    """Register a sweep definition; re-registration must be idempotent."""
    existing = _REGISTRY.get(definition.name)
    if existing is not None and existing.cell_fn is not definition.cell_fn:
        raise ConfigurationError(
            f"sweep {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition
    return definition


def get_sweep(name: str) -> SweepDefinition:
    """Look up a registered sweep by name."""
    load_builtin_sweeps()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(f"unknown sweep {name!r}; known sweeps: {known}")
    return _REGISTRY[name]


def list_sweeps() -> List[SweepDefinition]:
    """All registered sweeps, sorted by name."""
    load_builtin_sweeps()
    return sorted(_REGISTRY.values(), key=lambda definition: definition.name)


def load_builtin_sweeps() -> None:
    """Import the campaign modules so their definitions register."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
