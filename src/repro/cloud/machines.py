"""Machine (VM) type definitions.

The paper configures every GPU worker with 4 vCPUs and 52 GB of main memory
and every parameter server as a CPU-only VM with 4 vCPUs and 16 GB of
memory running Ubuntu 18 LTS.  Machine types capture that CPU/memory shape
independently of the attached GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineType:
    """A VM shape (CPU, memory, optional GPU attachment).

    Attributes:
        name: Machine type name.
        vcpus: Number of virtual CPUs.
        memory_gb: Main memory in GB.
        gpu_name: Name of the attached GPU type, or ``None`` for CPU-only.
        gpu_count: Number of attached GPUs.
        os_image: Operating system image.
    """

    name: str
    vcpus: int
    memory_gb: int
    gpu_name: Optional[str] = None
    gpu_count: int = 0
    os_image: str = "ubuntu-18.04-lts"

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gb <= 0:
            raise ConfigurationError("machine must have positive vCPUs and memory")
        if (self.gpu_name is None) != (self.gpu_count == 0):
            raise ConfigurationError("gpu_name and gpu_count must be set together")

    @property
    def has_gpu(self) -> bool:
        """Whether the machine has at least one attached GPU."""
        return self.gpu_count > 0

    def with_gpu(self, gpu_name: str, gpu_count: int = 1) -> "MachineType":
        """Return a copy of this machine type with a GPU attached."""
        return MachineType(name=f"{self.name}-{gpu_name}x{gpu_count}",
                           vcpus=self.vcpus, memory_gb=self.memory_gb,
                           gpu_name=gpu_name.lower(), gpu_count=gpu_count,
                           os_image=self.os_image)


#: Parameter-server VM: 4 vCPUs, 16 GB, CPU-only (Section III-A).
PARAMETER_SERVER_MACHINE = MachineType(name="ps-standard-4", vcpus=4, memory_gb=16)

#: GPU worker VM shape before GPU attachment: 4 vCPUs, 52 GB (Section III-A).
GPU_WORKER_MACHINE = MachineType(name="worker-highmem-4", vcpus=4, memory_gb=52)


def gpu_worker_machine(gpu_name: str, gpu_count: int = 1) -> MachineType:
    """The worker machine used in the study with a GPU of the given type."""
    return GPU_WORKER_MACHINE.with_gpu(gpu_name, gpu_count)
