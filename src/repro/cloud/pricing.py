"""Pricing catalog and cost accounting.

Google's transient servers (preemptible VMs) are offered at fixed prices
that are significantly lower than their on-demand counterparts; this is the
economic motivation for the entire study.  The catalog below uses the
Google Cloud list prices from the study period (2019-2020, us-central1) in
USD per hour.  Prices only feed the cost-estimation extension and examples;
none of the paper's tables depend on exact prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError, UnknownGPUError
from repro.cloud.machines import MachineType


@dataclass(frozen=True)
class PricePair:
    """On-demand and preemptible (transient) hourly prices in USD."""

    on_demand: float
    preemptible: float

    def __post_init__(self) -> None:
        if self.on_demand < 0 or self.preemptible < 0:
            raise ConfigurationError("prices must be non-negative")

    def price(self, transient: bool) -> float:
        """The hourly price for the requested server class."""
        return self.preemptible if transient else self.on_demand

    @property
    def discount(self) -> float:
        """Fractional discount of the preemptible price vs. on-demand."""
        if self.on_demand == 0:
            return 0.0
        return 1.0 - self.preemptible / self.on_demand


@dataclass
class PriceCatalog:
    """Hourly prices for GPUs and VM shapes.

    Attributes:
        gpu_prices: Per-GPU-type accelerator prices.
        vcpu_price: Price per vCPU hour.
        memory_gb_price: Price per GB of memory per hour.
    """

    gpu_prices: Dict[str, PricePair] = field(default_factory=dict)
    vcpu_price: PricePair = PricePair(on_demand=0.0475, preemptible=0.01)
    memory_gb_price: PricePair = PricePair(on_demand=0.0064, preemptible=0.00135)

    def gpu_price(self, gpu_name: str, transient: bool) -> float:
        """Hourly price of one GPU of the given type."""
        key = gpu_name.lower()
        if key not in self.gpu_prices:
            raise UnknownGPUError(gpu_name, known=tuple(self.gpu_prices))
        return self.gpu_prices[key].price(transient)

    def machine_hourly_price(self, machine: MachineType, transient: bool) -> float:
        """Hourly price of a VM of the given shape, including attached GPUs."""
        price = (machine.vcpus * self.vcpu_price.price(transient)
                 + machine.memory_gb * self.memory_gb_price.price(transient))
        if machine.has_gpu and machine.gpu_name is not None:
            price += machine.gpu_count * self.gpu_price(machine.gpu_name, transient)
        return price

    def cost(self, machine: MachineType, transient: bool, seconds: float) -> float:
        """Cost in USD of running a machine for ``seconds`` seconds.

        The simulated provider bills per second, as Google Cloud does.
        """
        if seconds < 0:
            raise ConfigurationError("duration must be non-negative")
        return self.machine_hourly_price(machine, transient) * seconds / 3600.0

    def transient_discount(self, gpu_name: str) -> float:
        """Fractional discount of a transient GPU relative to on-demand."""
        key = gpu_name.lower()
        if key not in self.gpu_prices:
            raise UnknownGPUError(gpu_name, known=tuple(self.gpu_prices))
        return self.gpu_prices[key].discount


def default_price_catalog() -> PriceCatalog:
    """Google Cloud list prices for the study period (us-central1, USD/hour)."""
    return PriceCatalog(gpu_prices={
        "k80": PricePair(on_demand=0.45, preemptible=0.135),
        "p100": PricePair(on_demand=1.46, preemptible=0.43),
        "v100": PricePair(on_demand=2.48, preemptible=0.74),
    })
