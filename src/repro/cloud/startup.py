"""Transient and on-demand server startup-time model.

The paper breaks server startup into three consecutive stages (Section V-A,
following Google's instance life cycle):

1. **provisioning** — resources are allocated for the server,
2. **staging** — the instance is prepared for booting, and
3. **booting** — the server boots and enters the running state.

Figure 6 reports the per-stage breakdown for transient and on-demand K80 and
P100 servers in two regions; Figure 7 compares startup time for replacement
servers requested *immediately* after a revocation versus after a delay.
The calibrated means/variability below reproduce the paper's observations:

* total transient startup is under 100 seconds,
* transient P100 startup is ~8.7% slower than transient K80, with staging
  contributing most of the difference,
* transient startup is 11-22 seconds slower than on-demand,
* recent revocations barely move the mean startup time (<4 s) but make it
  about 4x more variable (CoV ~12% vs ~3%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StartupStages:
    """Durations (seconds) of the three startup stages for one server."""

    provisioning: float
    staging: float
    booting: float

    @property
    def total(self) -> float:
        """Total startup time in seconds."""
        return self.provisioning + self.staging + self.booting

    def as_dict(self) -> Dict[str, float]:
        """Stage durations keyed by stage name."""
        return {
            "provisioning": self.provisioning,
            "staging": self.staging,
            "booting": self.booting,
        }


@dataclass(frozen=True)
class _StageParams:
    """Mean and coefficient of variation for the three stages."""

    provisioning: Tuple[float, float]
    staging: Tuple[float, float]
    booting: Tuple[float, float]


#: Calibrated per-(GPU, server class) stage parameters: (mean seconds, CoV).
#: Keys are ``(gpu_name, transient)``.
_STAGE_PARAMS: Dict[Tuple[str, bool], _StageParams] = {
    ("k80", True): _StageParams(provisioning=(24.0, 0.10), staging=(33.0, 0.28),
                                booting=(25.0, 0.06)),
    ("k80", False): _StageParams(provisioning=(20.0, 0.08), staging=(27.0, 0.10),
                                 booting=(24.0, 0.06)),
    ("p100", True): _StageParams(provisioning=(26.0, 0.10), staging=(39.0, 0.12),
                                 booting=(24.2, 0.06)),
    ("p100", False): _StageParams(provisioning=(21.0, 0.08), staging=(23.0, 0.10),
                                  booting=(23.6, 0.06)),
    ("v100", True): _StageParams(provisioning=(27.0, 0.10), staging=(40.0, 0.12),
                                 booting=(24.0, 0.06)),
    ("v100", False): _StageParams(provisioning=(22.0, 0.08), staging=(24.0, 0.10),
                                  booting=(23.5, 0.06)),
}

#: Small additive adjustment (seconds, applied to the staging stage) per
#: region, reflecting the regional differences visible in Fig. 6.
_REGION_STAGING_OFFSET: Dict[str, float] = {
    "us-east1": 0.0,
    "us-central1": 1.0,
    "us-west1": 3.0,
    "europe-west1": 2.0,
    "europe-west4": 2.0,
    "asia-east1": 4.0,
}

#: Replacement-request startup means (seconds) measured through CM-DARE's
#: lighter-weight path (Fig. 7): (immediate mean, delayed mean).
_REPLACEMENT_MEANS: Dict[str, Tuple[float, float]] = {
    "k80": (61.0, 60.0),
    "p100": (63.0, 60.5),
    "v100": (64.0, 62.0),
}

#: Coefficient of variation of replacement startup time: requests issued
#: immediately after a revocation are about 4x more variable.
_REPLACEMENT_COV_IMMEDIATE = 0.12
_REPLACEMENT_COV_DELAYED = 0.03

#: Warm re-acquisition handshake (seconds): taking over an already-running
#: server skips all three startup stages entirely (Fig. 10's warm start has
#: no server-startup component at all); the only server-side cost left is
#: the control-plane handshake that reassigns the instance.  Mild per-GPU
#: spread mirrors the replacement-path means above.
_WARM_REACQUIRE_MEANS: Dict[str, float] = {
    "k80": 2.5,
    "p100": 2.7,
    "v100": 2.8,
}
_WARM_REACQUIRE_COV = 0.20


def _truncated_normal(rng: np.random.Generator, mean: float, cov: float,
                      minimum: float = 0.5) -> float:
    """Draw a normal sample with the given CoV, truncated below."""
    if mean <= 0:
        raise ConfigurationError("mean must be positive")
    return float(max(minimum, rng.normal(mean, mean * cov)))


class StartupTimeModel:
    """Samples startup-stage durations for requested servers.

    Args:
        rng: Random generator used for sampling; pass a stream from
            :class:`~repro.simulation.rng.RandomStreams` for reproducibility.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    # Fresh requests (Fig. 6).
    # ------------------------------------------------------------------
    def stage_means(self, gpu_name: str, transient: bool,
                    region_name: str = "us-east1") -> StartupStages:
        """Mean stage durations without sampling noise."""
        gpu = get_gpu(gpu_name)
        region = get_region(region_name)
        params = _STAGE_PARAMS[(gpu.name, transient)]
        offset = _REGION_STAGING_OFFSET.get(region.name, 0.0)
        return StartupStages(provisioning=params.provisioning[0],
                             staging=params.staging[0] + offset,
                             booting=params.booting[0])

    def sample(self, gpu_name: str, transient: bool,
               region_name: str = "us-east1") -> StartupStages:
        """Sample the three stage durations for a newly requested server."""
        gpu = get_gpu(gpu_name)
        region = get_region(region_name)
        params = _STAGE_PARAMS[(gpu.name, transient)]
        offset = _REGION_STAGING_OFFSET.get(region.name, 0.0)
        provisioning = _truncated_normal(self._rng, *params.provisioning)
        staging = _truncated_normal(self._rng, params.staging[0] + offset,
                                    params.staging[1])
        booting = _truncated_normal(self._rng, *params.booting)
        return StartupStages(provisioning=provisioning, staging=staging,
                             booting=booting)

    def sample_total(self, gpu_name: str, transient: bool,
                     region_name: str = "us-east1") -> float:
        """Sample the total startup time (seconds) for a new server."""
        return self.sample(gpu_name, transient, region_name).total

    # ------------------------------------------------------------------
    # Replacement requests after a revocation (Fig. 7).
    # ------------------------------------------------------------------
    def replacement_mean(self, gpu_name: str, immediate: bool) -> float:
        """Mean replacement startup time (seconds)."""
        gpu = get_gpu(gpu_name)
        immediate_mean, delayed_mean = _REPLACEMENT_MEANS[gpu.name]
        return immediate_mean if immediate else delayed_mean

    def sample_replacement(self, gpu_name: str, immediate: bool) -> float:
        """Sample the startup time of a replacement server.

        Args:
            gpu_name: GPU type of the replacement server.
            immediate: True when the request is issued immediately after a
                revocation; such requests have the same mean but much higher
                variance than delayed requests.
        """
        mean = self.replacement_mean(gpu_name, immediate)
        cov = _REPLACEMENT_COV_IMMEDIATE if immediate else _REPLACEMENT_COV_DELAYED
        return _truncated_normal(self._rng, mean, cov, minimum=5.0)

    # ------------------------------------------------------------------
    # Warm re-acquisition of an already-running server (Fig. 10 warm path).
    # ------------------------------------------------------------------
    def warm_reacquire_mean(self, gpu_name: str) -> float:
        """Mean handshake time (seconds) to re-acquire a warm server.

        A warm start reuses a server that is already provisioned, staged,
        and booted, so none of the Fig. 6 stages apply; what remains is the
        short control-plane handshake that hands the running instance to
        the new owner.  Used by the fleet warm-replacement path
        (:class:`repro.scenarios.pool.TransientPool` with warm capacity).
        """
        gpu = get_gpu(gpu_name)
        return _WARM_REACQUIRE_MEANS[gpu.name]

    def sample_warm_reacquire(self, gpu_name: str) -> float:
        """Sample the warm re-acquisition handshake time (seconds)."""
        return _truncated_normal(self._rng, self.warm_reacquire_mean(gpu_name),
                                 _WARM_REACQUIRE_COV)
