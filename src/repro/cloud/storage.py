"""Cloud object storage model.

The chief worker periodically saves checkpoints to cloud storage (Google
Cloud Storage in the paper).  The storage model tracks uploaded objects and
charges a simple bandwidth/latency cost for uploads and downloads; the
paper minimizes the network impact on checkpoint measurements by keeping
storage in the same data center as the training cluster, which is the
default here (same-region bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, DataError

#: Effective same-region upload bandwidth (bytes/second).  Checkpoint
#: *serialization* dominates checkpoint time in the paper's measurements
#: (the time model lives in :mod:`repro.perf.checkpoint_time`); the storage
#: transfer itself is fast.
SAME_REGION_BANDWIDTH = 400 * 1024 * 1024

#: Cross-region bandwidth (bytes/second).
CROSS_REGION_BANDWIDTH = 80 * 1024 * 1024

#: Fixed per-request latency (seconds).
REQUEST_LATENCY = 0.15


@dataclass(frozen=True)
class StorageObject:
    """One object stored in the bucket.

    Attributes:
        key: Object key, e.g. ``"ckpt/model.ckpt-4000"``.
        size_bytes: Object size.
        uploaded_at: Simulation time at which the upload completed.
        metadata: Free-form metadata (model name, step, ...).
    """

    key: str
    size_bytes: int
    uploaded_at: float
    metadata: Dict[str, str] = field(default_factory=dict)


class CloudStorage:
    """A simulated cloud storage bucket.

    Args:
        region_name: Region the bucket lives in; transfers to/from the same
            region use the fast same-region bandwidth.
        bucket_name: Name used in keys and reporting.
    """

    def __init__(self, region_name: str, bucket_name: str = "cm-dare-checkpoints"):
        self.region_name = region_name
        self.bucket_name = bucket_name
        self._objects: Dict[str, StorageObject] = {}

    # ------------------------------------------------------------------
    # Transfer-time estimation.
    # ------------------------------------------------------------------
    def _bandwidth(self, peer_region: str) -> float:
        return (SAME_REGION_BANDWIDTH if peer_region == self.region_name
                else CROSS_REGION_BANDWIDTH)

    def upload_time(self, size_bytes: int, from_region: str) -> float:
        """Seconds needed to upload ``size_bytes`` from ``from_region``."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        return REQUEST_LATENCY + size_bytes / self._bandwidth(from_region)

    def download_time(self, size_bytes: int, to_region: str) -> float:
        """Seconds needed to download ``size_bytes`` to ``to_region``."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        return REQUEST_LATENCY + size_bytes / self._bandwidth(to_region)

    # ------------------------------------------------------------------
    # Object management.
    # ------------------------------------------------------------------
    def put(self, key: str, size_bytes: int, at_time: float,
            metadata: Optional[Dict[str, str]] = None) -> StorageObject:
        """Store (or overwrite) an object."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        obj = StorageObject(key=key, size_bytes=int(size_bytes), uploaded_at=at_time,
                            metadata=dict(metadata or {}))
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> StorageObject:
        """Fetch an object's metadata.

        Raises:
            DataError: If the key does not exist.
        """
        try:
            return self._objects[key]
        except KeyError:
            raise DataError(f"object {key!r} not found in bucket {self.bucket_name!r}") from None

    def exists(self, key: str) -> bool:
        """Whether an object with ``key`` exists."""
        return key in self._objects

    def delete(self, key: str) -> None:
        """Delete an object if it exists."""
        self._objects.pop(key, None)

    def list_objects(self, prefix: str = "") -> List[StorageObject]:
        """Objects whose key starts with ``prefix``, sorted by key."""
        return sorted((obj for key, obj in self._objects.items()
                       if key.startswith(prefix)), key=lambda obj: obj.key)

    def latest(self, prefix: str = "") -> Optional[StorageObject]:
        """The most recently uploaded object under ``prefix``, if any."""
        candidates = self.list_objects(prefix)
        if not candidates:
            return None
        return max(candidates, key=lambda obj: obj.uploaded_at)

    def total_bytes(self) -> int:
        """Total stored bytes."""
        return sum(obj.size_bytes for obj in self._objects.values())
