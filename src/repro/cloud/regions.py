"""Region catalog.

The measurement study spans six Google Cloud regions: three in the US, two
in Europe, and one in Asia.  Each region records which GPU types it offers
(Table V has ``N/A`` cells for unavailable combinations) and a UTC offset
used to express revocation times in the region's local time (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import UnknownRegionError
from repro.units import wrap_hour


@dataclass(frozen=True)
class Region:
    """A cloud region.

    Attributes:
        name: Region name, e.g. ``"us-east1"``.
        continent: Coarse location used for grouping.
        utc_offset_hours: Offset of the region's local time from UTC.  The
            paper reports time-of-day revocation patterns in local time.
        gpu_types: Names of GPU types available in this region.
    """

    name: str
    continent: str
    utc_offset_hours: float
    gpu_types: Tuple[str, ...]

    def offers(self, gpu_name: str) -> bool:
        """Whether the region offers the given GPU type."""
        return gpu_name.lower() in self.gpu_types

    def local_hour(self, utc_hour: float) -> float:
        """Convert a UTC hour-of-day to this region's local hour-of-day.

        The result is always in ``[0, 24)``, even for negative UTC offsets
        applied near midnight (see :func:`repro.units.wrap_hour`).
        """
        return wrap_hour(utc_hour + self.utc_offset_hours)


#: The six regions of the study with their GPU availability (Table V).
REGION_CATALOG: Dict[str, Region] = {
    "us-east1": Region(name="us-east1", continent="north-america",
                       utc_offset_hours=-5.0, gpu_types=("k80", "p100")),
    "us-central1": Region(name="us-central1", continent="north-america",
                          utc_offset_hours=-6.0, gpu_types=("k80", "p100", "v100")),
    "us-west1": Region(name="us-west1", continent="north-america",
                       utc_offset_hours=-8.0, gpu_types=("k80", "p100", "v100")),
    "europe-west1": Region(name="europe-west1", continent="europe",
                           utc_offset_hours=1.0, gpu_types=("k80", "p100")),
    "europe-west4": Region(name="europe-west4", continent="europe",
                           utc_offset_hours=1.0, gpu_types=("v100",)),
    "asia-east1": Region(name="asia-east1", continent="asia",
                         utc_offset_hours=8.0, gpu_types=("v100",)),
}


def get_region(name: str) -> Region:
    """Look up a region by name (case-insensitive).

    Raises:
        UnknownRegionError: If the name is not in the catalog.
    """
    key = name.lower()
    if key not in REGION_CATALOG:
        raise UnknownRegionError(name, known=tuple(REGION_CATALOG))
    return REGION_CATALOG[key]


def list_regions() -> List[Region]:
    """All regions in catalog order."""
    return list(REGION_CATALOG.values())


def regions_offering(gpu_name: str) -> List[Region]:
    """Regions that offer a given GPU type."""
    return [region for region in REGION_CATALOG.values() if region.offers(gpu_name)]
