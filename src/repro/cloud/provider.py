"""Simulated cloud provider.

The provider is the substrate the CM-DARE resource manager talks to: it
accepts instance requests, walks each instance through the startup stages
(provisioning, staging, booting) on the discrete-event simulator, schedules
revocations for transient servers from the calibrated revocation model, and
keeps the bookkeeping needed for cost accounting and quota enforcement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.gpus import get_gpu
from repro.cloud.instance import CloudInstance, InstanceState, ServerClass
from repro.cloud.machines import MachineType, PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.cloud.startup import StartupTimeModel
from repro.errors import CapacityError, ConfigurationError, InstanceStateError
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams

#: Default per-(region, GPU) quota of concurrently alive GPU servers,
#: mirroring the per-account limits the paper hits when requesting servers
#: "in batches ... the maximum number of servers allowed for our account".
DEFAULT_GPU_QUOTA = 48


@dataclass
class InstanceRequest:
    """A request for one server.

    Attributes:
        region_name: Target region.
        machine: VM shape; use :func:`make_worker_request` /
            :func:`make_ps_request` for the paper's standard shapes.
        server_class: On-demand or transient.
        labels: Free-form labels copied onto the instance.
        on_running: Callback invoked as ``on_running(instance)`` when the
            server reaches the RUNNING state.
        on_revoked: Callback invoked as ``on_revoked(instance)`` if the
            server is revoked.
        after_revocation: Marks the request as an immediate replacement for
            a revoked server (affects startup-time variability, Fig. 7).
    """

    region_name: str
    machine: MachineType
    server_class: ServerClass = ServerClass.TRANSIENT
    labels: Dict[str, str] = field(default_factory=dict)
    on_running: Optional[Callable[[CloudInstance], None]] = None
    on_revoked: Optional[Callable[[CloudInstance], None]] = None
    after_revocation: bool = False


def make_worker_request(gpu_name: str, region_name: str,
                        transient: bool = True, **kwargs) -> InstanceRequest:
    """Build a request for a standard GPU worker (4 vCPU / 52 GB / 1 GPU)."""
    server_class = ServerClass.TRANSIENT if transient else ServerClass.ON_DEMAND
    return InstanceRequest(region_name=region_name,
                           machine=gpu_worker_machine(gpu_name),
                           server_class=server_class, **kwargs)


def make_ps_request(region_name: str, **kwargs) -> InstanceRequest:
    """Build a request for a standard parameter server (on-demand, CPU-only)."""
    return InstanceRequest(region_name=region_name,
                           machine=PARAMETER_SERVER_MACHINE,
                           server_class=ServerClass.ON_DEMAND, **kwargs)


class SimulatedCloudProvider:
    """The simulated cloud provider front end.

    Args:
        simulator: Discrete-event simulator driving all timing.
        streams: Named random streams (startup and revocation sampling use
            separate streams so they are independently reproducible).
        startup_model: Startup-time model; a default is built when omitted.
        revocation_model: Revocation model; a default is built when omitted.
        price_catalog: Pricing used for cost accounting.
        gpu_quota: Maximum concurrently alive GPU servers per
            ``(region, GPU)`` pair.
    """

    def __init__(self, simulator: Simulator,
                 streams: Optional[RandomStreams] = None,
                 startup_model: Optional[StartupTimeModel] = None,
                 revocation_model: Optional[RevocationModel] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 gpu_quota: int = DEFAULT_GPU_QUOTA):
        if gpu_quota <= 0:
            raise ConfigurationError("gpu_quota must be positive")
        self.simulator = simulator
        self.streams = streams if streams is not None else RandomStreams(seed=0)
        self.startup_model = (startup_model if startup_model is not None
                              else StartupTimeModel(rng=self.streams.get("startup")))
        self.revocation_model = (revocation_model if revocation_model is not None
                                 else RevocationModel(rng=self.streams.get("revocation")))
        self.prices = price_catalog if price_catalog is not None else default_price_catalog()
        self.gpu_quota = gpu_quota
        self._instances: Dict[str, CloudInstance] = {}
        self._id_counter = itertools.count()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def instances(self) -> List[CloudInstance]:
        """All instances ever requested, in request order."""
        return list(self._instances.values())

    def get_instance(self, instance_id: str) -> CloudInstance:
        """Look up an instance by identifier."""
        try:
            return self._instances[instance_id]
        except KeyError:
            raise InstanceStateError(f"unknown instance {instance_id!r}") from None

    def alive_instances(self, region_name: Optional[str] = None,
                        gpu_name: Optional[str] = None) -> List[CloudInstance]:
        """Instances that have not been revoked or terminated."""
        result = []
        for instance in self._instances.values():
            if not instance.is_alive:
                continue
            if region_name is not None and instance.region_name != region_name:
                continue
            if gpu_name is not None and instance.gpu_name != gpu_name:
                continue
            result.append(instance)
        return result

    def _check_quota(self, region_name: str, machine: MachineType) -> None:
        if not machine.has_gpu or machine.gpu_name is None:
            return
        alive = self.alive_instances(region_name=region_name, gpu_name=machine.gpu_name)
        if len(alive) >= self.gpu_quota:
            raise CapacityError(
                f"quota of {self.gpu_quota} {machine.gpu_name} servers reached "
                f"in {region_name}")

    # ------------------------------------------------------------------
    # Requests.
    # ------------------------------------------------------------------
    def request_instance(self, request: InstanceRequest) -> CloudInstance:
        """Request a server and schedule its startup (and revocation).

        Returns:
            The new :class:`CloudInstance`, initially in the REQUESTED state.

        Raises:
            CapacityError: If the per-(region, GPU) quota is exhausted.
            ConfigurationError: If the region does not offer the GPU type.
        """
        region = get_region(request.region_name)
        if request.machine.has_gpu and request.machine.gpu_name is not None:
            get_gpu(request.machine.gpu_name)
            if not region.offers(request.machine.gpu_name):
                raise ConfigurationError(
                    f"region {region.name!r} does not offer {request.machine.gpu_name!r}")
        self._check_quota(region.name, request.machine)

        transient = request.server_class.is_transient
        gpu_name = request.machine.gpu_name or "k80"
        startup = self.startup_model.sample(gpu_name, transient, region.name)
        instance = CloudInstance(
            instance_id=f"i-{next(self._id_counter):06d}",
            region_name=region.name,
            machine=request.machine,
            server_class=request.server_class,
            requested_at=self.simulator.now,
            startup=startup,
            labels=dict(request.labels),
        )
        self._instances[instance.instance_id] = instance
        self._schedule_startup(instance, request)
        return instance

    def _schedule_startup(self, instance: CloudInstance, request: InstanceRequest) -> None:
        """Walk the instance through provisioning, staging, booting, running."""
        stages = instance.startup

        def enter_provisioning(_sim: Simulator) -> None:
            if instance.is_alive:
                instance.transition(InstanceState.PROVISIONING, self.simulator.now)

        def enter_staging(_sim: Simulator) -> None:
            if instance.is_alive:
                instance.transition(InstanceState.STAGING, self.simulator.now)

        def enter_booting(_sim: Simulator) -> None:
            if instance.is_alive:
                instance.transition(InstanceState.BOOTING, self.simulator.now)

        def enter_running(_sim: Simulator) -> None:
            if not instance.is_alive:
                return
            instance.transition(InstanceState.RUNNING, self.simulator.now)
            if instance.is_transient:
                self._schedule_revocation(instance, request)
            if request.on_running is not None:
                request.on_running(instance)

        self.simulator.schedule(0.0, enter_provisioning,
                                label=f"{instance.instance_id}:provisioning")
        self.simulator.schedule(stages.provisioning, enter_staging,
                                label=f"{instance.instance_id}:staging")
        self.simulator.schedule(stages.provisioning + stages.staging, enter_booting,
                                label=f"{instance.instance_id}:booting")
        self.simulator.schedule(stages.total, enter_running,
                                label=f"{instance.instance_id}:running")

    def _schedule_revocation(self, instance: CloudInstance,
                             request: InstanceRequest) -> None:
        """Schedule the (possible) revocation of a running transient server."""
        region = get_region(instance.region_name)
        launch_hour_local = region.local_hour(self.simulator.hour_of_day_utc())
        outcome = self.revocation_model.sample(
            instance.gpu_name or "k80", instance.region_name,
            launch_hour_local=launch_hour_local,
            stressed=instance.labels.get("workload", "idle") != "idle")
        instance.labels["planned_lifetime_hours"] = f"{outcome.lifetime_hours:.3f}"

        def revoke(_sim: Simulator) -> None:
            if not instance.is_alive:
                return
            instance.transition(InstanceState.REVOKED, self.simulator.now)
            if request.on_revoked is not None:
                request.on_revoked(instance)

        # Both revocations and the 24-hour maximum lifetime terminate the
        # server; surviving servers are reclaimed at exactly 24 hours.
        self.simulator.schedule(outcome.lifetime_seconds, revoke,
                                label=f"{instance.instance_id}:revocation")

    # ------------------------------------------------------------------
    # Termination and billing.
    # ------------------------------------------------------------------
    def terminate_instance(self, instance_id: str) -> None:
        """Terminate an instance at the current simulation time."""
        instance = self.get_instance(instance_id)
        if instance.is_alive:
            instance.transition(InstanceState.TERMINATED, self.simulator.now)

    def terminate_all(self) -> None:
        """Terminate every instance that is still alive."""
        for instance in self._instances.values():
            if instance.is_alive:
                instance.transition(InstanceState.TERMINATED, self.simulator.now)

    def instance_cost(self, instance_id: str) -> float:
        """Cost in USD accrued by one instance so far."""
        instance = self.get_instance(instance_id)
        duration = instance.billed_duration(self.simulator.now)
        return self.prices.cost(instance.machine, instance.is_transient, duration)

    def total_cost(self) -> float:
        """Total cost in USD accrued by all instances so far."""
        return sum(self.instance_cost(instance_id) for instance_id in self._instances)

    def cost_breakdown(self) -> Dict[Tuple[str, str], float]:
        """Cost grouped by ``(region, server class)``."""
        breakdown: Dict[Tuple[str, str], float] = {}
        for instance_id, instance in self._instances.items():
            key = (instance.region_name, instance.server_class.value)
            breakdown[key] = breakdown.get(key, 0.0) + self.instance_cost(instance_id)
        return breakdown
