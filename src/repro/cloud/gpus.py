"""GPU catalog.

The paper uses the three GPU types Google Cloud offered for training at the
time of the study: Nvidia Tesla K80, P100, and V100 (PCIe variants).  The
catalog records the attributes the paper relies on: computational capacity
in teraflops (the ``Cgpu`` regression feature) and device memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import UnknownGPUError


@dataclass(frozen=True)
class GPUType:
    """A GPU hardware type offered by the simulated cloud.

    Attributes:
        name: Short name used throughout the library (``"k80"``).
        marketing_name: Vendor name (``"Nvidia Tesla K80"``).
        teraflops: Single-precision computational capacity in teraflops;
            the paper's ``Cgpu`` feature.
        memory_gb: Device memory in GB.
        interconnect: Host interconnect (all PCIe in the study).
    """

    name: str
    marketing_name: str
    teraflops: float
    memory_gb: int
    interconnect: str = "pcie"

    @property
    def flops(self) -> float:
        """Computational capacity in FLOPS."""
        return self.teraflops * 1e12

    def fits_model(self, parameter_bytes: int, activation_multiplier: float = 8.0) -> bool:
        """Rough check that a model (plus activations) fits in device memory.

        The asynchronous parameter-server architecture studied by the paper
        targets models that fit into a single discrete GPU; this helper lets
        callers validate that assumption.

        Args:
            parameter_bytes: Raw parameter size of the model.
            activation_multiplier: Memory headroom factor covering
                activations, gradients, and workspace.
        """
        needed = parameter_bytes * activation_multiplier
        return needed <= self.memory_gb * 1024 ** 3


#: The three GPU types used in the paper (Section III-A).
GPU_CATALOG: Dict[str, GPUType] = {
    "k80": GPUType(name="k80", marketing_name="Nvidia Tesla K80",
                   teraflops=4.11, memory_gb=12),
    "p100": GPUType(name="p100", marketing_name="Nvidia Tesla P100",
                    teraflops=9.53, memory_gb=16),
    "v100": GPUType(name="v100", marketing_name="Nvidia Tesla V100",
                    teraflops=14.13, memory_gb=16),
}


def get_gpu(name: str) -> GPUType:
    """Look up a GPU type by name (case-insensitive).

    Raises:
        UnknownGPUError: If the name is not in the catalog.
    """
    key = name.lower()
    if key not in GPU_CATALOG:
        raise UnknownGPUError(name, known=tuple(GPU_CATALOG))
    return GPU_CATALOG[key]


def list_gpus() -> List[GPUType]:
    """All GPU types, ordered from least to most powerful."""
    return sorted(GPU_CATALOG.values(), key=lambda gpu: gpu.teraflops)
