"""Cloud instance lifecycle.

A :class:`CloudInstance` tracks one VM through the states of the Google
Cloud instance life cycle used by the paper's startup measurements:
``REQUESTED -> PROVISIONING -> STAGING -> BOOTING -> RUNNING`` and finally
``REVOKED`` (transient servers only) or ``TERMINATED`` (user-initiated).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cloud.machines import MachineType
from repro.cloud.startup import StartupStages
from repro.errors import InstanceStateError


class ServerClass(enum.Enum):
    """Billing/availability class of a server."""

    ON_DEMAND = "on_demand"
    TRANSIENT = "transient"

    @property
    def is_transient(self) -> bool:
        """True for preemptible (revocable) servers."""
        return self is ServerClass.TRANSIENT


class InstanceState(enum.Enum):
    """Lifecycle states of a cloud instance."""

    REQUESTED = "requested"
    PROVISIONING = "provisioning"
    STAGING = "staging"
    BOOTING = "booting"
    RUNNING = "running"
    REVOKED = "revoked"
    TERMINATED = "terminated"


#: Legal state transitions.
_TRANSITIONS = {
    InstanceState.REQUESTED: {InstanceState.PROVISIONING, InstanceState.TERMINATED},
    InstanceState.PROVISIONING: {InstanceState.STAGING, InstanceState.TERMINATED,
                                 InstanceState.REVOKED},
    InstanceState.STAGING: {InstanceState.BOOTING, InstanceState.TERMINATED,
                            InstanceState.REVOKED},
    InstanceState.BOOTING: {InstanceState.RUNNING, InstanceState.TERMINATED,
                            InstanceState.REVOKED},
    InstanceState.RUNNING: {InstanceState.REVOKED, InstanceState.TERMINATED},
    InstanceState.REVOKED: set(),
    InstanceState.TERMINATED: set(),
}


@dataclass
class CloudInstance:
    """One simulated VM.

    Attributes:
        instance_id: Provider-assigned identifier.
        region_name: Region the instance runs in.
        machine: VM shape (CPU/memory/GPU).
        server_class: On-demand or transient.
        requested_at: Simulation time of the request.
        startup: Sampled startup-stage durations.
        state: Current lifecycle state.
        state_times: Simulation time at which each state was entered.
        labels: Free-form labels (e.g. the training role: ``worker``,
            ``chief``, ``ps``).
    """

    instance_id: str
    region_name: str
    machine: MachineType
    server_class: ServerClass
    requested_at: float
    startup: StartupStages
    state: InstanceState = InstanceState.REQUESTED
    state_times: Dict[InstanceState, float] = field(default_factory=dict)
    labels: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.state_times.setdefault(InstanceState.REQUESTED, self.requested_at)

    # ------------------------------------------------------------------
    # Convenience properties.
    # ------------------------------------------------------------------
    @property
    def is_transient(self) -> bool:
        """Whether the server can be revoked by the provider."""
        return self.server_class.is_transient

    @property
    def gpu_name(self) -> Optional[str]:
        """Name of the attached GPU type, if any."""
        return self.machine.gpu_name

    @property
    def is_running(self) -> bool:
        """Whether the instance is currently in the RUNNING state."""
        return self.state is InstanceState.RUNNING

    @property
    def is_alive(self) -> bool:
        """Whether the instance has not yet been revoked or terminated."""
        return self.state not in (InstanceState.REVOKED, InstanceState.TERMINATED)

    # ------------------------------------------------------------------
    # State machine.
    # ------------------------------------------------------------------
    def transition(self, new_state: InstanceState, at_time: float) -> None:
        """Move to ``new_state`` at simulation time ``at_time``.

        Raises:
            InstanceStateError: If the transition is not legal.
        """
        if new_state not in _TRANSITIONS[self.state]:
            raise InstanceStateError(
                f"instance {self.instance_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state
        self.state_times[new_state] = at_time

    def running_since(self) -> Optional[float]:
        """Simulation time at which the instance entered RUNNING, if ever."""
        return self.state_times.get(InstanceState.RUNNING)

    def end_time(self) -> Optional[float]:
        """Simulation time at which the instance was revoked or terminated."""
        for terminal in (InstanceState.REVOKED, InstanceState.TERMINATED):
            if terminal in self.state_times:
                return self.state_times[terminal]
        return None

    def startup_duration(self) -> float:
        """Total startup time (request to running) in seconds."""
        return self.startup.total

    def uptime(self, now: float) -> float:
        """Seconds spent in the RUNNING state up to ``now``."""
        start = self.running_since()
        if start is None:
            return 0.0
        end = self.end_time()
        effective_end = min(now, end) if end is not None else now
        return max(0.0, effective_end - start)

    def billed_duration(self, now: float) -> float:
        """Seconds billed: from provisioning start until termination/now."""
        start = self.state_times.get(InstanceState.PROVISIONING)
        if start is None:
            return 0.0
        end = self.end_time()
        effective_end = min(now, end) if end is not None else now
        return max(0.0, effective_end - start)
