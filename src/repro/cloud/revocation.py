"""Transient-server revocation model.

Google preemptible VMs can be revoked at any time and have a maximum
lifetime of 24 hours.  The paper launches 396 transient GPU servers across
six regions over twelve non-consecutive days and observes (Section V-C):

* revocation frequency depends on region and GPU type (Table V),
* lifetime distributions differ sharply between regions (Fig. 8) — e.g.
  more than half of europe-west1 K80 servers are revoked within two hours
  while fewer than 5% of us-west1 K80 servers are,
* revocations cluster at particular local hours of the day (Fig. 9), and
* the server's workload (idle vs. stressed) does not affect revocations.

This module provides a calibrated generative model with those properties.
For each ``(GPU, region)`` pair, the probability of revocation within the
24-hour maximum lifetime matches Table V, and the conditional revocation
time follows a truncated Weibull distribution whose shape/scale reproduce
the qualitative CDFs of Fig. 8.  Hour-of-day preferences are applied by
importance resampling among candidate revocation times, which preserves the
marginal lifetime distribution while concentrating revocations at the
paper's observed local hours.

Sampling is batched through numpy: the candidate lifetimes of one draw
come from a single vectorized ``Generator.uniform`` call and the
hourly-weight resampling from one vectorized weight gather, consuming the
underlying bit stream exactly like the scalar draws they replaced
(``tests/test_cloud_revocation.py`` pins the draw-order contract with a
golden reimplementation of the scalar loop).  Per-cell calibration
lookups, truncation quantiles, and weight tables are memoized, so
fleet-scale callers (:meth:`RevocationModel.sample_batch`,
:meth:`RevocationModel.mean_time_to_revocation`, the launch advisor)
spend their time in the RNG, not in Python bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.errors import ConfigurationError
from repro.units import hour_bins, wrap_hour

#: Maximum lifetime of a transient (preemptible) server, in hours.
MAX_TRANSIENT_LIFETIME_HOURS = 24.0


@dataclass(frozen=True)
class RevocationCellParams:
    """Calibrated revocation parameters for one ``(GPU, region)`` pair.

    Attributes:
        p_revoke_24h: Probability the server is revoked before the 24-hour
            maximum lifetime (Table V).
        weibull_shape: Shape of the conditional time-to-revocation Weibull.
        weibull_scale_hours: Scale (hours) of the conditional Weibull.
    """

    p_revoke_24h: float
    weibull_shape: float
    weibull_scale_hours: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_revoke_24h <= 1.0:
            raise ConfigurationError("p_revoke_24h must be a probability")
        if self.weibull_shape <= 0 or self.weibull_scale_hours <= 0:
            raise ConfigurationError("Weibull parameters must be positive")


#: Calibrated parameters for every ``(gpu, region)`` cell of Table V.
#: ``p_revoke_24h`` matches the table exactly; shapes/scales are chosen so
#: the lifetime CDFs reproduce the Fig. 8 narrative (fast-dying europe-west1
#: K80s, long-lived us-west1 K80s, short-lived V100s, ...).
REVOCATION_CALIBRATION: Dict[Tuple[str, str], RevocationCellParams] = {
    # K80.
    ("k80", "us-east1"): RevocationCellParams(0.4667, 1.2, 12.0),
    ("k80", "us-central1"): RevocationCellParams(0.5625, 1.4, 16.0),
    ("k80", "us-west1"): RevocationCellParams(0.2292, 1.6, 15.0),
    ("k80", "europe-west1"): RevocationCellParams(0.6667, 0.70, 1.2),
    # P100.
    ("p100", "us-east1"): RevocationCellParams(0.70, 1.0, 8.0),
    ("p100", "us-central1"): RevocationCellParams(0.5333, 1.2, 10.0),
    ("p100", "us-west1"): RevocationCellParams(0.6667, 1.0, 7.0),
    ("p100", "europe-west1"): RevocationCellParams(0.2667, 1.4, 14.0),
    # V100.
    ("v100", "us-central1"): RevocationCellParams(0.6667, 1.0, 7.0),
    ("v100", "us-west1"): RevocationCellParams(0.7333, 0.9, 6.0),
    ("v100", "europe-west4"): RevocationCellParams(0.43, 1.2, 10.0),
    ("v100", "asia-east1"): RevocationCellParams(0.47, 1.2, 11.0),
}

#: Hour-of-day revocation intensity profiles (24 weights, local time) per
#: GPU type (Fig. 9): K80 revocations peak at 10 AM; V100 revocations do not
#: occur between 4 PM and 8 PM; P100 shows two moderate peaks.
HOURLY_REVOCATION_WEIGHTS: Dict[str, Tuple[float, ...]] = {
    "k80": (0.6, 0.5, 0.5, 0.5, 0.6, 0.7, 0.9, 1.2, 1.8, 2.4, 3.2, 2.2,
            1.6, 1.3, 1.2, 1.1, 1.0, 1.0, 0.9, 0.9, 0.8, 0.7, 0.6, 0.6),
    "p100": (0.7, 0.6, 0.6, 0.6, 0.7, 0.8, 1.0, 1.4, 2.0, 1.8, 1.4, 1.2,
             1.2, 1.6, 2.0, 1.6, 1.2, 1.0, 0.9, 0.8, 0.8, 0.7, 0.7, 0.7),
    "v100": (0.8, 0.7, 0.7, 0.8, 0.9, 1.0, 1.3, 1.8, 2.2, 1.8, 1.4, 1.2,
             1.0, 0.9, 0.8, 0.6, 0.0, 0.0, 0.0, 0.0, 0.8, 0.9, 0.8, 0.8),
}


@dataclass(frozen=True)
class RevocationOutcome:
    """The fate of one launched transient server.

    Attributes:
        revoked: Whether the server was revoked before the 24-hour cutoff.
        lifetime_hours: Observed lifetime in hours (24.0 when it survived).
        revocation_hour_local: Local hour-of-day at which the revocation
            occurred, or ``None`` when the server survived.
    """

    revoked: bool
    lifetime_hours: float
    revocation_hour_local: Optional[float]

    @property
    def lifetime_seconds(self) -> float:
        """Lifetime in seconds."""
        return self.lifetime_hours * 3600.0


class RevocationModel:
    """Calibrated generative model of transient-server revocations.

    Args:
        rng: Random generator used for sampling.
        calibration: Optional override of the per-cell calibration table.
        hourly_weights: Optional override of the hour-of-day profiles.
        candidates: Number of candidate revocation times drawn for the
            hour-of-day importance resampling step.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 calibration: Optional[Dict[Tuple[str, str], RevocationCellParams]] = None,
                 hourly_weights: Optional[Dict[str, Sequence[float]]] = None,
                 candidates: int = 8):
        if candidates < 1:
            raise ConfigurationError("candidates must be >= 1")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._calibration = dict(calibration or REVOCATION_CALIBRATION)
        self._hourly_weights = {name: tuple(weights) for name, weights in
                                (hourly_weights or HOURLY_REVOCATION_WEIGHTS).items()}
        self._candidates = candidates
        #: Memoized per-cell sampling state: ``(params, cap_quantile,
        #: inv_shape, scale, p_revoke, weights_array)`` keyed by the raw
        #: ``(gpu_name, region_name)`` the caller used.
        self._cell_cache: Dict[Tuple[str, str],
                               Tuple[RevocationCellParams, float, float,
                                     float, float, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Calibration lookups.
    # ------------------------------------------------------------------
    def params_for(self, gpu_name: str, region_name: str) -> RevocationCellParams:
        """Calibrated parameters for a ``(GPU, region)`` cell.

        Raises:
            ConfigurationError: If the combination is not offered (the
                ``N/A`` cells of Table V).
        """
        gpu = get_gpu(gpu_name)
        region = get_region(region_name)
        key = (gpu.name, region.name)
        if key not in self._calibration:
            raise ConfigurationError(
                f"GPU {gpu.name!r} is not offered as a transient server in {region.name!r}")
        return self._calibration[key]

    def available_cells(self) -> Sequence[Tuple[str, str]]:
        """All calibrated ``(gpu, region)`` combinations."""
        return tuple(sorted(self._calibration))

    def hourly_weights(self, gpu_name: str) -> Tuple[float, ...]:
        """The 24-hour local-time revocation intensity profile for a GPU."""
        gpu = get_gpu(gpu_name)
        return self._hourly_weights[gpu.name]

    # ------------------------------------------------------------------
    # Analytic distribution functions (used by the prediction models).
    # ------------------------------------------------------------------
    def revocation_probability(self, gpu_name: str, region_name: str,
                               duration_hours: float) -> float:
        """Probability a server is revoked within ``duration_hours``.

        This is the model-side counterpart of querying the empirical CDFs of
        Fig. 8, used by the expected-revocation term of Eq. (5).
        """
        if duration_hours <= 0:
            return 0.0
        params = self.params_for(gpu_name, region_name)
        horizon = min(duration_hours, MAX_TRANSIENT_LIFETIME_HOURS)
        # CDF of the truncated Weibull at the horizon.
        shape, scale = params.weibull_shape, params.weibull_scale_hours
        raw = 1.0 - np.exp(-((horizon / scale) ** shape))
        raw_at_max = 1.0 - np.exp(-((MAX_TRANSIENT_LIFETIME_HOURS / scale) ** shape))
        conditional = raw / raw_at_max if raw_at_max > 0 else 1.0
        return float(params.p_revoke_24h * min(1.0, conditional))

    def lifetime_cdf(self, gpu_name: str, region_name: str,
                     hours: Sequence[float]) -> np.ndarray:
        """Lifetime CDF values at the given hour grid (Fig. 8, model side)."""
        return np.array([self.revocation_probability(gpu_name, region_name, h)
                         for h in hours])

    def mean_time_to_revocation(self, gpu_name: str, region_name: str,
                                samples: int = 4000,
                                rng: Optional[np.random.Generator] = None) -> float:
        """Monte-Carlo mean lifetime in hours (survivors count as 24 h).

        The expected-lifetime estimate behind the advisor-facing callers
        (e.g. :mod:`repro.modeling.launch_advisor`); the draws go through
        the batched sampler, so the same seeds give the same estimate as
        the scalar loop this replaced, faster.
        """
        generator = rng if rng is not None else np.random.default_rng(12345)
        model = RevocationModel(rng=generator, calibration=self._calibration,
                                hourly_weights=self._hourly_weights,
                                candidates=self._candidates)
        outcomes = model.sample_batch(gpu_name, region_name, samples)
        lifetimes = np.fromiter((outcome.lifetime_hours for outcome in outcomes),
                                dtype=np.float64, count=samples)
        return float(lifetimes.mean())

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def _sample_conditional_lifetime(self, params: RevocationCellParams) -> float:
        """Sample a revocation time (hours) conditional on revocation."""
        shape, scale = params.weibull_shape, params.weibull_scale_hours
        # Inverse-CDF sampling of the Weibull truncated to the 24-hour cap.
        cap_quantile = 1.0 - np.exp(-((MAX_TRANSIENT_LIFETIME_HOURS / scale) ** shape))
        uniform = self._rng.uniform(0.0, cap_quantile)
        return float(scale * (-np.log(1.0 - uniform)) ** (1.0 / shape))

    def _cell_state(self, gpu_name: str, region_name: str):
        """Memoized per-cell sampling state (see ``_cell_cache``)."""
        key = (gpu_name, region_name)
        state = self._cell_cache.get(key)
        if state is None:
            gpu = get_gpu(gpu_name)
            params = self.params_for(gpu_name, region_name)
            shape, scale = params.weibull_shape, params.weibull_scale_hours
            cap_quantile = 1.0 - np.exp(
                -((MAX_TRANSIENT_LIFETIME_HOURS / scale) ** shape))
            weights = np.asarray(self._hourly_weights[gpu.name],
                                 dtype=np.float64)
            state = (params, cap_quantile, 1.0 / shape, scale,
                     params.p_revoke_24h, weights)
            self._cell_cache[key] = state
        return state

    def sample(self, gpu_name: str, region_name: str,
               launch_hour_local: float = 0.0,
               stressed: bool = False) -> RevocationOutcome:
        """Sample the fate of one launched transient server.

        The candidate lifetimes come from one vectorized uniform draw and
        the hour-of-day weights from one vectorized gather; the RNG stream
        consumption and the resulting outcome are identical to the scalar
        candidate loop this replaced (``tests/test_cloud_revocation.py``
        pins the equivalence golden against a scalar reimplementation).

        Args:
            gpu_name: GPU type of the server.
            region_name: Region in which the server is launched.
            launch_hour_local: Local hour-of-day at launch time; used to
                place the revocation at a local wall-clock hour.
            stressed: Whether the server runs a training workload.  Ignored
                by design — the paper finds workload does not affect
                revocation likelihood — but accepted so callers can record
                the grouping.
        """
        del stressed  # Workload does not influence revocations (Section V-C).
        (_params, cap_quantile, inv_shape, scale, p_revoke,
         weights) = self._cell_state(gpu_name, region_name)
        launch_hour_local = wrap_hour(launch_hour_local)
        if self._rng.uniform() >= p_revoke:
            return RevocationOutcome(revoked=False,
                                     lifetime_hours=MAX_TRANSIENT_LIFETIME_HOURS,
                                     revocation_hour_local=None)

        # One array draw == the old per-candidate scalar draws (numpy fills
        # uniform arrays element-wise from the same bit stream).  The
        # inverse-CDF transform stays scalar on purpose: numpy's SIMD array
        # log/pow kernels differ from the scalar ones by an ulp, and the
        # sampled lifetimes are pinned bit-for-bit against the scalar loop.
        uniforms = self._rng.uniform(0.0, cap_quantile, size=self._candidates)
        candidates = [float(scale * (-np.log(1.0 - u)) ** inv_shape)
                      for u in uniforms.tolist()]
        candidate_weights = weights[hour_bins(
            launch_hour_local + np.asarray(candidates))] + 1e-9
        probabilities = candidate_weights / candidate_weights.sum()
        chosen = candidates[
            int(self._rng.choice(self._candidates, p=probabilities))]
        revocation_hour = wrap_hour(launch_hour_local + chosen)
        return RevocationOutcome(revoked=True, lifetime_hours=chosen,
                                 revocation_hour_local=float(revocation_hour))

    def sample_batch(self, gpu_name: str, region_name: str, count: int,
                     launch_hour_local: float = 0.0,
                     stressed: bool = False) -> Tuple[RevocationOutcome, ...]:
        """Sample the fates of ``count`` servers launched together.

        Draw-order contract: the batch consumes the RNG stream exactly
        like ``count`` sequential :meth:`sample` calls, so batching a loop
        (as the fleet runner and the Monte-Carlo estimators do) never
        changes any outcome.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return tuple(self.sample(gpu_name, region_name,
                                 launch_hour_local=launch_hour_local,
                                 stressed=stressed)
                     for _ in range(count))
