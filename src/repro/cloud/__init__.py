"""Simulated cloud provider substrate.

The paper measures Google Cloud; this package replaces it with a simulated
provider offering the same observable surface:

* a **GPU catalog** (:mod:`repro.cloud.gpus`) with the three GPU types the
  paper uses (K80, P100, V100) and their computational capacity,
* a **region catalog** (:mod:`repro.cloud.regions`) with the six
  geographically distributed regions of the measurement study,
* **machine types and pricing** (:mod:`repro.cloud.machines`,
  :mod:`repro.cloud.pricing`) for on-demand and transient (preemptible)
  servers,
* a **startup-time model** (:mod:`repro.cloud.startup`) producing the
  provisioning / staging / booting breakdown of Fig. 6 and Fig. 7,
* a **revocation model** (:mod:`repro.cloud.revocation`) calibrated to the
  per-region revocation rates, lifetime CDFs, and time-of-day patterns of
  Table V and Figs. 8-9,
* an **instance lifecycle** and a **provider front end**
  (:mod:`repro.cloud.instance`, :mod:`repro.cloud.provider`) that the
  training simulator and the CM-DARE resource manager drive, and
* a **cloud storage** model (:mod:`repro.cloud.storage`) used for
  checkpoints.
"""

from repro.cloud.gpus import GPU_CATALOG, GPUType, get_gpu, list_gpus
from repro.cloud.regions import REGION_CATALOG, Region, get_region, list_regions
from repro.cloud.machines import MachineType, PARAMETER_SERVER_MACHINE, GPU_WORKER_MACHINE
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.cloud.startup import StartupStages, StartupTimeModel
from repro.cloud.revocation import RevocationModel, RevocationOutcome
from repro.cloud.instance import CloudInstance, InstanceState, ServerClass
from repro.cloud.provider import InstanceRequest, SimulatedCloudProvider
from repro.cloud.storage import CloudStorage, StorageObject

__all__ = [
    "GPU_CATALOG",
    "GPUType",
    "get_gpu",
    "list_gpus",
    "REGION_CATALOG",
    "Region",
    "get_region",
    "list_regions",
    "MachineType",
    "PARAMETER_SERVER_MACHINE",
    "GPU_WORKER_MACHINE",
    "PriceCatalog",
    "default_price_catalog",
    "StartupStages",
    "StartupTimeModel",
    "RevocationModel",
    "RevocationOutcome",
    "CloudInstance",
    "InstanceState",
    "ServerClass",
    "InstanceRequest",
    "SimulatedCloudProvider",
    "CloudStorage",
    "StorageObject",
]
