"""Shared command-line plumbing for the repro front ends.

``repro-sweeps``, ``repro-scenarios``, and ``repro-serve`` present the
same surface where they overlap: the ``--workers`` / ``--cache-dir`` /
``--seed`` / ``--json`` flags of the ``run`` / ``resume`` subcommands, the
"resume requires a cache" check, and the exit-code conventions (0 for a
broken pipe so ``| head`` stays clean, 1 with an ``error:`` line for any
:class:`~repro.errors.ReproError`).  This module is the single home of
that plumbing, so the front ends cannot drift apart flag by flag.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Callable

from repro.errors import ReproError
from repro.sweeps.runner import parse_workers

#: Environment default for ``--workers`` (matching the benchmark harness).
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def parse_workers_arg(text: str):
    """Argparse type for ``--workers``: an integer, or ``auto``.

    Wraps :func:`repro.sweeps.runner.parse_workers` so every front end
    accepts and rejects exactly the same values with the same message.
    """
    try:
        return parse_workers(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers expects a non-negative integer or 'auto' (got {text!r})")


def default_workers() -> str:
    """The ``--workers`` default: ``REPRO_SWEEP_WORKERS`` or ``"1"``."""
    return os.environ.get(SWEEP_WORKERS_ENV, "") or "1"


def add_run_resume_arguments(sub: argparse.ArgumentParser, *,
                             name_help: str,
                             workers_default: str = "1",
                             workers_help: str = ("worker processes, or "
                                                  "'auto' to size from the "
                                                  "CPU count (default: 1, "
                                                  "serial)"),
                             cache_help: str = ("directory for the per-cell "
                                                "JSON result cache"),
                             json_help: str = ("also write payloads to a "
                                               "JSON file")) -> None:
    """Attach the shared ``run`` / ``resume`` flags to a subparser."""
    sub.add_argument("name", help=name_help)
    sub.add_argument("--workers", type=parse_workers_arg,
                     default=parse_workers_arg(workers_default),
                     help=workers_help)
    sub.add_argument("--cache-dir", default=None, help=cache_help)
    sub.add_argument("--seed", type=int, default=0, help="root RNG seed")
    sub.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                     help=json_help)


def resume_requires_cache(args: argparse.Namespace) -> bool:
    """True (after printing the usage error) when ``resume`` lacks a cache."""
    if args.command == "resume" and args.cache_dir is None:
        print("resume requires --cache-dir", file=sys.stderr)
        return True
    return False


def write_json_out(path: str, document: Any, count: int, what: str) -> None:
    """Write a CLI's ``--json`` document and print the confirmation line."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {count} {what} to {path}")


def run_cli(body: Callable[[], int]) -> int:
    """Run a CLI body under the shared exit-code conventions.

    ``BrokenPipeError`` (output piped to a consumer that closed early,
    e.g. ``| head``) exits 0; any :class:`~repro.errors.ReproError` prints
    an ``error:`` line and exits 1.
    """
    try:
        return body()
    except BrokenPipeError:
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
