"""Deterministic fault injection for the distributed runtime.

The chaos harness turns "does the system survive a crash?" from folklore
into a pinned contract: a :class:`FaultPlan` names exactly which process
dies (or which reply is dropped, which connection is reset, which export
is truncated) at exactly which point, so every chaos run is reproducible
and the bit-identity oracles the repo already pins — golden fleet
fixtures, payload-identity CI gates — verify that recovery is *exact*,
not merely eventually consistent.

Activation: set ``REPRO_CHAOS`` to a fault spec (or pass ``--chaos`` to
``repro-scenarios run``) and the injection sites across
:mod:`repro.scenarios.shard`, :mod:`repro.serve.transport`,
:mod:`repro.sweeps.runner`, and :mod:`repro.telemetry.writer` consult the
plan; without the variable every site is a no-op costing one ``None``
check.  Injected faults (and the recoveries they trigger) are appended as
JSON lines to ``REPRO_CHAOS_LOG`` when that is set, which is the artifact
the CI chaos-smoke job uploads.

See :mod:`repro.chaos.plan` for the spec grammar and the fault kinds.
"""

from repro.chaos.plan import (
    CHAOS_ENV,
    CHAOS_INCARNATION_ENV,
    CHAOS_LOG_ENV,
    FAULT_KINDS,
    ChaosMonitor,
    Fault,
    FaultPlan,
    active_plan,
    chaos_exit,
    log_event,
    worker_incarnation,
)

__all__ = [
    "CHAOS_ENV",
    "CHAOS_INCARNATION_ENV",
    "CHAOS_LOG_ENV",
    "FAULT_KINDS",
    "ChaosMonitor",
    "Fault",
    "FaultPlan",
    "active_plan",
    "chaos_exit",
    "log_event",
    "worker_incarnation",
]
