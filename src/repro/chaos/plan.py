"""Fault plans: what to break, where, and exactly when.

A :class:`FaultPlan` is a tuple of :class:`Fault` entries plus a seed.
Each fault names an injection *site* (its ``kind``), an optional target
(``shard`` / ``cell``), a 1-based trigger count ``at`` (the nth event at
that site), and an ``incarnation`` — the spawn generation of the target
process, so a fault scheduled for incarnation 0 does **not** re-fire
after the supervisor restarts its victim (and a test *can* crash the
restarted process again by scheduling incarnation 1).

Fault kinds and their sites:

``shard_crash``
    The shard worker process calls ``os._exit`` immediately before
    sending its ``at``-th draw request (:mod:`repro.scenarios.shard`).
``drop_grant``
    The parent draw service executes the model calls for the shard's
    ``at``-th granted request — consuming the revocation stream and
    recording the grant in the replay log — but never sends the reply,
    wedging the shard until the heartbeat supervisor restarts it.
``serve_reset``
    The placement server closes a client connection without replying to
    the ``at``-th request line it receives
    (:mod:`repro.serve.transport`); retrying clients must converge.
``serve_hang``
    The server sleeps ``seconds`` (default far past any timeout) before
    dispatching the ``at``-th request, driving the per-request timeout.
``sweep_kill``
    A sweep worker process calls ``os._exit`` before executing the cell
    with index ``cell`` (:mod:`repro.sweeps.runner`), surfacing as a
    ``BrokenProcessPool`` the runner must retry.
``npz_truncate``
    The telemetry packer raises after writing the ``at``-th archive
    member (:mod:`repro.telemetry.writer.write_npz`), simulating a crash
    mid-export; the atomic-write contract keeps the artifact path clean.

The spec grammar (``REPRO_CHAOS`` / ``--chaos``) is ``;``-separated
entries, each ``kind`` or ``kind:key=value,key=value``, plus an optional
bare ``seed=N`` entry::

    REPRO_CHAOS="shard_crash:shard=0,at=2;shard_crash:shard=1,at=1"
    REPRO_CHAOS="serve_reset:at=1;serve_reset:at=3;seed=7"

Every injection appends a JSON line to the file named by
``REPRO_CHAOS_LOG`` (when set), so a chaos run leaves an auditable trace
of what was broken and what the supervisor did about it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable holding the active fault spec.
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable naming the JSON-lines injection log file.
CHAOS_LOG_ENV = "REPRO_CHAOS_LOG"

#: Environment variable carrying a pooled worker's spawn generation
#: (set by the sweep runner before each process-pool (re)creation, so
#: retried cells do not re-trigger incarnation-0 faults).
CHAOS_INCARNATION_ENV = "REPRO_CHAOS_INCARNATION"

#: Exit code chaos-killed processes die with (distinctive in logs).
CHAOS_EXIT_CODE = 37

#: Every fault kind the injection sites understand.
FAULT_KINDS = ("shard_crash", "drop_grant", "serve_reset", "serve_hang",
               "sweep_kill", "npz_truncate")

#: Default sleep for ``serve_hang`` — far past any sane request timeout.
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class Fault:
    """One scheduled fault (see the module docstring for the kinds)."""

    kind: str
    at: int = 1
    shard: Optional[int] = None
    cell: Optional[int] = None
    incarnation: int = 0
    seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        if self.at < 1:
            raise ConfigurationError(
                f"fault 'at' is 1-based and must be >= 1, got {self.at}")
        if self.incarnation < 0:
            raise ConfigurationError(
                f"fault incarnation must be >= 0, got {self.incarnation}")
        for name in ("shard", "cell"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(
                    f"fault {name} must be >= 0, got {value}")

    def matches(self, *, shard: Optional[int] = None,
                cell: Optional[int] = None, incarnation: int = 0) -> bool:
        """True when this fault targets the given site instance.

        An unset target field matches anything, so ``shard_crash:at=1``
        crashes *every* shard at its first draw; ``incarnation`` always
        compares exactly.
        """
        if self.shard is not None and self.shard != shard:
            return False
        if self.cell is not None and self.cell != cell:
            return False
        return self.incarnation == incarnation

    def to_entry(self) -> str:
        """This fault as one spec entry (``kind:key=value,...``)."""
        parts = []
        for field in fields(self):
            if field.name == "kind":
                continue
            value = getattr(self, field.name)
            default = field.default
            if value is None or value == default:
                continue
            parts.append(f"{field.name}={value:g}" if isinstance(value, float)
                         else f"{field.name}={value}")
        return self.kind if not parts else f"{self.kind}:{','.join(parts)}"


def _parse_entry(entry: str) -> Fault:
    kind, _, body = entry.partition(":")
    kind = kind.strip()
    params: Dict[str, Any] = {}
    if body.strip():
        for token in body.split(","):
            key, sep, raw = token.partition("=")
            key, raw = key.strip(), raw.strip()
            if not sep or not key or not raw:
                raise ConfigurationError(
                    f"malformed fault parameter {token!r} in {entry!r}; "
                    f"expected key=value")
            if key not in ("at", "shard", "cell", "incarnation", "seconds"):
                raise ConfigurationError(
                    f"unknown fault parameter {key!r} in {entry!r}")
            try:
                params[key] = float(raw) if key == "seconds" else int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"fault parameter {key!r} expects a number, got {raw!r}")
    return Fault(kind=kind, **params)


class FaultPlan:
    """An immutable, seeded schedule of faults.

    The seed is the determinism anchor for every randomized knob a chaos
    run touches — most visibly the retry jitter of
    :func:`repro.serve.transport.request_with_retry`, which derives its
    jitter stream from it — so two runs of the same plan make the same
    choices everywhere.
    """

    def __init__(self, faults: Tuple[Fault, ...] = (), seed: int = 0):
        self.faults = tuple(faults)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # Spec round trip.
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-separated fault spec (see the module docstring)."""
        faults: List[Fault] = []
        seed = 0
        for raw in str(text).split(";"):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[len("seed="):])
                except ValueError:
                    raise ConfigurationError(
                        f"chaos seed expects an integer, got {entry!r}")
                continue
            faults.append(_parse_entry(entry))
        if not faults:
            raise ConfigurationError(
                f"chaos spec {text!r} names no faults; expected entries "
                f"like 'shard_crash:shard=0,at=2'")
        return cls(tuple(faults), seed=seed)

    def to_spec(self) -> str:
        """The spec string :meth:`from_spec` parses back to this plan."""
        entries = [fault.to_entry() for fault in self.faults]
        if self.seed:
            entries.append(f"seed={self.seed}")
        return ";".join(entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_spec()!r})"

    # ------------------------------------------------------------------
    # Site queries.
    # ------------------------------------------------------------------
    def select(self, kind: str, *, shard: Optional[int] = None,
               cell: Optional[int] = None,
               incarnation: int = 0) -> Tuple[Fault, ...]:
        """Every fault of ``kind`` targeting the given site instance."""
        return tuple(fault for fault in self.faults
                     if fault.kind == kind
                     and fault.matches(shard=shard, cell=cell,
                                       incarnation=incarnation))

    def monitor(self, kind: str, *, shard: Optional[int] = None,
                cell: Optional[int] = None,
                incarnation: int = 0) -> "ChaosMonitor":
        """A counting monitor over the matching faults (fires each once)."""
        return ChaosMonitor(self.select(kind, shard=shard, cell=cell,
                                        incarnation=incarnation))


class ChaosMonitor:
    """Counts events at one injection site; fires each fault exactly once.

    ``tick()`` is called once per site event (a draw request, a grant, a
    request line, an archive member); it returns the fault whose ``at``
    equals the running count, or ``None``.  A monitor lives for one
    incarnation of one site instance, so restart-replayed processes get
    fresh counters — which is exactly why ``Fault.incarnation`` exists.
    """

    def __init__(self, faults: Tuple[Fault, ...] = ()):
        self._pending: List[Fault] = list(faults)
        self.count = 0

    def __bool__(self) -> bool:
        return bool(self._pending)

    def tick(self) -> Optional[Fault]:
        self.count += 1
        for fault in self._pending:
            if fault.at == self.count:
                self._pending.remove(fault)
                return fault
        return None


# ---------------------------------------------------------------------------
# Activation and logging.
# ---------------------------------------------------------------------------
_SPEC_CACHE: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``REPRO_CHAOS``, or ``None`` (the fast path).

    Parsed plans are cached by spec text, so injection sites can call
    this per event without re-parsing; an unset variable costs one dict
    lookup and returns ``None``.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return None
    plan = _SPEC_CACHE.get(spec)
    if plan is None:
        plan = FaultPlan.from_spec(spec)
        if len(_SPEC_CACHE) > 64:  # pragma: no cover - pathological churn
            _SPEC_CACHE.clear()
        _SPEC_CACHE[spec] = plan
    return plan


def worker_incarnation() -> int:
    """The pooled-worker spawn generation (``REPRO_CHAOS_INCARNATION``).

    The sweep runner exports the pool generation before every
    (re)creation; workers fold it into fault matching so a retried cell
    does not re-trigger the fault that killed its first attempt.
    """
    raw = os.environ.get(CHAOS_INCARNATION_ENV, "")
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


def log_event(event: str, **details: Any) -> None:
    """Append one JSON line to the ``REPRO_CHAOS_LOG`` file (if set).

    Both injections and the recoveries they provoke are logged, so the
    chaos artifact reads as a timeline: fault fired -> supervisor
    reacted.  Logging failures are swallowed — observability must never
    take down the run it observes.
    """
    path = os.environ.get(CHAOS_LOG_ENV)
    if not path:
        return
    record = {"event": event, "pid": os.getpid(),
              "wall_time": time.time()}
    record.update(details)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError:  # pragma: no cover - unwritable log path
        pass


def chaos_exit(fault: Fault, **details: Any) -> None:
    """Log an injected process kill, then die hard (``os._exit``).

    ``os._exit`` skips ``finally`` blocks and ``atexit`` hooks on
    purpose: an injected crash must look like SIGKILL-grade death to the
    supervisor (no error message, no clean pipe shutdown), or the test
    would exercise the polite failure path instead of the crash path.
    """
    log_event("injected_" + fault.kind, fault=fault.to_entry(), **details)
    sys.stderr.flush()
    os._exit(CHAOS_EXIT_CODE)
