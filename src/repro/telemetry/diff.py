"""Cell-by-cell comparison of two telemetry artifacts.

``repro-telemetry diff`` answers "did these two fleets record the same
telemetry, and if not, where do they disagree?" without materializing
either artifact: per-job step and draw tables are re-blocked into
aligned bounded slices (so two artifacts written with different
``chunk_rows`` still compare row by row), and each common job reports
its row-count deltas plus a per-column maximum absolute delta.  NaN
cells (draws that survived record NaN lifetimes) compare equal to NaN.

``exact=True`` additionally streams both files and asserts *byte*
identity — the sharded-export contract's oracle: two runs of the same
scenario, seed, and replicate must produce byte-equal artifacts no
matter how they were executed, so a self-diff exits clean and any
reseeded run does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.telemetry.reader import TelemetryReader
from repro.telemetry.writer import DRAW_COLUMNS, STEP_COLUMNS

#: Bytes per block when streaming the exact (byte-identity) comparison.
_BYTE_BLOCK = 1 << 20


@dataclass
class TableDiff:
    """One job's comparison for a single table kind (steps or draws)."""

    rows_a: int = 0
    rows_b: int = 0
    #: Per-column max |a - b| over the common row prefix; NaN == NaN.
    max_abs_delta: Dict[str, float] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return (self.rows_a == self.rows_b
                and all(value == 0.0 for value in self.max_abs_delta.values()))

    def to_document(self) -> Dict[str, Any]:
        return {"rows_a": self.rows_a, "rows_b": self.rows_b,
                "max_abs_delta": dict(self.max_abs_delta),
                "identical": self.identical}


@dataclass
class JobDiff:
    """Comparison of one job present in both artifacts."""

    rank: int
    steps: TableDiff = field(default_factory=TableDiff)
    draws: TableDiff = field(default_factory=TableDiff)
    workers_equal: bool = True

    @property
    def identical(self) -> bool:
        return (self.steps.identical and self.draws.identical
                and self.workers_equal)

    def to_document(self) -> Dict[str, Any]:
        return {"rank": self.rank, "steps": self.steps.to_document(),
                "draws": self.draws.to_document(),
                "workers_equal": self.workers_equal,
                "identical": self.identical}


@dataclass
class TelemetryDiff:
    """The full comparison of two artifacts."""

    path_a: str
    path_b: str
    added_jobs: List[int] = field(default_factory=list)
    removed_jobs: List[int] = field(default_factory=list)
    jobs: List[JobDiff] = field(default_factory=list)
    meta_equal: bool = True
    #: Only set when the diff ran in ``exact`` mode.
    byte_identical: Optional[bool] = None

    @property
    def identical(self) -> bool:
        """Cell-level identity (and byte identity when it was checked)."""
        cells = (not self.added_jobs and not self.removed_jobs
                 and self.meta_equal
                 and all(job.identical for job in self.jobs))
        if self.byte_identical is not None:
            return cells and self.byte_identical
        return cells

    def to_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "artifact_a": self.path_a,
            "artifact_b": self.path_b,
            "added_jobs": list(self.added_jobs),
            "removed_jobs": list(self.removed_jobs),
            "meta_equal": self.meta_equal,
            "jobs": [job.to_document() for job in self.jobs
                     if not job.identical],
            "jobs_compared": len(self.jobs),
            "identical": self.identical,
        }
        if self.byte_identical is not None:
            document["byte_identical"] = self.byte_identical
        return document

    def summary(self) -> str:
        """Human-readable one-screen summary."""
        lines = [f"diff {self.path_a} vs {self.path_b}"]
        if self.added_jobs:
            lines.append(f"  jobs only in B: {self.added_jobs}")
        if self.removed_jobs:
            lines.append(f"  jobs only in A: {self.removed_jobs}")
        if not self.meta_equal:
            lines.append("  meta documents differ")
        differing = [job for job in self.jobs if not job.identical]
        for job in differing:
            parts = []
            for kind, table in (("steps", job.steps), ("draws", job.draws)):
                if table.rows_a != table.rows_b:
                    parts.append(f"{kind} rows {table.rows_a} vs "
                                 f"{table.rows_b}")
                worst = {column: delta
                         for column, delta in table.max_abs_delta.items()
                         if delta != 0.0}
                if worst:
                    column, delta = max(worst.items(), key=lambda kv: kv[1])
                    parts.append(f"{kind} max|delta| {delta:.6g} ({column})")
            if not job.workers_equal:
                parts.append("worker registries differ")
            lines.append(f"  job {job.rank}: " + "; ".join(parts))
        if self.byte_identical is not None:
            lines.append(f"  byte identical: {self.byte_identical}")
        lines.append("  identical" if self.identical
                     else f"  {len(differing)} of {len(self.jobs)} "
                          "compared jobs differ")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Aligned streaming comparison.
# ---------------------------------------------------------------------------
def _aligned_blocks(chunks_a: Iterator[np.ndarray],
                    chunks_b: Iterator[np.ndarray]
                    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield equal-length row blocks from two chunk streams.

    The two artifacts may have been written with different ``chunk_rows``;
    this re-blocks both streams at their chunk-boundary intersections so
    memory stays bounded by one chunk of each.
    """
    buffer_a = buffer_b = None
    while True:
        if buffer_a is None or not len(buffer_a):
            buffer_a = next(chunks_a, None)
            if buffer_a is None:
                break
            continue
        if buffer_b is None or not len(buffer_b):
            buffer_b = next(chunks_b, None)
            if buffer_b is None:
                break
            continue
        take = min(len(buffer_a), len(buffer_b))
        yield buffer_a[:take], buffer_b[:take]
        buffer_a = buffer_a[take:]
        buffer_b = buffer_b[take:]


def _diff_tables(chunks_a: Iterator[np.ndarray],
                 chunks_b: Iterator[np.ndarray],
                 columns: Tuple[str, ...]) -> TableDiff:
    diff = TableDiff(max_abs_delta={column: 0.0 for column in columns})
    counted_a: List[int] = [0]
    counted_b: List[int] = [0]

    def count_stream(chunks, tally):
        for chunk in chunks:
            tally[0] += len(chunk)
            yield chunk

    stream_a = count_stream(chunks_a, counted_a)
    stream_b = count_stream(chunks_b, counted_b)
    for block_a, block_b in _aligned_blocks(stream_a, stream_b):
        delta = np.abs(block_a - block_b)
        # NaN in both cells means "same missing value": delta 0.  NaN in
        # exactly one cell is a real difference: delta inf.
        nan_a = np.isnan(block_a)
        nan_b = np.isnan(block_b)
        delta[nan_a & nan_b] = 0.0
        delta[nan_a ^ nan_b] = np.inf
        worst = delta.max(axis=0)
        for index, column in enumerate(columns):
            if worst[index] > diff.max_abs_delta[column]:
                diff.max_abs_delta[column] = float(worst[index])
    # Drain whatever one stream still holds so row counts are complete.
    for _ in stream_a:
        pass
    for _ in stream_b:
        pass
    diff.rows_a = counted_a[0]
    diff.rows_b = counted_b[0]
    return diff


def _bytes_equal(path_a: str, path_b: str) -> bool:
    """Stream both files in bounded blocks and compare bytes."""
    with open(path_a, "rb") as handle_a, open(path_b, "rb") as handle_b:
        while True:
            block_a = handle_a.read(_BYTE_BLOCK)
            block_b = handle_b.read(_BYTE_BLOCK)
            if block_a != block_b:
                return False
            if not block_a:
                return True


def diff_artifacts(path_a: str, path_b: str, *,
                   exact: bool = False) -> TelemetryDiff:
    """Compare two telemetry artifacts cell by cell.

    Args:
        path_a: Reference artifact.
        path_b: Candidate artifact.
        exact: Also stream-compare the raw files and record
            ``byte_identical`` (the sharded-export oracle); cell-level
            comparison still runs so a failed exact diff says *where*
            the artifacts disagree.

    Returns:
        A :class:`TelemetryDiff`; ``diff.identical`` is the CLI's exit
        criterion.
    """
    result = TelemetryDiff(path_a=path_a, path_b=path_b)
    with TelemetryReader(path_a) as reader_a, \
            TelemetryReader(path_b) as reader_b:
        ranks_a = set(reader_a.ranks)
        ranks_b = set(reader_b.ranks)
        result.removed_jobs = sorted(ranks_a - ranks_b)
        result.added_jobs = sorted(ranks_b - ranks_a)
        result.meta_equal = reader_a.meta == reader_b.meta
        for rank in sorted(ranks_a & ranks_b):
            job = JobDiff(rank=rank)
            job.steps = _diff_tables(reader_a.step_chunks(rank),
                                     reader_b.step_chunks(rank),
                                     STEP_COLUMNS)
            job.draws = _diff_tables(reader_a.draw_chunks(rank),
                                     reader_b.draw_chunks(rank),
                                     DRAW_COLUMNS)
            try:
                workers_a = reader_a.workers(rank)
                workers_b = reader_b.workers(rank)
                job.workers_equal = all(
                    len(column_a) == len(column_b)
                    and bool((column_a == column_b).all())
                    for column_a, column_b in zip(workers_a, workers_b))
            except Exception:
                job.workers_equal = False
            result.jobs.append(job)
    if exact:
        result.byte_identical = _bytes_equal(path_a, path_b)
    return result
