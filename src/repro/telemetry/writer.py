"""Streaming, memory-bounded columnar telemetry writer.

A fleet run streams two row kinds per job into a *spool* directory:

* **step rows** — one per completed training chunk, captured by teeing a
  :class:`JobStepSink` behind the job's normal trace sink, and
* **draw rows** — one per revocation-model draw (launch batches and
  replacement admissions), captured by the fleet's draw hook.

Rows are buffered in plain Python lists and flushed every
``chunk_rows`` rows as a single ``float64`` matrix via :func:`numpy.save`,
so a job's peak buffered state is one chunk regardless of how long it
trains.  Spool file names carry the *global* job rank and a per-job,
per-kind chunk counter — ``job000003__steps__000002.npy`` — which makes
the spool contents independent of how the fleet was sharded: jobs never
span shards, so every shard writes exactly the files the single-process
run would have written for its jobs.

:func:`write_npz` then packs the spool into one ``.npz`` artifact in
sorted-filename order with pinned zip metadata (epoch timestamps, fixed
permissions, no compression), streaming one member at a time.  The
resulting bytes are a pure function of the row contents — the
bit-identity half of the telemetry contract.

All values are stored as ``float64``; the integer columns (worker index,
step counts) are exact up to 2**53, far beyond any fleet's range.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import chaos
from repro.errors import DataError
from repro.training.trace import TraceSink

#: Bumped whenever the artifact layout changes; readers refuse unknown
#: versions instead of misinterpreting columns.
TELEMETRY_FORMAT_VERSION = 1

#: Rows buffered per job and row kind before a chunk is flushed to disk.
DEFAULT_CHUNK_ROWS = 4096

#: Columns of a step-row chunk, in order.
STEP_COLUMNS = ("worker", "start_time", "end_time", "steps",
                "cluster_step", "worker_step")

#: Columns of a draw-row chunk, in order.  ``revocation_hour_local`` is
#: NaN for draws that survived (no revocation scheduled).
DRAW_COLUMNS = ("worker", "launch_hour_local", "revoked",
                "lifetime_hours", "revocation_hour_local")


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable description of a telemetry spool.

    Shard workers receive this (not a live :class:`TelemetrySpool`) and
    construct their own spool over the shared directory.

    Attributes:
        spool_dir: Directory receiving chunk files; must exist.
        chunk_rows: Rows buffered per job/kind before flushing.
    """

    spool_dir: str
    chunk_rows: int = DEFAULT_CHUNK_ROWS


class JobStepSink(TraceSink):
    """The :class:`~repro.training.trace.TraceSink` face of one job's spool.

    Forwards every row to the owning :class:`JobTelemetry` buffer and keeps
    the cheap aggregate counters the sink read surface requires (it is only
    ever a tee *secondary*, so these are rarely consulted).
    """

    def __init__(self, job: "JobTelemetry"):
        self._job = job
        self._rows = 0
        self._steps_total = 0
        self._max_end = 0.0

    def append_row(self, worker_id: str, start_time: float, end_time: float,
                   steps: int, cluster_step: int, worker_step: int = 0) -> None:
        self._rows += 1
        self._steps_total += steps
        if end_time > self._max_end:
            self._max_end = end_time
        self._job.record_step(worker_id, start_time, end_time, steps,
                              cluster_step, worker_step)

    def extend_rows(self, worker_ids: Sequence[str], start_times: Sequence[float],
                    end_times: Sequence[float], steps: Sequence[int],
                    cluster_steps: Sequence[int], worker_steps: Sequence[int]) -> None:
        n = len(worker_ids)
        if not (len(start_times) == len(end_times) == len(steps)
                == len(cluster_steps) == len(worker_steps) == n):
            raise DataError("extend_rows requires equally sized columns")
        record = self._job.record_step
        for j in range(n):
            self._rows += 1
            self._steps_total += steps[j]
            if end_times[j] > self._max_end:
                self._max_end = end_times[j]
            record(worker_ids[j], start_times[j], end_times[j], steps[j],
                   cluster_steps[j], worker_steps[j])

    def __len__(self) -> int:
        return self._rows

    @property
    def steps_total(self) -> int:
        return self._steps_total

    @property
    def max_end_time(self) -> float:
        return self._max_end

    @property
    def nbytes(self) -> int:
        """Rows currently buffered (not yet flushed) by the owning job."""
        return self._job.buffered_nbytes


class JobTelemetry:
    """Per-job spool handle: worker registry plus buffered row chunks."""

    def __init__(self, spool: "TelemetrySpool", rank: int, name: str,
                 model_name: str, gflops: float):
        self.rank = rank
        self.name = name
        self.model_name = model_name
        self.gflops = float(gflops)
        self._spool = spool
        self._worker_index: Dict[str, int] = {}
        self._worker_ids: List[str] = []
        self._worker_gpus: List[str] = []
        self._worker_regions: List[str] = []
        self._steps: List[List[float]] = [[] for _ in STEP_COLUMNS]
        self._draws: List[List[float]] = [[] for _ in DRAW_COLUMNS]
        self._step_chunk = 0
        self._draw_chunk = 0

    # ------------------------------------------------------------------
    # Worker registry.
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str, gpu: str, region: str) -> int:
        """Intern a worker; first registration wins (idempotent)."""
        index = self._worker_index.get(worker_id)
        if index is None:
            index = len(self._worker_ids)
            self._worker_index[worker_id] = index
            self._worker_ids.append(worker_id)
            self._worker_gpus.append(gpu)
            self._worker_regions.append(region)
        return index

    def _worker(self, worker_id: str) -> int:
        index = self._worker_index.get(worker_id)
        if index is None:
            # Rows from ids the fleet never announced (e.g. the synthetic
            # "session-restart" correction row) get an anonymous slot.
            index = self.register_worker(worker_id, "", "")
        return index

    # ------------------------------------------------------------------
    # Row capture.
    # ------------------------------------------------------------------
    def step_sink(self) -> JobStepSink:
        """A fresh ``TraceSink`` feeding this job's step spool."""
        return JobStepSink(self)

    def record_step(self, worker_id: str, start_time: float, end_time: float,
                    steps: int, cluster_step: int, worker_step: int) -> None:
        columns = self._steps
        columns[0].append(float(self._worker(worker_id)))
        columns[1].append(float(start_time))
        columns[2].append(float(end_time))
        columns[3].append(float(steps))
        columns[4].append(float(cluster_step))
        columns[5].append(float(worker_step))
        if len(columns[0]) >= self._spool.chunk_rows:
            self._flush_steps()

    def record_draw(self, worker_id: str, launch_hour_local: float,
                    outcome) -> None:
        """Record one revocation-model draw (a ``RevocationOutcome``)."""
        columns = self._draws
        columns[0].append(float(self._worker(worker_id)))
        columns[1].append(float(launch_hour_local))
        columns[2].append(1.0 if outcome.revoked else 0.0)
        columns[3].append(float(outcome.lifetime_hours)
                          if outcome.lifetime_hours is not None else float("nan"))
        columns[4].append(float(outcome.revocation_hour_local)
                          if outcome.revocation_hour_local is not None
                          else float("nan"))
        if len(columns[0]) >= self._spool.chunk_rows:
            self._flush_draws()

    @property
    def buffered_nbytes(self) -> int:
        """Approximate bytes held in not-yet-flushed row buffers."""
        rows = len(self._steps[0]) * len(STEP_COLUMNS)
        rows += len(self._draws[0]) * len(DRAW_COLUMNS)
        return 32 * rows

    # ------------------------------------------------------------------
    # Flushing.
    # ------------------------------------------------------------------
    def _flush_steps(self) -> None:
        if not self._steps[0]:
            return
        self._spool._write_chunk(self.rank, "steps", self._step_chunk,
                                 np.array(self._steps, dtype=np.float64).T)
        self._step_chunk += 1
        self._steps = [[] for _ in STEP_COLUMNS]

    def _flush_draws(self) -> None:
        if not self._draws[0]:
            return
        self._spool._write_chunk(self.rank, "draws", self._draw_chunk,
                                 np.array(self._draws, dtype=np.float64).T)
        self._draw_chunk += 1
        self._draws = [[] for _ in DRAW_COLUMNS]

    def close(self) -> None:
        """Flush partial chunks and write the worker registry files."""
        self._flush_steps()
        self._flush_draws()
        self._spool._write_workers(self.rank, self._worker_ids,
                                   self._worker_gpus, self._worker_regions)

    def describe(self) -> Dict[str, object]:
        """Metadata entry for the artifact's ``meta`` document."""
        return {
            "rank": self.rank,
            "name": self.name,
            "model": self.model_name,
            "gflops": self.gflops,
            "workers": len(self._worker_ids),
        }


class TelemetrySpool:
    """A fleet's (or one shard's) set of per-job telemetry buffers."""

    def __init__(self, config: TelemetryConfig):
        if config.chunk_rows <= 0:
            raise DataError("telemetry chunk_rows must be positive")
        if not os.path.isdir(config.spool_dir):
            raise DataError(
                f"telemetry spool directory does not exist: {config.spool_dir}")
        self.config = config
        self.chunk_rows = int(config.chunk_rows)
        self._jobs: List[JobTelemetry] = []
        self._closed = False

    def job(self, rank: int, name: str, model_name: str,
            gflops: float) -> JobTelemetry:
        """Open the telemetry handle for one job (by global rank)."""
        handle = JobTelemetry(self, rank, name, model_name, gflops)
        self._jobs.append(handle)
        return handle

    @property
    def jobs(self) -> Sequence[JobTelemetry]:
        return tuple(self._jobs)

    def _path(self, rank: int, kind: str, chunk: int) -> str:
        return os.path.join(self.config.spool_dir,
                            f"job{rank:06d}__{kind}__{chunk:06d}.npy")

    def _write_chunk(self, rank: int, kind: str, chunk: int,
                     matrix: np.ndarray) -> None:
        np.save(self._path(rank, kind, chunk), matrix)

    def _write_workers(self, rank: int, ids: List[str], gpus: List[str],
                       regions: List[str]) -> None:
        base = os.path.join(self.config.spool_dir, f"job{rank:06d}__workers")
        np.save(base + "__ids.npy", np.array(ids, dtype=np.str_))
        np.save(base + "__gpus.npy", np.array(gpus, dtype=np.str_))
        np.save(base + "__regions.npy", np.array(regions, dtype=np.str_))

    def close(self) -> None:
        """Flush every job's buffers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._jobs:
            handle.close()

    def __enter__(self) -> "TelemetrySpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_npz(spool_dir: str, out_path: str, meta: Dict[str, object]) -> int:
    """Pack a spool directory into one deterministic ``.npz`` artifact.

    Members are added in sorted-filename order with pinned zip metadata
    (DOS epoch timestamps, mode 0600, ``ZIP_STORED``), one member held in
    memory at a time, so equal spool contents produce byte-equal
    artifacts no matter which process wrote which chunk.  A ``meta``
    member (canonical-JSON, stored as a 0-d unicode array) leads the
    archive.

    The write is atomic: bytes stream into a ``.tmp`` sibling that is
    ``os.replace``-d over ``out_path`` only after the zip closes cleanly,
    so a process killed mid-export leaves either the previous artifact or
    nothing — never a truncated archive for ``TelemetryReader`` to choke
    on.

    Returns:
        The number of spool files packed (excluding ``meta``).
    """
    names = sorted(name for name in os.listdir(spool_dir)
                   if name.endswith(".npy"))
    document = dict(meta)
    document["format_version"] = TELEMETRY_FORMAT_VERSION
    meta_json = json.dumps(document, sort_keys=True, separators=(",", ":"))
    plan = chaos.active_plan()
    monitor = plan.monitor("npz_truncate") if plan is not None else None
    tmp_path = f"{out_path}.tmp"
    try:
        with open(tmp_path, "wb") as out:
            with zipfile.ZipFile(out, "w", zipfile.ZIP_STORED) as archive:
                _add_member(archive, "meta.npy",
                            _npy_bytes(np.array(meta_json, dtype=np.str_)))
                for name in names:
                    if monitor:
                        fault = monitor.tick()
                        if fault is not None:
                            chaos.log_event("injected_npz_truncate",
                                            fault=fault.to_entry(),
                                            member=name, out_path=out_path)
                            raise DataError(
                                f"chaos: telemetry export truncated before "
                                f"member {name!r}")
                    arcname = name[:-4].replace("__", "/") + ".npy"
                    with open(os.path.join(spool_dir, name), "rb") as chunk:
                        _add_member(archive, arcname, chunk.read())
            out.flush()
            os.fsync(out.fileno())
    except BaseException:
        # The artifact path must never hold partial bytes; the tmp
        # sibling is ours to discard.
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, out_path)
    return len(names)


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array)
    return buffer.getvalue()


def _add_member(archive: zipfile.ZipFile, arcname: str, payload: bytes) -> None:
    info = zipfile.ZipInfo(arcname, date_time=(1980, 1, 1, 0, 0, 0))
    info.create_system = 3
    info.external_attr = 0o600 << 16
    archive.writestr(info, payload)
