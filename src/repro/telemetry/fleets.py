"""Purpose-built calibration fleet for the recalibration loop.

The scenario below is the telemetry analogue of the paper's measurement
campaign (396 servers, six regions, twelve days): many small single-worker
jobs, staggered around the clock, across a spread of ``(gpu, region)``
cells and two model sizes per GPU.  Each job contributes one launch-time
revocation draw to its cell and a stream of post-warm-up step chunks to
its ``(gpu, model)`` group, which is exactly the evidence
:func:`repro.telemetry.recalibrate.recalibrate` needs:

* two cells per GPU type give every GPU a revocation-parameter and an
  hourly-weight refit with hundreds of pooled draws,
* staggering launches across the day spreads launch hours over all 24
  bins, making the hourly-weight profile identifiable, and
* two model sizes per GPU yield the two anchors
  :class:`~repro.perf.step_time.StepTimeModel` needs to interpolate.

Cells only couple jobs within one ``(gpu, region)`` pool, so the fleet
partitions into six shard components and exercises the sharded exporter.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.scenarios.spec import JobSpec, ScenarioSpec

#: The ``(gpu, region)`` cells the calibration fleet samples — two per GPU
#: type, picked for contrast (e.g. long-lived us-east1 K80s vs fast-dying
#: europe-west1 K80s).
CALIBRATION_CELLS: Tuple[Tuple[str, str], ...] = (
    ("k80", "us-east1"),
    ("k80", "europe-west1"),
    ("p100", "us-east1"),
    ("p100", "us-central1"),
    ("v100", "us-central1"),
    ("v100", "us-west1"),
)

#: Two model sizes per GPU — the minimum for a step-time anchor refit.
CALIBRATION_MODELS: Tuple[str, str] = ("resnet_15", "resnet_32")


def calibration_scenario(jobs_per_cell: int = 240, total_steps: int = 600,
                         stagger_hours: float = 24.0) -> ScenarioSpec:
    """The telemetry calibration fleet.

    Args:
        jobs_per_cell: Single-worker jobs per ``(gpu, region)`` cell; each
            contributes one revocation draw, so this sets the per-cell
            sample size of the refit.
        total_steps: Steps per job — small, so jobs finish in simulated
            minutes; must exceed the 100-step warm-up by enough chunks to
            anchor step times.
        stagger_hours: Window over which each cell's job launches are
            spread uniformly, diversifying the observed launch hours.
    """
    if jobs_per_cell < 2:
        raise ConfigurationError("jobs_per_cell must be >= 2")
    if total_steps <= 200:
        raise ConfigurationError(
            "total_steps must exceed 200 (warm-up discards the first 100)")
    if stagger_hours < 0:
        raise ConfigurationError("stagger_hours must be >= 0")
    jobs = []
    for gpu, region in CALIBRATION_CELLS:
        for index in range(jobs_per_cell):
            model = CALIBRATION_MODELS[index % len(CALIBRATION_MODELS)]
            delay = (index * stagger_hours * 3600.0 / jobs_per_cell)
            jobs.append(JobSpec(
                name=f"cal_{gpu}_{region}_{index:04d}",
                model_name=model,
                total_steps=int(total_steps),
                workers=((gpu, region),),
                start_delay_seconds=delay,
                queue_replacements=True,
            ))
    capacity = {cell: jobs_per_cell + 4 for cell in CALIBRATION_CELLS}
    return ScenarioSpec(
        name="telemetry_calibration",
        description=("Single-worker calibration jobs across six (gpu, region) "
                     "cells, launches staggered around the clock"),
        jobs=tuple(jobs),
        pool_capacity=capacity,
        epoch_hour_utc=0.0,
    )
