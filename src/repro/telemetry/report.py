"""Fleet analysis from a telemetry artifact alone, in bounded memory.

``repro-telemetry report`` renders the classic fleet view — one row per
job plus fleet-wide step-time statistics and the Fig. 9-style local-hour
revocation histogram — **from the npz artifact**, with no scenario
re-run and no payload JSON.  The default path streams
:meth:`~repro.telemetry.reader.TelemetryReader.step_chunks` /
``draw_chunks`` through the :mod:`repro.analysis.streaming` accumulators,
so peak memory is O(chunk_rows) regardless of fleet size; the
``materialized=True`` path concatenates each job's full tables first and
exists to pin the value-identity contract (the streaming report equals
the materialized one, float for float — asserted by the tests and
``benchmarks/telemetry_baseline.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.streaming import StreamingDescribe
from repro.analysis.tables import format_table
from repro.telemetry.reader import TelemetryReader
from repro.units import hour_bins

#: Columns of the per-job fleet report table.
REPORT_TABLE_HEADERS = (
    "rank", "job", "model", "workers", "step rows", "steps",
    "makespan (h)", "mean step (s)", "p95 step (s)", "draws", "revocations",
)


def _step_times(chunk: np.ndarray) -> np.ndarray:
    """Per-step chunk durations for the rows that completed steps."""
    steps = chunk[:, 3]
    mask = steps > 0
    return (chunk[mask, 2] - chunk[mask, 1]) / steps[mask]


def _job_table_chunks(reader: TelemetryReader, rank: int,
                      materialized: bool, kind: str) -> Iterable[np.ndarray]:
    if kind == "steps":
        if materialized:
            return (reader.step_rows(rank),)
        return reader.step_chunks(rank)
    if materialized:
        return (reader.draw_rows(rank),)
    return reader.draw_chunks(rank)


def fleet_report(reader: TelemetryReader, *, materialized: bool = False,
                 block_rows: Optional[int] = None) -> Dict[str, Any]:
    """Aggregate one telemetry artifact into the fleet report document.

    Args:
        reader: An open :class:`TelemetryReader`.
        materialized: Concatenate each job's full step/draw tables before
            aggregating (O(job table) memory) instead of streaming chunk
            by chunk (O(chunk_rows) memory).  The two modes are
            value-identical by construction: the accumulators re-block
            canonically, so their float operations depend only on the row
            stream, never on its chunking.
        block_rows: Accumulator block size; defaults to the artifact's
            own ``chunk_rows`` so "bounded by O(chunk)" is literal.

    Returns:
        A JSON-safe document: one entry per job plus fleet-wide
        aggregates (step-time summary, draw/revocation counts, and the
        24-bin local-hour revocation histogram).
    """
    meta = reader.meta
    if block_rows is None:
        block_rows = int(meta.get("chunk_rows", 4096) or 4096)
    meta_ranks = {int(entry["rank"]) for entry in meta.get("jobs", [])}
    ranks = sorted(set(reader.ranks) | meta_ranks)

    jobs: List[Dict[str, Any]] = []
    fleet_rows = 0
    fleet_steps = 0.0
    fleet_makespan = 0.0
    fleet_draws = 0
    fleet_revocations = 0
    revocation_hours = np.zeros(24, dtype=np.int64)
    fleet_steps_summary: Optional[Dict[str, float]] = None

    with StreamingDescribe(block_rows=block_rows) as fleet_describe:
        for rank in ranks:
            try:
                entry = reader.job_meta(rank)
            except Exception:
                entry = {"name": f"job-{rank}", "model": "", "gflops": 0.0}
            try:
                worker_ids, _gpus, _regions = reader.workers(rank)
                workers = int(len(worker_ids))
            except Exception:
                workers = int(entry.get("workers", 0) or 0)

            rows = 0
            steps_total = 0.0
            makespan = 0.0
            with StreamingDescribe(block_rows=block_rows) as job_describe:
                for chunk in _job_table_chunks(reader, rank, materialized,
                                               "steps"):
                    if not len(chunk):
                        continue
                    rows += int(chunk.shape[0])
                    steps_total += float(chunk[:, 3].sum())
                    makespan = max(makespan, float(chunk[:, 2].max()))
                    job_times = _step_times(chunk)
                    job_describe.update(job_times)
                    fleet_describe.update(job_times)
                job_summary = (job_describe.result()
                               if job_describe.count else None)

            draws = 0
            revocations = 0
            for chunk in _job_table_chunks(reader, rank, materialized,
                                           "draws"):
                if not len(chunk):
                    continue
                draws += int(chunk.shape[0])
                revoked = chunk[:, 2] > 0.5
                revocations += int(revoked.sum())
                hours = chunk[revoked, 4]
                hours = hours[~np.isnan(hours)]
                if len(hours):
                    np.add.at(revocation_hours, hour_bins(hours), 1)

            jobs.append({
                "rank": rank,
                "name": str(entry.get("name", f"job-{rank}")),
                "model": str(entry.get("model", "")),
                "workers": workers,
                "step_rows": rows,
                "steps_total": steps_total,
                "makespan_hours": makespan / 3600.0,
                "mean_step_seconds": (job_summary["mean"]
                                      if job_summary else None),
                "p95_step_seconds": (job_summary["p95"]
                                     if job_summary else None),
                "draws": draws,
                "revocations": revocations,
            })
            fleet_rows += rows
            fleet_steps += steps_total
            fleet_makespan = max(fleet_makespan, makespan)
            fleet_draws += draws
            fleet_revocations += revocations
        if fleet_describe.count:
            fleet_steps_summary = fleet_describe.result()

    return {
        "artifact": reader.path,
        "scenario": meta.get("scenario"),
        "seed": meta.get("seed"),
        "jobs": jobs,
        "fleet": {
            "jobs": len(jobs),
            "step_rows": fleet_rows,
            "steps_total": fleet_steps,
            "makespan_hours": fleet_makespan / 3600.0,
            "step_time_seconds": fleet_steps_summary,
            "draws": fleet_draws,
            "revocations": fleet_revocations,
            "revocation_hour_histogram": [int(v) for v in revocation_hours],
        },
    }


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------
def _cell(value: Optional[float]) -> Any:
    return "-" if value is None else value


def render_hour_histogram(counts, width: int = 40) -> str:
    """Render a 24-bin local-hour histogram as text bars."""
    counts = [int(v) for v in counts]
    peak = max(counts) if counts else 0
    lines = ["local hour | revocations"]
    for hour, count in enumerate(counts):
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{hour:10d} | {count:5d} {bar}")
    return "\n".join(lines)


def render_report(document: Dict[str, Any]) -> str:
    """Render a :func:`fleet_report` document as the fleet text report."""
    rows = [[
        job["rank"], job["name"], job["model"], job["workers"],
        job["step_rows"], int(job["steps_total"]), job["makespan_hours"],
        _cell(job["mean_step_seconds"]), _cell(job["p95_step_seconds"]),
        job["draws"], job["revocations"],
    ] for job in document["jobs"]]
    fleet = document["fleet"]
    title = (f"fleet telemetry report: scenario "
             f"{document.get('scenario')!r}, seed {document.get('seed')}")
    blocks = [format_table(REPORT_TABLE_HEADERS, rows, title=title,
                           float_format="{:.4f}")]
    summary = fleet["step_time_seconds"]
    if summary is not None:
        blocks.append(format_table(
            ("count", "mean", "std", "min", "p50", "p95", "max"),
            [[int(summary["count"]), summary["mean"], summary["std"],
              summary["min"], summary["p50"], summary["p95"],
              summary["max"]]],
            title="fleet step time (s)", float_format="{:.5f}"))
    blocks.append(
        f"fleet: {fleet['jobs']} jobs, {fleet['step_rows']} step rows, "
        f"{int(fleet['steps_total'])} steps, makespan "
        f"{fleet['makespan_hours']:.3f} h, {fleet['revocations']} "
        f"revocations in {fleet['draws']} draws")
    blocks.append(render_hour_histogram(fleet["revocation_hour_histogram"]))
    return "\n\n".join(blocks)
