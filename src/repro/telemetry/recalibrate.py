"""Refit the generative models from a fleet's exported telemetry.

This is the paper's measure -> model loop run at fleet scale: where the
authors fit their revocation and step-time models to 396 real transient
servers, we fit the *same parameter families* to a fleet's exported
telemetry and check that the refit recovers the generating parameters —
a self-consistency test real measurements could never run.

What is refit, and how
----------------------
* ``p_revoke_24h`` per ``(gpu, region)`` cell — the revoked fraction of
  that cell's recorded draws.
* Weibull ``shape``/``scale`` per cell — maximum likelihood on the
  revoked lifetimes under the 24-hour-truncated Weibull, *corrected for
  the hour-of-day resampling tilt*: the generative model importance-
  resamples candidate lifetimes toward preferred local hours, so the
  observed lifetimes follow ``f(t) * w(hour(launch + t)) / Z``, not
  ``f(t)``.  The fit maximizes that tilted likelihood (normalizer
  integrated numerically per launch-hour bin), using the empirically
  estimated tilt.
* Hourly revocation weights per GPU — the observed revocation-hour
  histogram divided by the histogram a *tilt-free* refit Weibull would
  produce given the observed launch hours.  The estimate converges in
  one round trip: untilted Weibull fit -> weight estimate -> tilted
  Weibull refit -> final weight estimate.  Weights are identifiable only
  up to scale (the sampler normalizes per draw), so they are reported
  mean-normalized; finite-candidate resampling also compresses the
  effective tilt toward uniform, so recovery is checked by profile
  correlation rather than per-bin equality (see
  :data:`RECOVERY_TOLERANCES`).
* Step-time anchors per GPU — the median post-warm-up per-step chunk
  time at each observed model complexity, yielding the same
  ``(gflops, seconds)`` anchor family
  :class:`~repro.perf.step_time.StepTimeModel` interpolates.
* ``noise_cov`` per GPU — a MAD-based robust spread of per-chunk step
  times, rescaled by ``sqrt(steps per chunk)`` (a chunk averages that
  many independent per-step draws).

:func:`check_recovery` compares a :class:`RecalibrationResult` against
the generating models under :data:`RECOVERY_TOLERANCES` and returns the
violations; the tests and the CI telemetry smoke both gate on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.revocation import (
    HOURLY_REVOCATION_WEIGHTS,
    MAX_TRANSIENT_LIFETIME_HOURS,
    REVOCATION_CALIBRATION,
    RevocationCellParams,
    RevocationModel,
)
from repro.errors import DataError
from repro.perf.calibration import STEP_TIME_ANCHORS, STEP_TIME_NOISE_COV
from repro.perf.step_time import WARMUP_STEPS, StepTimeModel
from repro.telemetry.reader import TelemetryReader
from repro.units import hour_bins

#: Documented self-consistency tolerances: refitting a fleet's own
#: telemetry must recover the generating parameters within these bounds.
#: Probabilities are absolute, Weibull/anchor comparisons relative;
#: hourly-weight profiles are compared by Pearson correlation of the
#: mean-normalized 24-bin profiles after a 3-bin circular smoothing
#: (the generating profiles are smooth daily curves, and the
#: finite-candidate resampler compresses the effective tilt, so raw
#: per-bin equality is not attainable), with generating zero-weight hours
#: additionally required to stay below ``forbidden_hour_weight`` in the
#: *unsmoothed* estimate; ``noise_cov`` must agree within a factor.
RECOVERY_TOLERANCES: Dict[str, float] = {
    "p_revoke_abs": 0.12,
    "weibull_shape_rel": 0.35,
    "weibull_scale_rel": 0.35,
    "anchor_rel": 0.05,
    "hourly_weight_corr": 0.80,
    "forbidden_hour_weight": 0.15,
    "noise_cov_factor": 2.0,
}

#: Cells with fewer recorded draws than this are left out of the refit
#: calibration (the defaults fill them in when building models).
MIN_CELL_DRAWS = 25

#: Minimum revoked lifetimes required for a per-cell Weibull refit.
MIN_CELL_REVOCATIONS = 12

#: Minimum post-warm-up chunks per ``(gpu, gflops)`` group for an anchor.
MIN_ANCHOR_CHUNKS = 30

#: Lifetime-integration grid resolution (points across the 24-hour cap).
_GRID_POINTS = 960


@dataclass
class RecalibrationResult:
    """Parameters refit from one telemetry artifact.

    Only *observed* cells/GPUs appear here; the model builders merge the
    result over the stock calibration so unobserved cells keep their
    defaults.

    Attributes:
        calibration: Refit per-cell revocation parameters.
        hourly_weights: Refit mean-normalized 24-bin profiles per GPU.
        anchors: Refit ``(gflops, seconds-per-step)`` anchors per GPU.
        noise_cov: Refit relative step-time noise per GPU.
        samples: Diagnostics — draw/revocation/chunk counts per cell/GPU.
    """

    calibration: Dict[Tuple[str, str], RevocationCellParams] = field(default_factory=dict)
    hourly_weights: Dict[str, Tuple[float, ...]] = field(default_factory=dict)
    anchors: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    noise_cov: Dict[str, float] = field(default_factory=dict)
    samples: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Model builders (observed parameters merged over the defaults).
    # ------------------------------------------------------------------
    def revocation_model(self, rng: Optional[np.random.Generator] = None,
                         candidates: int = 8) -> RevocationModel:
        """A :class:`RevocationModel` driven by the refit parameters."""
        calibration = dict(REVOCATION_CALIBRATION)
        calibration.update(self.calibration)
        weights: Dict[str, Sequence[float]] = dict(HOURLY_REVOCATION_WEIGHTS)
        weights.update(self.hourly_weights)
        return RevocationModel(rng=rng, calibration=calibration,
                               hourly_weights=weights, candidates=candidates)

    def step_time_model(self, rng: Optional[np.random.Generator] = None
                        ) -> StepTimeModel:
        """A :class:`StepTimeModel` driven by the refit parameters."""
        anchors = {gpu: list(points) for gpu, points in STEP_TIME_ANCHORS.items()}
        for gpu, points in self.anchors.items():
            if len(points) < 2:
                raise DataError(
                    f"need >= 2 step-time anchors for GPU {gpu!r}, "
                    f"got {len(points)} (too few observed model sizes)")
            anchors[gpu] = list(points)
        noise = dict(STEP_TIME_NOISE_COV)
        noise.update(self.noise_cov)
        return StepTimeModel(rng=rng, anchors=anchors, noise_cov=noise)

    def advisor(self, samples_per_option: int = 200, seed: int = 0,
                score_backend: str = "table"):
        """A :class:`~repro.modeling.launch_advisor.LaunchAdvisor` on the
        refit revocation model."""
        from repro.modeling.launch_advisor import LaunchAdvisor
        return LaunchAdvisor(revocation_model=self.revocation_model(),
                             samples_per_option=samples_per_option,
                             seed=seed, score_backend=score_backend)

    # ------------------------------------------------------------------
    # JSON-safe round trip (the serve ``recalibrate`` op payload).
    # ------------------------------------------------------------------
    def to_params(self) -> Dict[str, object]:
        """A JSON-safe document round-tripping through :meth:`from_params`."""
        return {
            "calibration": {
                f"{gpu}:{region}": [params.p_revoke_24h, params.weibull_shape,
                                    params.weibull_scale_hours]
                for (gpu, region), params in sorted(self.calibration.items())},
            "hourly_weights": {gpu: list(weights) for gpu, weights
                               in sorted(self.hourly_weights.items())},
            "anchors": {gpu: [[x, y] for x, y in points]
                        for gpu, points in sorted(self.anchors.items())},
            "noise_cov": dict(sorted(self.noise_cov.items())),
            "samples": self.samples,
        }

    @classmethod
    def from_params(cls, document: Mapping[str, object]) -> "RecalibrationResult":
        """Rebuild a result from a :meth:`to_params` document."""
        calibration: Dict[Tuple[str, str], RevocationCellParams] = {}
        for key, values in dict(document.get("calibration", {})).items():
            gpu, _, region = key.partition(":")
            if not region:
                raise DataError(f"malformed calibration cell key {key!r}")
            calibration[(gpu, region)] = RevocationCellParams(*map(float, values))
        return cls(
            calibration=calibration,
            hourly_weights={gpu: tuple(map(float, weights)) for gpu, weights
                            in dict(document.get("hourly_weights", {})).items()},
            anchors={gpu: [(float(x), float(y)) for x, y in points]
                     for gpu, points in dict(document.get("anchors", {})).items()},
            noise_cov={gpu: float(value) for gpu, value
                       in dict(document.get("noise_cov", {})).items()},
            samples={key: dict(value) for key, value
                     in dict(document.get("samples", {})).items()},
        )


# ---------------------------------------------------------------------------
# Truncated-Weibull fitting (with the hour-of-day resampling tilt).
# ---------------------------------------------------------------------------
def _weibull_init(lifetimes: np.ndarray) -> Tuple[float, float]:
    """Log-space method-of-moments initial guess (truncation ignored)."""
    logs = np.log(lifetimes)
    spread = float(logs.std(ddof=1)) if len(logs) > 1 else 0.0
    shape = math.pi / (math.sqrt(6.0) * spread) if spread > 1e-9 else 1.5
    shape = min(max(shape, 0.2), 8.0)
    scale = math.exp(float(logs.mean()) + 0.5772156649015329 / shape)
    return shape, min(max(scale, 0.05), 200.0)


def _fit_truncated_weibull(lifetimes: np.ndarray,
                           launch_bins: Optional[np.ndarray] = None,
                           tilt: Optional[np.ndarray] = None
                           ) -> Tuple[float, float]:
    """MLE of the 24h-truncated Weibull, optionally tilt-corrected.

    With ``tilt`` (a 24-bin weight profile) and per-sample ``launch_bins``,
    the likelihood of each lifetime ``t`` becomes
    ``f(t) * tilt[bin(launch + t)] / Z(launch)`` — the density the
    hour-preferring resampler actually emits — with ``Z`` integrated on a
    fixed grid per distinct launch bin.
    """
    from scipy.optimize import minimize

    cap = MAX_TRANSIENT_LIFETIME_HOURS
    grid = (np.arange(_GRID_POINTS) + 0.5) * (cap / _GRID_POINTS)
    dt = cap / _GRID_POINTS
    if tilt is not None:
        unique_bins = np.unique(launch_bins)
        counts = {int(b): int((launch_bins == b).sum()) for b in unique_bins}
        # tilt value at hour(launch + t) for every grid point / launch bin.
        tilt_rows = {int(b): np.asarray(tilt, dtype=np.float64)[
            hour_bins(float(b) + 0.5 + grid)] for b in unique_bins}
        log_tilt_obs = float(np.log(np.maximum(
            np.asarray(tilt, dtype=np.float64)[
                hour_bins(launch_bins + 0.5 + lifetimes)], 1e-12)).sum())
    else:
        counts, tilt_rows, log_tilt_obs = {}, {}, 0.0

    n = len(lifetimes)
    log_t = np.log(lifetimes)

    def negative_log_likelihood(params: np.ndarray) -> float:
        shape = math.exp(min(max(params[0], -3.0), 3.0))
        scale = math.exp(min(max(params[1], -4.0), 6.0))
        z = (lifetimes / scale) ** shape
        log_f = (math.log(shape / scale) + (shape - 1.0) * (log_t - math.log(scale))
                 - z).sum()
        cap_mass = 1.0 - math.exp(-((cap / scale) ** shape))
        if cap_mass <= 1e-12:
            return 1e18
        value = -(log_f + log_tilt_obs) + n * math.log(cap_mass)
        if tilt_rows:
            density = ((shape / scale) * (grid / scale) ** (shape - 1.0)
                       * np.exp(-((grid / scale) ** shape))) / cap_mass
            for launch_bin, row in tilt_rows.items():
                normalizer = float((density * row).sum() * dt)
                value += counts[launch_bin] * math.log(max(normalizer, 1e-300))
        return float(value)

    shape0, scale0 = _weibull_init(lifetimes)
    solution = minimize(negative_log_likelihood,
                        np.array([math.log(shape0), math.log(scale0)]),
                        method="Nelder-Mead",
                        options={"xatol": 1e-4, "fatol": 1e-6, "maxiter": 400})
    shape = math.exp(min(max(float(solution.x[0]), -3.0), 3.0))
    scale = math.exp(min(max(float(solution.x[1]), -4.0), 6.0))
    return shape, scale


def _base_hour_distribution(shape: float, scale: float,
                            launch_bin: int) -> np.ndarray:
    """24-bin distribution of ``hour(launch + T)`` under the *untilted*
    truncated Weibull — the exposure the weight estimate divides by."""
    cap = MAX_TRANSIENT_LIFETIME_HOURS
    grid = (np.arange(_GRID_POINTS) + 0.5) * (cap / _GRID_POINTS)
    dt = cap / _GRID_POINTS
    cap_mass = 1.0 - math.exp(-((cap / scale) ** shape))
    density = ((shape / scale) * (grid / scale) ** (shape - 1.0)
               * np.exp(-((grid / scale) ** shape))) / max(cap_mass, 1e-12)
    bins = hour_bins(float(launch_bin) + 0.5 + grid)
    distribution = np.zeros(24)
    np.add.at(distribution, bins, density * dt)
    total = distribution.sum()
    return distribution / total if total > 0 else distribution


# ---------------------------------------------------------------------------
# The refit driver.
# ---------------------------------------------------------------------------
def _collect_draws(reader: TelemetryReader
                   ) -> Dict[Tuple[str, str], Dict[str, np.ndarray]]:
    """Pool draw rows per ``(gpu, region)`` cell across all jobs.

    Consumes :meth:`TelemetryReader.draw_chunks` one chunk at a time and
    groups each chunk's rows by cell with vectorized selection, so the
    transient working set stays one chunk plus the per-cell output (never
    a per-row Python list over the whole fleet).
    """
    pooled: Dict[Tuple[str, str], List[np.ndarray]] = {}
    for rank in reader.ranks:
        gpus = regions = None
        for chunk in reader.draw_chunks(rank):
            if not len(chunk):
                continue
            if gpus is None:
                _ids, gpus, regions = reader.workers(rank)
            worker = chunk[:, 0].astype(np.int64)
            chunk_gpus = np.asarray(gpus)[worker]
            chunk_regions = np.asarray(regions)[worker]
            for gpu in np.unique(chunk_gpus):
                if not gpu:
                    continue
                for region in np.unique(chunk_regions[chunk_gpus == gpu]):
                    select = (chunk_gpus == gpu) & (chunk_regions == region)
                    pooled.setdefault((str(gpu), str(region)), []).append(
                        chunk[select])
    cells: Dict[Tuple[str, str], Dict[str, np.ndarray]] = {}
    for key, entries in pooled.items():
        block = np.concatenate(entries, axis=0)
        cells[key] = {
            "launch_hour": block[:, 1],
            "revoked": block[:, 2] > 0.5,
            "lifetime": block[:, 3],
            "revocation_hour": block[:, 4],
        }
    return cells


def _estimate_weights(cells: Mapping[Tuple[str, str], Dict[str, np.ndarray]],
                      fits: Mapping[Tuple[str, str], Tuple[float, float]]
                      ) -> Dict[str, Tuple[float, ...]]:
    """Observed revocation-hour histogram over the untilted expectation."""
    observed: Dict[str, np.ndarray] = {}
    expected: Dict[str, np.ndarray] = {}
    for (gpu, _region), draws in cells.items():
        key = (gpu, _region)
        if key not in fits:
            continue
        shape, scale = fits[key]
        revoked = draws["revoked"]
        if not revoked.any():
            continue
        hours = draws["revocation_hour"][revoked]
        launches = hour_bins(draws["launch_hour"][revoked])
        obs = observed.setdefault(gpu, np.zeros(24))
        np.add.at(obs, hour_bins(hours), 1.0)
        exp = expected.setdefault(gpu, np.zeros(24))
        for launch_bin in np.unique(launches):
            count = int((launches == launch_bin).sum())
            exp += count * _base_hour_distribution(shape, scale, int(launch_bin))
    weights: Dict[str, Tuple[float, ...]] = {}
    for gpu, obs in observed.items():
        exp = expected[gpu]
        ratio = np.where(exp > 1e-9, obs / np.maximum(exp, 1e-9), 1.0)
        mean = ratio.mean()
        if mean > 0:
            ratio = ratio / mean
        weights[gpu] = tuple(float(v) for v in ratio)
    return weights


def recalibrate(reader: TelemetryReader, *,
                min_cell_draws: int = MIN_CELL_DRAWS,
                min_cell_revocations: int = MIN_CELL_REVOCATIONS,
                min_anchor_chunks: int = MIN_ANCHOR_CHUNKS
                ) -> RecalibrationResult:
    """Refit revocation and step-time parameters from one artifact.

    Args:
        reader: An open :class:`TelemetryReader`.
        min_cell_draws: Cells with fewer draws are skipped entirely.
        min_cell_revocations: Cells with fewer revoked lifetimes keep the
            default Weibull (only ``p_revoke_24h`` is refit).
        min_anchor_chunks: ``(gpu, gflops)`` groups with fewer post-warm-up
            chunks contribute no anchor.
    """
    result = RecalibrationResult()
    cells = _collect_draws(reader)

    # Pass 1: revoked fractions + untilted Weibull fits.
    fits: Dict[Tuple[str, str], Tuple[float, float]] = {}
    p_revoke: Dict[Tuple[str, str], float] = {}
    for key, draws in cells.items():
        total = len(draws["revoked"])
        revoked = int(draws["revoked"].sum())
        result.samples[f"cell:{key[0]}:{key[1]}"] = {
            "draws": total, "revocations": revoked}
        if total < min_cell_draws:
            continue
        p_revoke[key] = revoked / total
        if revoked >= min_cell_revocations:
            lifetimes = draws["lifetime"][draws["revoked"]]
            fits[key] = _fit_truncated_weibull(lifetimes)

    # Pass 2: weight estimate -> tilt-corrected Weibull refit -> final
    # weight estimate off the corrected fits.
    weights = _estimate_weights(cells, fits)
    for key in list(fits):
        gpu = key[0]
        tilt = weights.get(gpu)
        if tilt is None:
            continue
        draws = cells[key]
        revoked = draws["revoked"]
        fits[key] = _fit_truncated_weibull(
            draws["lifetime"][revoked],
            launch_bins=hour_bins(draws["launch_hour"][revoked]),
            tilt=np.asarray(tilt))
    result.hourly_weights = _estimate_weights(cells, fits)

    for key, p in p_revoke.items():
        if key in fits:
            shape, scale = fits[key]
        else:
            default = REVOCATION_CALIBRATION.get(key)
            if default is None:
                continue
            shape, scale = default.weibull_shape, default.weibull_scale_hours
        result.calibration[key] = RevocationCellParams(
            p_revoke_24h=min(max(p, 0.0), 1.0),
            weibull_shape=shape, weibull_scale_hours=scale)

    # Step-time anchors and noise from the step rows.
    groups: Dict[Tuple[str, float], List[np.ndarray]] = {}
    for rank in reader.ranks:
        meta = reader.job_meta(rank)
        gflops = float(meta["gflops"])
        _ids, gpus, _regions = reader.workers(rank)
        for chunk in reader.step_chunks(rank):
            steps = chunk[:, 3]
            worker_step = chunk[:, 5]
            mask = (steps > 0) & (worker_step - steps >= WARMUP_STEPS)
            if not mask.any():
                continue
            worker = chunk[mask, 0].astype(np.int64)
            gpu_names = np.asarray([str(gpus[w]) for w in worker])
            durations = chunk[mask, 2] - chunk[mask, 1]
            step_times = durations / steps[mask]
            for gpu in np.unique(gpu_names):
                if not gpu:
                    continue
                select = gpu_names == gpu
                groups.setdefault((str(gpu), gflops), []).append(
                    np.stack([step_times[select], steps[mask][select]]))

    anchor_points: Dict[str, List[Tuple[float, float]]] = {}
    noise_votes: Dict[str, List[Tuple[float, int]]] = {}
    for (gpu, gflops), blocks in sorted(groups.items()):
        data = np.concatenate(blocks, axis=1)
        step_times, steps = data[0], data[1]
        count = len(step_times)
        result.samples[f"steps:{gpu}:{gflops:g}"] = {"chunks": count}
        if count < min_anchor_chunks:
            continue
        anchor = float(np.median(step_times))
        anchor_points.setdefault(gpu, []).append((gflops, anchor))
        # Noise from the dominant chunk size: a chunk of n steps averages n
        # independent draws, so the per-step cov is the chunk-level relative
        # MAD spread scaled back up by sqrt(n).
        values, tallies = np.unique(steps, return_counts=True)
        mode = float(values[int(np.argmax(tallies))])
        sample = step_times[steps == mode]
        center = float(np.median(sample))
        if len(sample) >= min_anchor_chunks and center > 0 and mode > 1:
            mad = float(np.median(np.abs(sample - center)))
            cov = 1.4826 * mad / center * math.sqrt(mode)
            noise_votes.setdefault(gpu, []).append((cov, len(sample)))

    for gpu, points in anchor_points.items():
        result.anchors[gpu] = sorted(points)
    for gpu, votes in noise_votes.items():
        total = sum(count for _cov, count in votes)
        result.noise_cov[gpu] = sum(cov * count for cov, count in votes) / total
    return result


# ---------------------------------------------------------------------------
# Self-consistency gate.
# ---------------------------------------------------------------------------
def _smooth_profile(values: np.ndarray) -> np.ndarray:
    """3-bin circular [0.25, 0.5, 0.25] smoothing of a 24-hour profile."""
    return 0.25 * np.roll(values, 1) + 0.5 * values + 0.25 * np.roll(values, -1)


def check_recovery(result: RecalibrationResult, *,
                   revocation_model: Optional[RevocationModel] = None,
                   step_time_model: Optional[StepTimeModel] = None,
                   tolerances: Optional[Mapping[str, float]] = None
                   ) -> List[str]:
    """Compare a refit against the generating models.

    Returns:
        Human-readable violation messages — empty when every observed
        parameter is recovered within :data:`RECOVERY_TOLERANCES` (or the
        supplied override).
    """
    bounds = dict(RECOVERY_TOLERANCES)
    bounds.update(tolerances or {})
    generator = revocation_model if revocation_model is not None else RevocationModel()
    steps = step_time_model if step_time_model is not None else StepTimeModel()
    violations: List[str] = []

    for (gpu, region), refit in sorted(result.calibration.items()):
        truth = generator.params_for(gpu, region)
        if abs(refit.p_revoke_24h - truth.p_revoke_24h) > bounds["p_revoke_abs"]:
            violations.append(
                f"{gpu}/{region}: p_revoke_24h {refit.p_revoke_24h:.3f} vs "
                f"{truth.p_revoke_24h:.3f} (abs tol {bounds['p_revoke_abs']})")
        shape_err = abs(refit.weibull_shape - truth.weibull_shape) / truth.weibull_shape
        if shape_err > bounds["weibull_shape_rel"]:
            violations.append(
                f"{gpu}/{region}: weibull_shape {refit.weibull_shape:.3f} vs "
                f"{truth.weibull_shape:.3f} (rel {shape_err:.2f} > "
                f"{bounds['weibull_shape_rel']})")
        scale_err = (abs(refit.weibull_scale_hours - truth.weibull_scale_hours)
                     / truth.weibull_scale_hours)
        if scale_err > bounds["weibull_scale_rel"]:
            violations.append(
                f"{gpu}/{region}: weibull_scale {refit.weibull_scale_hours:.3f} "
                f"vs {truth.weibull_scale_hours:.3f} (rel {scale_err:.2f} > "
                f"{bounds['weibull_scale_rel']})")

    for gpu, refit_weights in sorted(result.hourly_weights.items()):
        truth_weights = np.asarray(generator.hourly_weights(gpu), dtype=np.float64)
        normalized_truth = truth_weights / truth_weights.mean()
        estimate = np.asarray(refit_weights, dtype=np.float64)
        smooth_estimate = _smooth_profile(estimate)
        smooth_truth = _smooth_profile(normalized_truth)
        if smooth_estimate.std() > 1e-12 and smooth_truth.std() > 1e-12:
            correlation = float(np.corrcoef(smooth_estimate, smooth_truth)[0, 1])
        else:
            correlation = 0.0
        if correlation < bounds["hourly_weight_corr"]:
            violations.append(
                f"{gpu}: hourly-weight correlation {correlation:.3f} < "
                f"{bounds['hourly_weight_corr']}")
        forbidden = normalized_truth == 0.0
        if forbidden.any():
            worst = float(estimate[forbidden].max())
            if worst > bounds["forbidden_hour_weight"]:
                violations.append(
                    f"{gpu}: weight {worst:.3f} in a zero-weight hour "
                    f"(tol {bounds['forbidden_hour_weight']})")

    for gpu, points in sorted(result.anchors.items()):
        for gflops, seconds in points:
            truth_seconds = steps.mean_step_time(gflops, gpu)
            error = abs(seconds - truth_seconds) / truth_seconds
            if error > bounds["anchor_rel"]:
                violations.append(
                    f"{gpu}@{gflops:g} GFLOPs: step time {seconds:.4f}s vs "
                    f"{truth_seconds:.4f}s (rel {error:.3f} > {bounds['anchor_rel']})")

    for gpu, cov in sorted(result.noise_cov.items()):
        truth_cov = steps.noise_cov(gpu)
        factor = max(cov, 1e-12) / truth_cov
        if factor > bounds["noise_cov_factor"] or factor < 1.0 / bounds["noise_cov_factor"]:
            violations.append(
                f"{gpu}: noise_cov {cov:.4f} vs {truth_cov:.4f} "
                f"(factor {factor:.2f} outside {bounds['noise_cov_factor']})")
    return violations
