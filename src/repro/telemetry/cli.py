"""``repro-telemetry``: export, analyze, and recalibrate fleet telemetry.

Four subcommands on the shared :mod:`repro.cli` plumbing:

* ``export`` — run one replicate of a named scenario (or the built-in
  ``telemetry_calibration`` fleet) with the telemetry spool attached and
  write the columnar ``.npz`` artifact;
* ``report`` — render the fleet table, step-time summary, and local-hour
  revocation histogram from an artifact alone, streaming chunk by chunk
  (bounded memory, any fleet size);
* ``diff`` — compare two artifacts cell by cell (row counts, per-column
  max-abs-delta, added/removed jobs); ``--exact`` additionally asserts
  byte identity.  Exits 0 only when the artifacts agree;
* ``recalibrate`` — refit the revocation/step-time parameters from an
  artifact, optionally writing the refit document as JSON and/or gating
  on the self-consistency tolerances (``--check``, the CI smoke's mode).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cli import run_cli, write_json_out
from repro.errors import ConfigurationError
from repro.scenarios.catalog import SCENARIO_BUILDERS, get_scenario
from repro.telemetry.diff import diff_artifacts
from repro.telemetry.export import export_fleet_telemetry
from repro.telemetry.fleets import calibration_scenario
from repro.telemetry.reader import TelemetryReader
from repro.telemetry.recalibrate import check_recovery, recalibrate
from repro.telemetry.report import fleet_report, render_report
from repro.telemetry.writer import DEFAULT_CHUNK_ROWS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Columnar fleet telemetry export and recalibration")
    commands = parser.add_subparsers(dest="command", required=True)

    export = commands.add_parser(
        "export", help="run one fleet replicate and write its telemetry npz")
    export.add_argument(
        "scenario",
        help=("scenario name (or 'telemetry_calibration' for the built-in "
              "calibration fleet)"))
    export.add_argument("--out", required=True, metavar="PATH",
                        help="destination .npz artifact")
    export.add_argument("--seed", type=int, default=0, help="root RNG seed")
    export.add_argument("--replicate", type=int, default=0,
                        help="which replicate cell to export (default: 0)")
    export.add_argument("--shards", type=int, default=None,
                        help=("worker processes (default: REPRO_FLEET_SHARDS "
                              "or 1)"))
    export.add_argument("--trace-level", choices=("full", "summary"),
                        default=None, help="per-session trace level override")
    export.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
                        help="telemetry rows buffered before each flush")
    export.add_argument("--jobs-per-cell", type=int, default=240,
                        help=("calibration-fleet size knob (only with "
                              "scenario 'telemetry_calibration')"))

    report = commands.add_parser(
        "report", help=("render the fleet table + revocation-hour "
                        "histogram from an artifact alone (streaming, "
                        "bounded memory)"))
    report.add_argument("artifact", help="telemetry .npz artifact to read")
    report.add_argument("--json", dest="json_out", default=None,
                        metavar="PATH",
                        help="also write the report document as JSON")
    report.add_argument("--block-rows", type=int, default=None,
                        help=("streaming accumulator block size (default: "
                              "the artifact's own chunk_rows)"))

    diff = commands.add_parser(
        "diff", help=("compare two artifacts cell by cell; exits 0 only "
                      "when they agree"))
    diff.add_argument("artifact_a", help="reference telemetry .npz")
    diff.add_argument("artifact_b", help="candidate telemetry .npz")
    diff.add_argument("--exact", action="store_true",
                      help="additionally assert byte identity of the files")
    diff.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                      help="also write the diff document as JSON")

    refit = commands.add_parser(
        "recalibrate", help="refit model parameters from a telemetry npz")
    refit.add_argument("artifact", help="telemetry .npz artifact to read")
    refit.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                       help="write the refit parameter document as JSON")
    refit.add_argument("--check", action="store_true",
                       help=("gate on the documented self-consistency "
                             "tolerances against the stock generating "
                             "models; exit 1 on any violation"))
    return parser


def _resolve_scenario(name: str, jobs_per_cell: int):
    if name == "telemetry_calibration":
        return calibration_scenario(jobs_per_cell=jobs_per_cell)
    try:
        return get_scenario(name)
    except ConfigurationError:
        known = ", ".join(list(SCENARIO_BUILDERS) + ["telemetry_calibration"])
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}")


def _cmd_export(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.jobs_per_cell)
    payload = export_fleet_telemetry(
        scenario, args.out, seed=args.seed, replicate=args.replicate,
        shards=args.shards, trace_level=args.trace_level,
        chunk_rows=args.chunk_rows)
    print(f"exported telemetry for {len(payload['jobs'])} jobs to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    with TelemetryReader(args.artifact) as reader:
        document = fleet_report(reader, block_rows=args.block_rows)
    print(render_report(document))
    if args.json_out:
        write_json_out(args.json_out, document,
                       len(document["jobs"]), "job rows")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    result = diff_artifacts(args.artifact_a, args.artifact_b,
                            exact=args.exact)
    print(result.summary())
    if args.json_out:
        write_json_out(args.json_out, result.to_document(),
                       len(result.jobs), "compared jobs")
    return 0 if result.identical else 1


def _cmd_recalibrate(args: argparse.Namespace) -> int:
    with TelemetryReader(args.artifact) as reader:
        result = recalibrate(reader)
    document = result.to_params()
    if args.json_out:
        write_json_out(args.json_out, document,
                       len(result.calibration), "refit cells")
    else:
        json.dump(document, sys.stdout, indent=2, sort_keys=True)
        print()
    if args.check:
        violations = check_recovery(result)
        for violation in violations:
            print(f"recovery violation: {violation}", file=sys.stderr)
        if violations:
            return 1
        print(f"recovery check passed: {len(result.calibration)} cells, "
              f"{len(result.hourly_weights)} weight profiles, "
              f"{len(result.anchors)} anchor sets within tolerance")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    def body() -> int:
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "diff":
            return _cmd_diff(args)
        return _cmd_recalibrate(args)

    return run_cli(body)


if __name__ == "__main__":  # pragma: no cover - exercised via repro-telemetry
    sys.exit(main())
