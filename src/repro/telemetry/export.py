"""Export one fleet replicate's telemetry to a single ``.npz`` artifact.

The exported fleet is the *exact* fleet a ``repro-scenarios`` sweep cell
runs: the scenario goes through :func:`~repro.scenarios.fleet.build_fleet_spec`
and the matching replicate cell's derived streams, so the payload returned
here equals the sweep's payload for that cell and the telemetry describes
the run the user actually analyzed.

The artifact's ``meta`` document is derived purely from the scenario and
catalog (never from run state) and deliberately excludes execution knobs
— shards, trace level, scheduler — so exports are bit-identical across
all of them (the sharded-identity contract).
"""

from __future__ import annotations

import os
import shutil
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.scenarios.fleet import apply_fleet_axes, build_fleet_spec
from repro.scenarios.shard import ShardedFleetRun
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.writer import (DEFAULT_CHUNK_ROWS, TelemetryConfig,
                                    write_npz)
from repro.workloads.catalog import ModelCatalog, default_catalog


def export_fleet_telemetry(scenario: ScenarioSpec, out_path: str, *,
                           seed: int = 0, replicate: int = 0,
                           shards: Optional[int] = None,
                           trace_level: Optional[str] = None,
                           chunk_rows: int = DEFAULT_CHUNK_ROWS,
                           catalog: Optional[ModelCatalog] = None
                           ) -> Dict[str, Any]:
    """Run one fleet replicate with telemetry attached and write the npz.

    Args:
        scenario: The scenario to simulate.
        out_path: Artifact destination (a sibling ``.spool`` directory is
            used for chunk files and removed afterwards).
        seed: Sweep root seed (matches ``repro-scenarios --seed``).
        replicate: Which replicate cell to export.
        shards: Worker processes (``None`` reads ``REPRO_FLEET_SHARDS``).
        trace_level: Per-session trace level override.
        chunk_rows: Telemetry rows buffered per job/kind before flushing.
        catalog: Model catalog (defaults to the stock one).

    Returns:
        The fleet's JSON payload — bit-identical to the corresponding
        sweep cell's payload.
    """
    if replicate < 0:
        raise ConfigurationError("replicate must be >= 0")
    spec = build_fleet_spec(scenario, replicates=replicate + 1)
    cell = next(cell for cell in spec.cells()
                if cell.params["replicate"] == replicate)
    streams = cell.streams(seed)
    derived = apply_fleet_axes(
        ScenarioSpec.from_params(cell.params["scenario"]), cell.params)

    resolved_catalog = catalog if catalog is not None else default_catalog()
    meta = {
        "scenario": scenario.name,
        "seed": int(seed),
        "replicate": int(replicate),
        "chunk_rows": int(chunk_rows),
        "jobs": [
            {"rank": rank, "name": job.name, "model": job.model_name,
             "gflops": float(resolved_catalog.profile(job.model_name).gflops)}
            for rank, job in enumerate(derived.jobs)],
    }

    spool_dir = out_path + ".spool"
    os.makedirs(spool_dir, exist_ok=True)
    try:
        runner = ShardedFleetRun(
            derived, streams, catalog=resolved_catalog, shards=shards,
            trace_level=trace_level,
            telemetry=TelemetryConfig(spool_dir=spool_dir,
                                      chunk_rows=int(chunk_rows)))
        payload = runner.run()
        write_npz(spool_dir, out_path, meta)
    finally:
        shutil.rmtree(spool_dir, ignore_errors=True)
    return payload
