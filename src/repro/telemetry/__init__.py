"""Columnar fleet telemetry export and online recalibration.

This package closes the paper's measure -> model -> decide loop at fleet
scale: a fleet run streams its per-step timings and revocation draws into a
memory-bounded columnar spool, the spool is packed into a single ``.npz``
artifact, and :mod:`repro.telemetry.recalibrate` refits the
:class:`~repro.cloud.revocation.RevocationModel` and
:class:`~repro.perf.step_time.StepTimeModel` parameters from that artifact —
handing the refreshed calibration back to the launch advisor and the
``repro.serve`` placement service.

Sink protocol
-------------
Capture rides on the :class:`repro.training.trace.TraceSink` protocol.  A
:class:`~repro.telemetry.writer.TelemetrySpool` hands each job a
``JobTelemetry`` handle whose ``step_sink()`` is a ``TraceSink``; the fleet
tees it behind the job's primary sink (full or summary), so ``trace_level``
semantics and every golden payload stay bit-identical whether or not
telemetry is attached.  Sinks receive the same ``append_row`` /
``extend_rows`` calls the in-memory trace does; the spool buffers rows in
plain Python lists and flushes fixed-size ``float64`` chunks to disk, so
peak memory is bounded by ``chunk_rows`` regardless of fleet size.

Streaming-memory contract
-------------------------
Reading mirrors writing: analysis over an artifact is bounded by
O(``chunk_rows``), never by the fleet size.  :class:`TelemetryReader`
decodes one chunk at a time (``step_chunks`` / ``draw_chunks``), and
every built-in consumer — :func:`repro.telemetry.report.fleet_report`,
:func:`repro.telemetry.diff.diff_artifacts`, and the draw/anchor pooling
inside :func:`~repro.telemetry.recalibrate.recalibrate` — feeds those
chunks through the :mod:`repro.analysis.streaming` accumulators (stable
block-merged moments, fixed-bin histograms, exact spill-and-merge
percentiles) instead of concatenating a job's tables.  The streaming
report is value-identical to the materialized ``step_rows`` path, and
``benchmarks/telemetry_baseline.py`` pins the memory bound with
tracemalloc: analysis peak stays flat as the job count grows 10x
(committed as ``BENCH_telemetry.json``).

Merge and ordering guarantees
-----------------------------
Spool files are keyed by *global job rank* and per-job chunk index — never by
shard — and jobs never span shards, so a sharded run produces exactly the
same set of spool files as a single-process run.  ``write_npz`` packs the
spool in sorted-filename order with pinned zip metadata (epoch timestamps,
fixed permissions, ``ZIP_STORED``), which makes the artifact a pure function
of row contents: sharded export is bit-identical to single-process export.
Within a job, step rows appear in simulation event order and revocation
draws in draw order, both of which are shard-invariant by construction
(a job's events live on one shard and keep their heap tie-break order).
"""

from repro.telemetry.writer import (
    DEFAULT_CHUNK_ROWS,
    TELEMETRY_FORMAT_VERSION,
    TelemetryConfig,
    TelemetrySpool,
    write_npz,
)
from repro.telemetry.reader import TelemetryReader
from repro.telemetry.recalibrate import (
    RECOVERY_TOLERANCES,
    RecalibrationResult,
    check_recovery,
    recalibrate,
)
from repro.telemetry.export import export_fleet_telemetry
from repro.telemetry.fleets import calibration_scenario
from repro.telemetry.diff import TelemetryDiff, diff_artifacts
from repro.telemetry.report import fleet_report, render_report

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "TELEMETRY_FORMAT_VERSION",
    "TelemetryConfig",
    "TelemetrySpool",
    "write_npz",
    "TelemetryReader",
    "RECOVERY_TOLERANCES",
    "RecalibrationResult",
    "check_recovery",
    "recalibrate",
    "export_fleet_telemetry",
    "calibration_scenario",
    "TelemetryDiff",
    "diff_artifacts",
    "fleet_report",
    "render_report",
]
