"""Read a telemetry ``.npz`` artifact back into per-job column arrays.

Entries load lazily — :class:`numpy.lib.npyio.NpzFile` only decodes a
member when indexed — so reading a huge artifact's draw rows never
materializes its step chunks.

Streaming consumers should iterate :meth:`TelemetryReader.step_chunks` /
:meth:`TelemetryReader.draw_chunks`, which decode and yield one
fixed-size chunk at a time; the ``step_rows`` / ``draw_rows``
conveniences concatenate a whole job and are only appropriate for
small fleets or single-job inspection.
"""

from __future__ import annotations

import json
import zipfile
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import DataError
from repro.telemetry.writer import (DRAW_COLUMNS, STEP_COLUMNS,
                                    TELEMETRY_FORMAT_VERSION)


class TelemetryReader:
    """Lazy, column-oriented view of one telemetry artifact."""

    def __init__(self, path: str):
        self.path = path
        try:
            self._npz = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise DataError(
                f"cannot open telemetry artifact {path}: {exc}") from exc
        try:
            if "meta" not in self._npz.files:
                raise DataError(
                    f"not a telemetry artifact (no meta entry): {path}")
            self.meta: Dict[str, object] = json.loads(str(self._npz["meta"][()]))
            version = self.meta.get("format_version")
            if version != TELEMETRY_FORMAT_VERSION:
                raise DataError(
                    f"unsupported telemetry format version {version!r} in {path}; "
                    f"this reader understands {TELEMETRY_FORMAT_VERSION}")
        except BaseException:
            # A rejected artifact must not leak the open zip handle.
            self._npz.close()
            raise
        self._job_meta: Dict[int, Dict[str, object]] = {
            int(entry["rank"]): entry
            for entry in self.meta.get("jobs", [])}
        self._members: Dict[int, Dict[str, List[str]]] = {}
        for name in self._npz.files:
            if name == "meta":
                continue
            parts = name.split("/")
            if len(parts) != 3 or not parts[0].startswith("job"):
                continue
            rank = int(parts[0][3:])
            self._members.setdefault(rank, {}).setdefault(
                parts[1], []).append(name)
        for kinds in self._members.values():
            for names in kinds.values():
                names.sort()

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> List[int]:
        """Global job ranks present in the artifact, ascending."""
        return sorted(self._members)

    def job_meta(self, rank: int) -> Dict[str, object]:
        """The ``meta`` document's entry for one job.

        O(1): the ``meta["jobs"]`` list is indexed by rank once at open
        time, so iterating a fleet stays linear in the job count.
        """
        entry = self._job_meta.get(rank)
        if entry is None:
            raise DataError(f"job rank {rank} not present in telemetry meta")
        return entry

    # ------------------------------------------------------------------
    def workers(self, rank: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One job's worker registry: ``(ids, gpus, regions)`` arrays."""
        names = self._members.get(rank, {}).get("workers")
        if not names:
            raise DataError(f"no worker registry for job rank {rank}")
        by_field = {name.rsplit("/", 1)[1]: name for name in names}
        return (self._npz[by_field["ids"]], self._npz[by_field["gpus"]],
                self._npz[by_field["regions"]])

    def step_chunks(self, rank: int) -> Iterator[np.ndarray]:
        """Yield one job's ``(n, 6)`` step-row chunks in write order."""
        for name in self._members.get(rank, {}).get("steps", []):
            chunk = self._npz[name]
            if chunk.ndim != 2 or chunk.shape[1] != len(STEP_COLUMNS):
                raise DataError(f"malformed step chunk {name} in {self.path}")
            yield chunk

    def step_rows(self, rank: int) -> np.ndarray:
        """One job's step rows concatenated into a single ``(n, 6)`` array."""
        chunks = list(self.step_chunks(rank))
        if not chunks:
            return np.empty((0, len(STEP_COLUMNS)), dtype=np.float64)
        return np.concatenate(chunks, axis=0)

    def draw_chunks(self, rank: int) -> Iterator[np.ndarray]:
        """Yield one job's ``(n, 5)`` draw-row chunks in write order."""
        for name in self._members.get(rank, {}).get("draws", []):
            chunk = self._npz[name]
            if chunk.ndim != 2 or chunk.shape[1] != len(DRAW_COLUMNS):
                raise DataError(f"malformed draw chunk {name} in {self.path}")
            yield chunk

    def draw_rows(self, rank: int) -> np.ndarray:
        """One job's revocation-draw rows as a single ``(n, 5)`` array."""
        chunks = list(self.draw_chunks(rank))
        if not chunks:
            return np.empty((0, len(DRAW_COLUMNS)), dtype=np.float64)
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "TelemetryReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
