"""Recomputation overhead ground truth (Section V-E, Fig. 11).

In unmodified TensorFlow, when the *chief* worker is revoked and its
replacement is given the chief's previous IP address, the replacement
becomes the new chief and the cluster restarts from the last checkpoint —
discarding every step made since then.  The paper measures this
"TensorFlow-specific recomputation overhead" as the extra time to reach the
next checkpoint compared with assigning the replacement a fresh IP.

CM-DARE's transient-TensorFlow hands the checkpoint responsibility to a
surviving worker instead, so its worst-case loss is bounded by the
checkpoint interval.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.perf.calibration import SESSION_RESTART_SECONDS


class RecomputationModel:
    """Recomputation overhead of the legacy chief-IP-reuse behaviour."""

    def __init__(self, session_restart_seconds: float = SESSION_RESTART_SECONDS):
        if session_restart_seconds < 0:
            raise ConfigurationError("session_restart_seconds must be non-negative")
        self.session_restart_seconds = session_restart_seconds

    def legacy_overhead(self, steps_since_checkpoint: float,
                        cluster_speed: float) -> float:
        """Extra seconds spent when the chief's IP is reused (legacy TF).

        The cluster discards ``steps_since_checkpoint`` steps of progress and
        must recompute them at the (post-replacement) cluster speed, plus the
        cost of restarting the training session.

        Args:
            steps_since_checkpoint: Steps completed since the last
                checkpoint at the moment the replacement joins.
            cluster_speed: Cluster training speed (steps/second) after the
                replacement joins.
        """
        if steps_since_checkpoint < 0:
            raise ConfigurationError("steps_since_checkpoint must be non-negative")
        if cluster_speed <= 0:
            raise ConfigurationError("cluster_speed must be positive")
        return self.session_restart_seconds + steps_since_checkpoint / cluster_speed

    def transient_tf_overhead(self, steps_since_checkpoint: float,
                              checkpoint_interval_steps: float,
                              cluster_speed: float) -> float:
        """Worst-case loss under CM-DARE's transient-TensorFlow.

        With checkpoint responsibility handed to a surviving worker, the
        training session does not restart and no progress is discarded; the
        exposure is bounded by the work since the last checkpoint, which is
        itself bounded by the checkpoint interval.
        """
        if checkpoint_interval_steps <= 0:
            raise ConfigurationError("checkpoint_interval_steps must be positive")
        exposed_steps = min(steps_since_checkpoint, checkpoint_interval_steps)
        if cluster_speed <= 0:
            raise ConfigurationError("cluster_speed must be positive")
        return exposed_steps / cluster_speed

    def savings(self, steps_since_checkpoint: float,
                checkpoint_interval_steps: float, cluster_speed: float) -> float:
        """Seconds saved by CM-DARE's handoff vs. the legacy behaviour.

        This is the quantity Fig. 11 plots (time difference between adding a
        replacement with a new IP address vs. reusing the chief's).
        """
        legacy = self.legacy_overhead(steps_since_checkpoint, cluster_speed)
        # With a fresh IP the cluster keeps its progress: the only cost is
        # that the replacement worker starts contributing later, which both
        # configurations share; the differential cost is the legacy restart
        # plus recomputation.
        return legacy
