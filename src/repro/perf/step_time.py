"""Ground-truth step-time model.

Answers "how long does one training step take for model M on GPU G?", the
quantity the paper measures in Table I and Fig. 2.  The model interpolates
between the Table I anchors (piecewise linear in model GFLOPs, per GPU) and
adds the small, stable noise the paper observes (maximum coefficient of
variation of 0.02 after warm-up).

A short warm-up transient is also modeled: the paper discards the first 100
steps of every measurement because early steps are slower (input pipeline
warm-up, XLA compilation, cache effects); reproducing the transient lets
the measurement methodology (discarding those steps) matter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.errors import ConfigurationError
from repro.perf.calibration import (
    GPU_SATURATION_RATIO_THRESHOLD,
    GPU_SATURATION_STEEPNESS,
    PS_CONTENTION_COV,
    STEP_TIME_ANCHORS,
    STEP_TIME_NOISE_COV,
)

#: Minimum step time as a fraction of the smallest anchor, guarding the
#: linear extrapolation for very small custom models.
_MIN_STEP_TIME_FRACTION = 0.25

#: Warm-up transient: the first ``WARMUP_STEPS`` steps are slowed by a
#: factor decaying from ``1 + WARMUP_EXTRA`` to 1.
WARMUP_STEPS = 100
WARMUP_EXTRA = 0.6


def _interpolate(anchors, x: float) -> float:
    """Piecewise-linear interpolation with end-slope extrapolation."""
    xs = [a[0] for a in anchors]
    ys = [a[1] for a in anchors]
    if x <= xs[0]:
        slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
        return ys[0] + slope * (x - xs[0])
    if x >= xs[-1]:
        slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
        return ys[-1] + slope * (x - xs[-1])
    for i in range(len(xs) - 1):
        if xs[i] <= x <= xs[i + 1]:
            fraction = (x - xs[i]) / (xs[i + 1] - xs[i])
            return ys[i] + fraction * (ys[i + 1] - ys[i])
    raise ConfigurationError("interpolation fell through")  # pragma: no cover


class StepTimeModel:
    """Calibrated per-GPU step-time ground truth.

    Args:
        rng: Random generator used when sampling noisy step durations.
        anchors: Optional override of the per-GPU ``(gflops, step time)``
            anchor tables.
        noise_cov: Optional override of the per-GPU noise level.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 anchors=None, noise_cov=None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._anchors = {gpu: sorted(points) for gpu, points in
                         (anchors or STEP_TIME_ANCHORS).items()}
        self._noise_cov = dict(noise_cov or STEP_TIME_NOISE_COV)

    # ------------------------------------------------------------------
    # Deterministic quantities.
    # ------------------------------------------------------------------
    def mean_step_time(self, model_gflops: float, gpu_name: str) -> float:
        """Mean seconds per training step for a single, uncontended worker.

        Args:
            model_gflops: Model complexity in GFLOPs per image (``Cm``).
            gpu_name: GPU type of the worker.
        """
        if model_gflops <= 0:
            raise ConfigurationError("model_gflops must be positive")
        gpu = get_gpu(gpu_name)
        anchors = self._anchors[gpu.name]
        interpolated = _interpolate(anchors, model_gflops)
        floor = anchors[0][1] * _MIN_STEP_TIME_FRACTION
        return float(max(floor, interpolated))

    def mean_speed(self, model_gflops: float, gpu_name: str) -> float:
        """Mean training speed (steps/second) for a single worker."""
        return 1.0 / self.mean_step_time(model_gflops, gpu_name)

    def computation_ratio(self, model_gflops: float, gpu_name: str) -> float:
        """The paper's computation ratio ``Cm / Cgpu`` (GFLOPs / teraflops)."""
        return model_gflops / get_gpu(gpu_name).teraflops

    def scaling_efficiency(self, model_gflops: float, gpu_name: str) -> float:
        """Marginal contribution of additional workers of this GPU type.

        Reproduces Fig. 4's Shake-Shake-Big observation: when the model's
        computation ratio exceeds a threshold for the given GPU, adding more
        of those workers stops improving cluster speed.  The value is ~1 for
        comfortable models and decays towards 0 past the threshold.
        """
        ratio = self.computation_ratio(model_gflops, gpu_name)
        exponent = (ratio - GPU_SATURATION_RATIO_THRESHOLD) * GPU_SATURATION_STEEPNESS
        # Numerically safe logistic.
        if exponent > 50:
            return 0.0
        if exponent < -50:
            return 1.0
        return float(1.0 / (1.0 + np.exp(exponent)))

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def noise_cov(self, gpu_name: str) -> float:
        """Baseline relative step-time noise for a GPU type."""
        return self._noise_cov[get_gpu(gpu_name).name]

    def sample_step_time(self, model_gflops: float, gpu_name: str,
                         step_index: int = 10_000,
                         ps_utilization: float = 0.0,
                         slowdown: float = 1.0) -> float:
        """Sample one noisy step duration.

        Args:
            model_gflops: Model complexity in GFLOPs per image.
            gpu_name: GPU type of the worker.
            step_index: Global step number, used to apply the warm-up
                transient for early steps.
            ps_utilization: Parameter-server utilization in [0, 1]; higher
                contention adds variability (Table III).
            slowdown: Multiplicative slowdown applied to the mean, used by
                the cluster model when the PS bottleneck stretches steps.
        """
        if step_index < 0:
            raise ConfigurationError("step_index must be non-negative")
        mean = self.mean_step_time(model_gflops, gpu_name) * max(1.0, slowdown)
        if step_index < WARMUP_STEPS:
            progress = step_index / WARMUP_STEPS
            mean *= 1.0 + WARMUP_EXTRA * (1.0 - progress) ** 2
        cov = self.noise_cov(gpu_name) + PS_CONTENTION_COV * float(np.clip(ps_utilization, 0.0, 1.0))
        sample = self._rng.normal(mean, mean * cov)
        return float(max(mean * 0.2, sample))
