"""Ground-truth step-time model.

Answers "how long does one training step take for model M on GPU G?", the
quantity the paper measures in Table I and Fig. 2.  The model interpolates
between the Table I anchors (piecewise linear in model GFLOPs, per GPU) and
adds the small, stable noise the paper observes (maximum coefficient of
variation of 0.02 after warm-up).

A short warm-up transient is also modeled: the paper discards the first 100
steps of every measurement because early steps are slower (input pipeline
warm-up, XLA compilation, cache effects); reproducing the transient lets
the measurement methodology (discarding those steps) matter.

Performance notes
-----------------
The model sits on the simulation core's hottest path: every simulated
training step draws one sample.  Three things keep that cheap:

* anchor tables are pre-split into sorted ``xs``/``ys`` lists once per GPU
  and segment lookup uses :func:`bisect.bisect_left` instead of a linear
  scan,
* interpolated base step times and noise levels are memoized per
  ``(gflops, gpu)`` / per GPU, and
* :meth:`StepTimeModel.sample_steps` draws a whole vector of step durations
  with a single ``Generator.normal`` call.  The vector draw consumes the
  generator's stream exactly like the equivalent sequence of scalar
  :meth:`StepTimeModel.sample_step_time` calls and reproduces their values
  bit for bit, which is what lets the simulation fast-path stay
  bit-identical to the chunked path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.errors import ConfigurationError
from repro.perf.calibration import (
    GPU_SATURATION_RATIO_THRESHOLD,
    GPU_SATURATION_STEEPNESS,
    PS_CONTENTION_COV,
    STEP_TIME_ANCHORS,
    STEP_TIME_NOISE_COV,
)

#: Minimum step time as a fraction of the smallest anchor, guarding the
#: linear extrapolation for very small custom models.
_MIN_STEP_TIME_FRACTION = 0.25

#: Warm-up transient: the first ``WARMUP_STEPS`` steps are slowed by a
#: factor decaying from ``1 + WARMUP_EXTRA`` to 1.
WARMUP_STEPS = 100
WARMUP_EXTRA = 0.6

#: Lazily built table of the per-step warm-up slowdown factors.  Each entry
#: is computed with exactly the scalar expression the model always used, so
#: vectorized sampling multiplies by the very same floats.
_WARMUP_FACTORS: List[float] = []


def _warmup_factor(step_index: int) -> float:
    """Warm-up slowdown factor for one early step (``step_index < WARMUP_STEPS``)."""
    if not _WARMUP_FACTORS:
        for index in range(WARMUP_STEPS):
            progress = index / WARMUP_STEPS
            _WARMUP_FACTORS.append(1.0 + WARMUP_EXTRA * (1.0 - progress) ** 2)
    return _WARMUP_FACTORS[step_index]


def _interpolate(xs, ys, x: float) -> float:
    """Piecewise-linear interpolation with end-slope extrapolation.

    ``xs`` must be sorted ascending.  The arithmetic matches the original
    linear-scan implementation exactly (same expressions, same rounding);
    only the segment lookup changed to a bisection.
    """
    if x <= xs[0]:
        slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
        return ys[0] + slope * (x - xs[0])
    if x >= xs[-1]:
        slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
        return ys[-1] + slope * (x - xs[-1])
    # First segment i with xs[i] <= x <= xs[i + 1], as the linear scan found.
    i = bisect_left(xs, x) - 1
    fraction = (x - xs[i]) / (xs[i + 1] - xs[i])
    return ys[i] + fraction * (ys[i + 1] - ys[i])


class StepTimeModel:
    """Calibrated per-GPU step-time ground truth.

    Args:
        rng: Random generator used when sampling noisy step durations.
        anchors: Optional override of the per-GPU ``(gflops, step time)``
            anchor tables.
        noise_cov: Optional override of the per-GPU noise level.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 anchors=None, noise_cov=None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._anchors = {gpu: sorted(points) for gpu, points in
                         (anchors or STEP_TIME_ANCHORS).items()}
        # Pre-split anchor tables (satisfies the bisect lookup and avoids
        # rebuilding the coordinate lists on every interpolation).
        self._anchor_xs: Dict[str, List[float]] = {
            gpu: [point[0] for point in points]
            for gpu, points in self._anchors.items()}
        self._anchor_ys: Dict[str, List[float]] = {
            gpu: [point[1] for point in points]
            for gpu, points in self._anchors.items()}
        self._noise_cov = dict(noise_cov or STEP_TIME_NOISE_COV)
        self._mean_cache: Dict[Tuple[float, str], float] = {}
        self._cov_cache: Dict[str, float] = {}
        self._efficiency_cache: Dict[Tuple[float, str], float] = {}

    # ------------------------------------------------------------------
    # Deterministic quantities.
    # ------------------------------------------------------------------
    def mean_step_time(self, model_gflops: float, gpu_name: str) -> float:
        """Mean seconds per training step for a single, uncontended worker.

        Args:
            model_gflops: Model complexity in GFLOPs per image (``Cm``).
            gpu_name: GPU type of the worker.
        """
        if model_gflops <= 0:
            raise ConfigurationError("model_gflops must be positive")
        key = (model_gflops, gpu_name)
        cached = self._mean_cache.get(key)
        if cached is not None:
            return cached
        gpu = get_gpu(gpu_name)
        xs = self._anchor_xs[gpu.name]
        ys = self._anchor_ys[gpu.name]
        interpolated = _interpolate(xs, ys, model_gflops)
        floor = ys[0] * _MIN_STEP_TIME_FRACTION
        value = float(max(floor, interpolated))
        self._mean_cache[key] = value
        return value

    def mean_speed(self, model_gflops: float, gpu_name: str) -> float:
        """Mean training speed (steps/second) for a single worker."""
        return 1.0 / self.mean_step_time(model_gflops, gpu_name)

    def computation_ratio(self, model_gflops: float, gpu_name: str) -> float:
        """The paper's computation ratio ``Cm / Cgpu`` (GFLOPs / teraflops)."""
        return model_gflops / get_gpu(gpu_name).teraflops

    def scaling_efficiency(self, model_gflops: float, gpu_name: str) -> float:
        """Marginal contribution of additional workers of this GPU type.

        Reproduces Fig. 4's Shake-Shake-Big observation: when the model's
        computation ratio exceeds a threshold for the given GPU, adding more
        of those workers stops improving cluster speed.  The value is ~1 for
        comfortable models and decays towards 0 past the threshold.
        """
        key = (model_gflops, gpu_name)
        cached = self._efficiency_cache.get(key)
        if cached is not None:
            return cached
        ratio = self.computation_ratio(model_gflops, gpu_name)
        exponent = (ratio - GPU_SATURATION_RATIO_THRESHOLD) * GPU_SATURATION_STEEPNESS
        # Numerically safe logistic.
        if exponent > 50:
            value = 0.0
        elif exponent < -50:
            value = 1.0
        else:
            value = float(1.0 / (1.0 + np.exp(exponent)))
        self._efficiency_cache[key] = value
        return value

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def noise_cov(self, gpu_name: str) -> float:
        """Baseline relative step-time noise for a GPU type."""
        cached = self._cov_cache.get(gpu_name)
        if cached is not None:
            return cached
        value = self._noise_cov[get_gpu(gpu_name).name]
        self._cov_cache[gpu_name] = value
        return value

    def sample_step_time(self, model_gflops: float, gpu_name: str,
                         step_index: int = 10_000,
                         ps_utilization: float = 0.0,
                         slowdown: float = 1.0) -> float:
        """Sample one noisy step duration.

        Args:
            model_gflops: Model complexity in GFLOPs per image.
            gpu_name: GPU type of the worker.
            step_index: Global step number, used to apply the warm-up
                transient for early steps.
            ps_utilization: Parameter-server utilization in [0, 1]; higher
                contention adds variability (Table III).
            slowdown: Multiplicative slowdown applied to the mean, used by
                the cluster model when the PS bottleneck stretches steps.
        """
        if step_index < 0:
            raise ConfigurationError("step_index must be non-negative")
        mean = self.mean_step_time(model_gflops, gpu_name) * max(1.0, slowdown)
        if step_index < WARMUP_STEPS:
            mean *= _warmup_factor(step_index)
        # Scalar clamp; identical to np.clip without the array dispatch.
        cov = (self.noise_cov(gpu_name)
               + PS_CONTENTION_COV * min(1.0, max(0.0, float(ps_utilization))))
        sample = self._rng.normal(mean, mean * cov)
        return float(max(mean * 0.2, sample))

    def sample_steps(self, model_gflops: float, gpu_name: str, count: int,
                     start_step_index: int = 10_000,
                     ps_utilization: float = 0.0,
                     slowdown: float = 1.0) -> np.ndarray:
        """Sample ``count`` consecutive noisy step durations in one RNG call.

        Bit-for-bit identical to ``count`` sequential
        :meth:`sample_step_time` calls with ``step_index`` running from
        ``start_step_index`` to ``start_step_index + count - 1``: the
        vectorized ``Generator.normal`` consumes the underlying bit stream
        one draw per element, exactly like the scalar calls, and the mean /
        noise / clip arithmetic uses the same expressions.

        Args:
            model_gflops: Model complexity in GFLOPs per image.
            gpu_name: GPU type of the worker.
            count: Number of consecutive steps to sample.
            start_step_index: Global step number of the first sampled step.
            ps_utilization: Parameter-server utilization in [0, 1].
            slowdown: Multiplicative slowdown applied to the mean.

        Returns:
            A float64 array of ``count`` step durations in seconds.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if start_step_index < 0:
            raise ConfigurationError("step_index must be non-negative")
        if count == 0:
            return np.empty(0, dtype=np.float64)
        mean = self.mean_step_time(model_gflops, gpu_name) * max(1.0, slowdown)
        cov = (self.noise_cov(gpu_name)
               + PS_CONTENTION_COV * min(1.0, max(0.0, float(ps_utilization))))
        if start_step_index >= WARMUP_STEPS:
            # Constant mean: one block draw from the shared stream.
            samples = self._rng.normal(mean, mean * cov, size=count)
            return np.maximum(mean * 0.2, samples)
        warm_end = min(WARMUP_STEPS, start_step_index + count)
        means = [mean * _warmup_factor(index)
                 for index in range(start_step_index, warm_end)]
        means.extend([mean] * (start_step_index + count - warm_end))
        mean_vec = np.asarray(means, dtype=np.float64)
        samples = self._rng.normal(mean_vec, mean_vec * cov)
        return np.maximum(mean_vec * 0.2, samples)

    def chunk_draw_params(self, model_gflops: float, gpu_name: str,
                          ps_utilization: float = 0.0,
                          slowdown: float = 1.0) -> Tuple[float, float, float]:
        """Precompute the ``(mean, sigma, floor)`` of post-warm-up draws.

        Hot replay loops call :meth:`sample_chunk` with these instead of
        :meth:`sample_steps`, skipping the per-call mean/cov lookups; the
        values are the exact intermediates of the post-warm-up branch of
        :meth:`sample_steps`, so the draws are identical.
        """
        mean = self.mean_step_time(model_gflops, gpu_name) * max(1.0, slowdown)
        cov = (self.noise_cov(gpu_name)
               + PS_CONTENTION_COV * min(1.0, max(0.0, float(ps_utilization))))
        return mean, mean * cov, mean * 0.2

    def sample_chunk_raw(self, params: Tuple[float, float, float],
                         count: int) -> np.ndarray:
        """Post-warm-up draws from precomputed chunk parameters, unfloored.

        Consumes the RNG stream exactly like the
        ``start_step_index >= WARMUP_STEPS`` branch of :meth:`sample_steps`;
        the caller must clamp each value to ``params[2]`` (the floor) —
        ``v if v > floor else floor`` per element reproduces the
        ``np.maximum`` of :meth:`sample_steps` bit for bit while skipping
        the array pass.
        """
        mean, sigma, _floor = params
        return self._rng.normal(mean, sigma, size=count)
