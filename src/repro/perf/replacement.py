"""Worker-replacement overhead ground truth (Fig. 10).

After a transient worker is revoked, the practitioner (or CM-DARE's
resource manager) brings a replacement into the training session.  The
paper distinguishes:

* **cold start** — a brand new GPU server is requested: pay the server
  startup time, download the training dataset shard the revoked server
  held, start the framework, join the session, and build the training
  computation graph;
* **warm start** — an already-running GPU server is reused: only the
  framework restart, session join, and graph setup are paid.

The paper reports ~75.6 s cold vs ~14.8 s warm for ResNet-15, with both
growing with model size (graph setup dominates the growth; Shake-Shake Big
costs ~15 s more than ResNet-15), and notes the overheads are not
GPU-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloud.startup import StartupTimeModel
from repro.errors import ConfigurationError
from repro.perf.calibration import (
    REPLACEMENT_FRAMEWORK_RESTART_SECONDS,
    REPLACEMENT_GRAPH_SETUP_BASE_SECONDS,
    REPLACEMENT_GRAPH_SETUP_PER_MB_SECONDS,
    REPLACEMENT_GRAPH_SETUP_PER_TENSOR_SECONDS,
)
from repro.workloads.datasets import CIFAR10, DatasetSpec
from repro.workloads.profiler import ModelProfile

#: Effective bandwidth for downloading the training-data shard onto a new
#: worker (bytes/second).
_DATASET_DOWNLOAD_BANDWIDTH = 80 * 1024 * 1024


@dataclass(frozen=True)
class ReplacementBreakdown:
    """Component breakdown of one worker replacement.

    Attributes:
        server_startup: Requesting and booting a new GPU server (0 for warm
            starts).
        dataset_download: Downloading the training-data shard (0 for warm
            starts).
        framework_start: Starting the deep-learning framework.
        session_join: Joining the existing training session (RPC setup).
        graph_setup: Building the training computation graph.
    """

    server_startup: float
    dataset_download: float
    framework_start: float
    session_join: float
    graph_setup: float

    @property
    def total(self) -> float:
        """Total replacement overhead in seconds."""
        return (self.server_startup + self.dataset_download + self.framework_start
                + self.session_join + self.graph_setup)


class ReplacementOverheadModel:
    """Calibrated cold/warm worker-replacement overhead.

    Args:
        rng: Random generator for sampling variability.
        startup_model: Startup model used for the cold-start server request;
            a default is created when omitted.
        dataset: Training dataset (controls the download component).
        session_join_seconds: Seconds to join the running training session.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 startup_model: Optional[StartupTimeModel] = None,
                 dataset: DatasetSpec = CIFAR10,
                 session_join_seconds: float = 2.0):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._startup = (startup_model if startup_model is not None
                         else StartupTimeModel(rng=self._rng))
        self.dataset = dataset
        self.session_join_seconds = session_join_seconds

    # ------------------------------------------------------------------
    # Components.
    # ------------------------------------------------------------------
    def graph_setup_seconds(self, profile: ModelProfile) -> float:
        """Seconds to build the training computation graph for a model."""
        parameter_mb = profile.parameter_bytes / (1024.0 * 1024.0)
        return (REPLACEMENT_GRAPH_SETUP_BASE_SECONDS
                + REPLACEMENT_GRAPH_SETUP_PER_TENSOR_SECONDS * profile.num_tensors
                + REPLACEMENT_GRAPH_SETUP_PER_MB_SECONDS * parameter_mb)

    def dataset_download_seconds(self) -> float:
        """Seconds to download the training-data shard onto a new worker."""
        return self.dataset.size_bytes / _DATASET_DOWNLOAD_BANDWIDTH

    # ------------------------------------------------------------------
    # Cold / warm replacement.
    # ------------------------------------------------------------------
    def mean_breakdown(self, profile: ModelProfile, cold: bool,
                       gpu_name: str = "k80") -> ReplacementBreakdown:
        """Mean component breakdown for a cold or warm replacement."""
        server_startup = (self._startup.replacement_mean(gpu_name, immediate=True)
                          if cold else 0.0)
        dataset_download = self.dataset_download_seconds() if cold else 0.0
        return ReplacementBreakdown(
            server_startup=server_startup,
            dataset_download=dataset_download,
            framework_start=REPLACEMENT_FRAMEWORK_RESTART_SECONDS,
            session_join=self.session_join_seconds,
            graph_setup=self.graph_setup_seconds(profile),
        )

    def mean_total(self, profile: ModelProfile, cold: bool,
                   gpu_name: str = "k80") -> float:
        """Mean total replacement overhead in seconds."""
        return self.mean_breakdown(profile, cold, gpu_name).total

    def sample(self, profile: ModelProfile, cold: bool,
               gpu_name: str = "k80", cov: float = 0.08) -> ReplacementBreakdown:
        """Sample a noisy replacement breakdown.

        Args:
            profile: Model being trained.
            cold: True for a cold start (new server), False for a warm start.
            gpu_name: GPU type of the replacement server (cold starts only).
            cov: Relative variability applied to each component.
        """
        if cov < 0:
            raise ConfigurationError("cov must be non-negative")
        mean = self.mean_breakdown(profile, cold, gpu_name)
        if cold:
            server_startup = self._startup.sample_replacement(gpu_name, immediate=True)
        else:
            server_startup = 0.0

        def jitter(value: float) -> float:
            if value <= 0:
                return 0.0
            return float(max(0.2 * value, self._rng.normal(value, value * cov)))

        return ReplacementBreakdown(
            server_startup=server_startup,
            dataset_download=jitter(mean.dataset_download),
            framework_start=jitter(mean.framework_start),
            session_join=jitter(mean.session_join),
            graph_setup=jitter(mean.graph_setup),
        )

    def sample_warm_reuse(self, profile: ModelProfile,
                          gpu_name: str = "k80",
                          cov: float = 0.08) -> ReplacementBreakdown:
        """Sample the overhead of reusing a warm (already running) server.

        This is the Fig. 10 warm path as exercised by the fleet warm pool:
        the framework restart, session join, and graph setup of a warm
        start, plus the short warm re-acquisition handshake of
        :meth:`repro.cloud.startup.StartupTimeModel.sample_warm_reacquire`
        reported as the (otherwise zero) ``server_startup`` component.  A
        new sampling path — the existing cold/warm :meth:`sample` consumes
        its generator exactly as before.
        """
        handshake = self._startup.sample_warm_reacquire(gpu_name)
        warm = self.sample(profile, cold=False, gpu_name=gpu_name, cov=cov)
        return ReplacementBreakdown(
            server_startup=handshake,
            dataset_download=warm.dataset_download,
            framework_start=warm.framework_start,
            session_join=warm.session_join,
            graph_setup=warm.graph_setup,
        )
