"""Parameter-server capacity ground truth.

Asynchronous parameter-server training saturates when the aggregate rate of
gradient pushes from the workers exceeds what the parameter servers can
absorb (Section III-C/D).  This module models that capacity:

* one parameter server sustains a model-update throughput (updates/second)
  that decreases with the per-step gradient payload,
* capacity scales sub-linearly with the number of parameter servers
  (Fig. 12 observes "up to 70.6%" improvement from a second PS), and
* the transition from compute-bound to PS-bound is smooth — workers slow
  down gradually as the cluster approaches saturation (Table III).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.perf.calibration import (
    PS_CAPACITY_ANCHORS,
    PS_SCALING_EXPONENT,
    PS_SOFTMIN_SHARPNESS,
)


def effective_cluster_speed(aggregate_worker_speed: float, ps_capacity: float,
                            sharpness: float = PS_SOFTMIN_SHARPNESS) -> float:
    """Soft minimum of worker demand and parameter-server capacity.

    Uses the p-norm soft-min ``(d^-p + c^-p)^(-1/p)``, which equals the
    smaller of the two far from the crossover and bends smoothly near it —
    matching the gradual per-worker slowdown the paper measures as clusters
    approach the bottleneck.

    Args:
        aggregate_worker_speed: Sum of the workers' uncontended speeds
            (steps/second).
        ps_capacity: Update throughput the parameter servers sustain
            (updates/second).
        sharpness: Soft-min exponent; larger values give a harder knee.
    """
    if aggregate_worker_speed <= 0:
        return 0.0
    if ps_capacity <= 0:
        raise ConfigurationError("ps_capacity must be positive")
    demand = aggregate_worker_speed
    return float((demand ** -sharpness + ps_capacity ** -sharpness) ** (-1.0 / sharpness))


class PSCapacityModel:
    """Calibrated parameter-server update-throughput model.

    Args:
        anchors: ``(gradient payload MB, updates/second)`` pairs for a
            single parameter server; interpolation is log-log piecewise
            linear between them.
        scaling_exponent: Capacity scaling with the PS count.
    """

    def __init__(self, anchors: Optional[Sequence[Tuple[float, float]]] = None,
                 scaling_exponent: float = PS_SCALING_EXPONENT):
        points = sorted(anchors if anchors is not None else PS_CAPACITY_ANCHORS)
        if len(points) < 2:
            raise ConfigurationError("at least two capacity anchors are required")
        if any(mb <= 0 or cap <= 0 for mb, cap in points):
            raise ConfigurationError("capacity anchors must be positive")
        self._log_anchors: List[Tuple[float, float]] = [
            (math.log(mb), math.log(cap)) for mb, cap in points]
        self._scaling_exponent = scaling_exponent
        # The session queries capacity for the same (payload, PS count) on
        # every scheduled chunk; the log-log interpolation is pure, so the
        # result is memoized.
        self._capacity_cache: Dict[Tuple[float, int], float] = {}

    # ------------------------------------------------------------------
    # Capacity queries.
    # ------------------------------------------------------------------
    def single_ps_capacity(self, gradient_bytes: float) -> float:
        """Updates/second one parameter server sustains for this payload.

        Args:
            gradient_bytes: Per-step gradient payload in bytes (float32
                parameter size of the model).
        """
        if gradient_bytes <= 0:
            raise ConfigurationError("gradient_bytes must be positive")
        log_mb = math.log(gradient_bytes / (1024.0 * 1024.0))
        xs = [x for x, _ in self._log_anchors]
        ys = [y for _, y in self._log_anchors]
        if log_mb <= xs[0]:
            slope = (ys[1] - ys[0]) / (xs[1] - xs[0])
            log_cap = ys[0] + slope * (log_mb - xs[0])
        elif log_mb >= xs[-1]:
            slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
            log_cap = ys[-1] + slope * (log_mb - xs[-1])
        else:
            log_cap = ys[-1]
            for i in range(len(xs) - 1):
                if xs[i] <= log_mb <= xs[i + 1]:
                    fraction = (log_mb - xs[i]) / (xs[i + 1] - xs[i])
                    log_cap = ys[i] + fraction * (ys[i + 1] - ys[i])
                    break
        return float(math.exp(log_cap))

    def capacity(self, gradient_bytes: float, num_parameter_servers: int = 1) -> float:
        """Updates/second sustained by ``num_parameter_servers`` servers."""
        if num_parameter_servers < 1:
            raise ConfigurationError("num_parameter_servers must be >= 1")
        key = (gradient_bytes, num_parameter_servers)
        cached = self._capacity_cache.get(key)
        if cached is None:
            single = self.single_ps_capacity(gradient_bytes)
            cached = float(single * num_parameter_servers ** self._scaling_exponent)
            self._capacity_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Cluster-level composition.
    # ------------------------------------------------------------------
    def cluster_speed(self, worker_speeds: Sequence[float], gradient_bytes: float,
                      num_parameter_servers: int = 1,
                      scaling_efficiencies: Optional[Sequence[float]] = None) -> float:
        """Aggregate cluster speed (steps/second) including the bottleneck.

        Args:
            worker_speeds: Uncontended per-worker speeds.
            gradient_bytes: Per-step gradient payload of the model.
            num_parameter_servers: Number of parameter servers.
            scaling_efficiencies: Optional per-worker scaling efficiencies
                (the Fig. 4 GPU-saturation penalty); the fastest worker
                always contributes fully, additional workers contribute
                ``speed * efficiency``.
        """
        speeds = list(worker_speeds)
        if not speeds:
            return 0.0
        if scaling_efficiencies is None:
            aggregate = sum(speeds)
        else:
            efficiencies = list(scaling_efficiencies)
            if len(efficiencies) != len(speeds):
                raise ConfigurationError(
                    "scaling_efficiencies must match worker_speeds in length")
            # The first (fastest) worker contributes fully; the penalty only
            # limits how much *additional* workers help.
            order = sorted(range(len(speeds)), key=lambda i: -speeds[i])
            aggregate = 0.0
            for rank, index in enumerate(order):
                factor = 1.0 if rank == 0 else efficiencies[index]
                aggregate += speeds[index] * factor
        cap = self.capacity(gradient_bytes, num_parameter_servers)
        return effective_cluster_speed(aggregate, cap)

    def utilization(self, worker_speeds: Sequence[float], gradient_bytes: float,
                    num_parameter_servers: int = 1) -> float:
        """Parameter-server utilization (demand / capacity), clipped to [0, 1.5]."""
        demand = sum(worker_speeds)
        cap = self.capacity(gradient_bytes, num_parameter_servers)
        return float(min(1.5, demand / cap))

    def worker_slowdown(self, worker_speeds: Sequence[float], gradient_bytes: float,
                        num_parameter_servers: int = 1,
                        scaling_efficiencies: Optional[Sequence[float]] = None) -> float:
        """Multiplicative per-worker step-time inflation due to the bottleneck.

        When the cluster is PS-bound, every worker's effective step time
        stretches by the same factor (asynchronous training shares the PS
        fairly); this returns that factor (>= 1).
        """
        speeds = list(worker_speeds)
        if not speeds:
            return 1.0
        aggregate = sum(speeds)
        effective = self.cluster_speed(speeds, gradient_bytes, num_parameter_servers,
                                       scaling_efficiencies)
        if effective <= 0:
            return 1.0
        return float(max(1.0, aggregate / effective))
