"""Ground-truth checkpoint-time model.

The paper instruments TensorFlow's checkpointing function and finds
(Section IV-B, Fig. 5) that checkpoint time grows with checkpoint size,
varies little between repetitions (CoV 0.018-0.073), runs on the CPU of the
chief worker only, and happens *sequentially* with training — 100 training
steps take exactly one checkpoint-time longer when a checkpoint falls in
the window.

The model is linear in the total checkpoint size and calibrated to the
paper's ResNet-32 anchor (3.84 +- 0.25 seconds).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.calibration import (
    CHECKPOINT_ANCHOR_MODEL,
    CHECKPOINT_ANCHOR_SECONDS,
    CHECKPOINT_TIME_BASE_SECONDS,
    CHECKPOINT_TIME_COV,
)
from repro.workloads.checkpoints import CheckpointFiles


def _default_seconds_per_mb() -> float:
    """Derive the linear slope from the ResNet-32 anchor of the catalog."""
    # Imported lazily to keep repro.perf importable without building the
    # catalog (and to avoid an import cycle at module load time).
    from repro.workloads.catalog import default_catalog

    anchor = default_catalog().profile(CHECKPOINT_ANCHOR_MODEL)
    anchor_mb = anchor.checkpoint.total_mb
    if anchor_mb <= 0:
        raise ConfigurationError("anchor checkpoint size must be positive")
    return (CHECKPOINT_ANCHOR_SECONDS - CHECKPOINT_TIME_BASE_SECONDS) / anchor_mb


class CheckpointTimeModel:
    """Calibrated checkpoint-duration ground truth.

    Args:
        rng: Random generator used when sampling noisy durations.
        base_seconds: Fixed per-checkpoint cost.
        seconds_per_mb: Linear cost per MB of checkpoint data; derived from
            the paper's ResNet-32 anchor when omitted.
        cov: Relative variability of repeated checkpoints.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 base_seconds: float = CHECKPOINT_TIME_BASE_SECONDS,
                 seconds_per_mb: Optional[float] = None,
                 cov: float = CHECKPOINT_TIME_COV):
        if base_seconds < 0:
            raise ConfigurationError("base_seconds must be non-negative")
        if cov < 0:
            raise ConfigurationError("cov must be non-negative")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.base_seconds = base_seconds
        self.seconds_per_mb = (seconds_per_mb if seconds_per_mb is not None
                               else _default_seconds_per_mb())
        if self.seconds_per_mb <= 0:
            raise ConfigurationError("seconds_per_mb must be positive")
        self.cov = cov

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def mean_time(self, checkpoint: CheckpointFiles) -> float:
        """Mean checkpoint duration in seconds for the given file sizes."""
        return self.mean_time_for_bytes(checkpoint.total_bytes)

    def mean_time_for_bytes(self, total_bytes: float) -> float:
        """Mean checkpoint duration for a raw total size in bytes."""
        if total_bytes < 0:
            raise ConfigurationError("total_bytes must be non-negative")
        total_mb = total_bytes / (1024.0 * 1024.0)
        return float(self.base_seconds + self.seconds_per_mb * total_mb)

    def sample_time(self, checkpoint: CheckpointFiles) -> float:
        """Sample one noisy checkpoint duration."""
        mean = self.mean_time(checkpoint)
        sample = self._rng.normal(mean, mean * self.cov)
        return float(max(mean * 0.5, sample))
