"""Calibrated hardware performance ground truth.

These models play the role of the physical testbed: they answer "how long
does a training step / checkpoint / worker replacement actually take?" for
the simulator.  Every model is calibrated against the numbers the paper
publishes (Tables I and III, Figs. 2, 4, 5, 10, 11, 12) so the measurement
campaigns recover the paper's observations, and every calibration constant
lives in :mod:`repro.perf.calibration` for inspection.

The distinction between :mod:`repro.perf` (ground truth fed to the
simulator) and :mod:`repro.modeling` (regression models *fitted to
measurements*, the paper's contribution) mirrors the paper's distinction
between the physical testbed and its learned performance models.
"""

from repro.perf.calibration import (
    PAPER_TABLE1_SPEEDS,
    STEP_TIME_ANCHORS,
    PS_CAPACITY_ANCHORS,
)
from repro.perf.step_time import StepTimeModel
from repro.perf.ps_capacity import PSCapacityModel, effective_cluster_speed
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.network import NetworkModel
from repro.perf.replacement import ReplacementOverheadModel, ReplacementBreakdown
from repro.perf.recomputation import RecomputationModel

__all__ = [
    "PAPER_TABLE1_SPEEDS",
    "STEP_TIME_ANCHORS",
    "PS_CAPACITY_ANCHORS",
    "StepTimeModel",
    "PSCapacityModel",
    "effective_cluster_speed",
    "CheckpointTimeModel",
    "NetworkModel",
    "ReplacementOverheadModel",
    "ReplacementBreakdown",
    "RecomputationModel",
]
