"""Network model between cloud servers.

The paper keeps parameter servers, workers, and checkpoint storage in the
same data center, noting that parameter servers are "often bound by network
communication" and that cross-region placement would add latency.  The
network model provides same-region and cross-region latency/bandwidth so
users can explore placements the paper warns about; the default campaign
configurations never cross regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.regions import get_region
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinkCharacteristics:
    """Round-trip latency (seconds) and bandwidth (bytes/second) of a link."""

    rtt_seconds: float
    bandwidth_bytes_per_second: float


#: Same-zone link: sub-millisecond RTT, ~16 Gbit/s effective.
_SAME_REGION = LinkCharacteristics(rtt_seconds=0.0008,
                                   bandwidth_bytes_per_second=2.0e9)
#: Same-continent link.
_SAME_CONTINENT = LinkCharacteristics(rtt_seconds=0.035,
                                      bandwidth_bytes_per_second=400e6)
#: Cross-continent link.
_CROSS_CONTINENT = LinkCharacteristics(rtt_seconds=0.120,
                                       bandwidth_bytes_per_second=150e6)


class NetworkModel:
    """Latency/bandwidth estimates between regions."""

    def link(self, region_a: str, region_b: str) -> LinkCharacteristics:
        """Link characteristics between two regions."""
        a = get_region(region_a)
        b = get_region(region_b)
        if a.name == b.name:
            return _SAME_REGION
        if a.continent == b.continent:
            return _SAME_CONTINENT
        return _CROSS_CONTINENT

    def transfer_time(self, size_bytes: float, region_a: str, region_b: str) -> float:
        """Seconds to move ``size_bytes`` between the two regions."""
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        link = self.link(region_a, region_b)
        return link.rtt_seconds + size_bytes / link.bandwidth_bytes_per_second

    def gradient_push_time(self, gradient_bytes: float, worker_region: str,
                           ps_region: str) -> float:
        """Seconds for one gradient push plus parameter pull."""
        # Push gradients and pull fresh parameters: two transfers plus RTTs.
        return 2.0 * self.transfer_time(gradient_bytes, worker_region, ps_region)
