"""Calibration constants for the hardware ground-truth models.

Every constant in this module is traceable to a number the paper reports;
the table/figure it comes from is noted next to each entry.  The rest of
:mod:`repro.perf` interpolates between these anchors.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# Training speed (Table I): steps/second for one GPU worker plus one
# parameter server in the same data center, by (GPU, model).
# ---------------------------------------------------------------------------
#: ``{gpu: {model: (mean steps/s, std steps/s)}}`` straight from Table I.
PAPER_TABLE1_SPEEDS: Dict[str, Dict[str, Tuple[float, float]]] = {
    "k80": {
        "resnet_15": (9.46, 0.19),
        "resnet_32": (4.56, 0.08),
        "shake_shake_small": (2.58, 0.02),
        "shake_shake_big": (0.70, 0.002),
    },
    "p100": {
        "resnet_15": (21.16, 0.47),
        "resnet_32": (12.19, 0.41),
        "shake_shake_small": (6.99, 0.35),
        "shake_shake_big": (1.98, 0.03),
    },
    "v100": {
        "resnet_15": (27.38, 0.88),
        "resnet_32": (15.61, 0.38),
        "shake_shake_small": (8.80, 0.24),
        "shake_shake_big": (2.18, 0.04),
    },
}

#: Model complexity (GFLOPs per image) the paper reports for the four named
#: models (Table I caption); used as the x-coordinates of the step-time
#: anchors.
PAPER_MODEL_GFLOPS: Dict[str, float] = {
    "resnet_15": 0.59,
    "resnet_32": 1.54,
    "shake_shake_small": 2.41,
    "shake_shake_big": 21.3,
}

#: Step-time anchors per GPU: sorted ``(gflops, seconds per step)`` pairs
#: derived from Table I (step time is the inverse of training speed).
STEP_TIME_ANCHORS: Dict[str, List[Tuple[float, float]]] = {
    gpu: sorted(
        (PAPER_MODEL_GFLOPS[model], 1.0 / mean)
        for model, (mean, _std) in speeds.items()
    )
    for gpu, speeds in PAPER_TABLE1_SPEEDS.items()
}

#: Relative step-time noise (coefficient of variation) per GPU for a
#: single-worker cluster.  Derived from the standard deviations of Table I
#: and the "maximum coefficient of variation of 0.02" observation (Fig. 2).
STEP_TIME_NOISE_COV: Dict[str, float] = {
    "k80": 0.014,
    "p100": 0.025,
    "v100": 0.030,
}

#: Additional step-time variability introduced by parameter-server
#: contention as the cluster approaches the PS bottleneck.  Table III shows
#: the per-worker coefficient of variation growing from 0.019 to 0.094 for
#: P100 clusters as the cluster size reaches eight workers; the extra CoV is
#: modeled as ``PS_CONTENTION_COV * utilization``.
PS_CONTENTION_COV = 0.085

# ---------------------------------------------------------------------------
# Parameter-server capacity (Table III, Figs. 4 and 12).
# ---------------------------------------------------------------------------
#: Anchors mapping the per-step gradient payload (MB of float32 parameters)
#: to the maximum model-update throughput (updates/second) one parameter
#: server sustains.  The gradient sizes correspond to the four named models
#: of the default catalog; the capacities are chosen so that:
#:  * K80 ResNet-32 clusters of up to 8 workers never hit the bottleneck,
#:  * P100 ResNet-32 clusters saturate around 8 workers and V100 around 4
#:    (Table III),
#:  * ResNet-15 keeps scaling through 8 P100 workers while ResNet-32 and
#:    Shake-Shake Small plateau after ~4 (Fig. 4).
PS_CAPACITY_ANCHORS: List[Tuple[float, float]] = [
    (4.41, 145.0),    # resnet_15 gradients
    (14.13, 42.0),    # resnet_32 gradients
    (22.33, 30.0),    # shake_shake_small gradients
    (194.64, 18.0),   # shake_shake_big gradients
]

#: Exponent governing how capacity scales with the number of parameter
#: servers: ``capacity(n_ps) = capacity(1) * n_ps ** PS_SCALING_EXPONENT``.
#: ``2 ** 0.86 = 1.82`` reproduces the "up to 70.6%" speedup of Fig. 12.
PS_SCALING_EXPONENT = 0.86

#: Sharpness of the soft-minimum between aggregate worker demand and PS
#: capacity.  Higher values give a harder knee; 8 reproduces the gradual
#: per-worker slowdowns of Table III (e.g. a 4-P100 cluster running ~7%
#: slower per worker, an 8-P100 cluster fully saturated).
PS_SOFTMIN_SHARPNESS = 8.0

#: GPU-saturation scaling penalty (Fig. 4): when the computation ratio
#: (model GFLOPs / GPU teraflops) exceeds the threshold, additional workers
#: stop contributing to cluster speed (the Shake-Shake-Big-on-P100 effect).
GPU_SATURATION_RATIO_THRESHOLD = 2.0
GPU_SATURATION_STEEPNESS = 12.0

# ---------------------------------------------------------------------------
# Checkpointing (Section IV, Fig. 5).
# ---------------------------------------------------------------------------
#: Fixed component of checkpoint time in seconds (session setup, file
#: creation, index/meta serialization).
CHECKPOINT_TIME_BASE_SECONDS = 0.5

#: The paper's anchor: checkpointing ResNet-32 takes 3.84 +- 0.25 seconds;
#: the linear slope (seconds per MB) is derived from this anchor and the
#: default catalog's ResNet-32 checkpoint size at model-construction time.
CHECKPOINT_ANCHOR_MODEL = "resnet_32"
CHECKPOINT_ANCHOR_SECONDS = 3.84

#: Coefficient of variation of checkpoint time (the paper observes 0.018 to
#: 0.073 across the twenty models).
CHECKPOINT_TIME_COV = 0.04

# ---------------------------------------------------------------------------
# Worker replacement (Fig. 10) and recomputation (Fig. 11).
# ---------------------------------------------------------------------------
#: Seconds to restart the deep-learning framework on an existing server.
REPLACEMENT_FRAMEWORK_RESTART_SECONDS = 6.0

#: Seconds to join the existing training session (RPC setup with the PS).
REPLACEMENT_SESSION_JOIN_SECONDS = 2.0

#: Training computation-graph setup cost: ``base + per_tensor * tensors +
#: per_mb * parameter_MB`` seconds.  Calibrated so ResNet-15 warm starts in
#: ~14.8 s and Shake-Shake Big costs ~15 s more than ResNet-15 (Fig. 10).
REPLACEMENT_GRAPH_SETUP_BASE_SECONDS = 1.2
REPLACEMENT_GRAPH_SETUP_PER_TENSOR_SECONDS = 0.115
REPLACEMENT_GRAPH_SETUP_PER_MB_SECONDS = 0.02

#: Overhead of restarting the whole training session when the cluster
#: membership changes in a way TensorFlow cannot absorb (Section VI-B
#: reports ~10 seconds).
SESSION_RESTART_SECONDS = 10.0
