"""JSON-lines TCP transport for the placement service.

Plain-stdlib :mod:`asyncio` framing: one request per line, one response
per line.  Requests are JSON objects with an ``op``:

* ``{"op": "answer", "query": {...}}`` — one
  :meth:`~repro.modeling.placement.PlacementQuery.to_params` document;
  responds with the decision's ``to_params()``.
* ``{"op": "answer_many", "queries": [{...}, ...]}`` — a batch, answered
  atomically (bit-identical to sequential singles).
* ``{"op": "stats"}`` — service counters.
* ``{"op": "health"}`` — liveness probe: service uptime, calibration
  epoch, and the transport's connection / in-flight queue depth.
* ``{"op": "recalibrate", "calibration": {...}}`` — one
  :meth:`~repro.telemetry.recalibrate.RecalibrationResult.to_params`
  document; swaps the advisor onto the refit calibration, bumps the
  calibration epoch, and drops every cached decision.

Every response line is ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "...", "code": "..."}``; malformed input
answers an error line instead of killing the connection, so one bad
client request cannot take down the stream for the rest.  Error codes
are structural, not prose — clients branch on them:

``bad_request``
    The request itself is wrong (unknown op, malformed document).
    Retrying verbatim can never succeed.
``timeout``
    Dispatch exceeded :attr:`ServerConfig.request_timeout`.  The server
    stays up; the client may retry idempotent ops.
``overloaded``
    The connection cap (:attr:`ServerConfig.max_connections`) is hit;
    the server refuses the connection after answering this one line.
    Back off and retry.
``internal``
    An unexpected server-side failure; logged server-side, safe to
    retry idempotent ops.

Hardening knobs live on :class:`ServerConfig`; clients that need to
survive transient faults use :func:`request_with_retry`, which retries
connect errors, timeouts, mid-response closes, and ``overloaded``
replies with exponential backoff and seeded jitter — but only when every
op in the batch is idempotent (:data:`IDEMPOTENT_OPS`), because blindly
resending a ``recalibrate`` would double-apply it.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import chaos
from repro.errors import ConfigurationError, ReproError
from repro.modeling.placement import PlacementQuery
from repro.serve.service import PlacementService

#: Maximum request-line length (a 4096-cell batch fits comfortably).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Ops that are safe to resend verbatim: answering a query twice yields
#: the same decision, and reads have no side effects.  ``recalibrate``
#: is deliberately absent — resending it bumps the epoch again.
IDEMPOTENT_OPS = frozenset({"answer", "answer_many", "stats", "health"})


class TransportError(ReproError):
    """The server closed a connection mid-conversation (retryable)."""


@dataclass(frozen=True)
class ServerConfig:
    """Hardening knobs for :func:`start_server`.

    Args:
        request_timeout: Seconds one request may spend in dispatch before
            the server answers a ``timeout`` error line instead.
        max_connections: Concurrent-connection cap; connection number
            ``max_connections + 1`` is answered with one ``overloaded``
            error line and closed (backpressure, not a silent drop).
    """

    request_timeout: float = 30.0
    max_connections: int = 64

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {self.request_timeout}")
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {self.max_connections}")


class ServerState:
    """Live transport counters (one per started server).

    ``connections`` and ``in_flight`` are the queue-depth numbers the
    ``health`` op reports; the chaos monitors implement the
    ``serve_reset`` / ``serve_hang`` fault kinds when a plan is active.
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self.connections = 0
        self.in_flight = 0
        self.requests_seen = 0
        self.rejected_connections = 0
        self.started_monotonic = time.monotonic()
        plan = chaos.active_plan()
        self.reset_monitor = (plan.monitor("serve_reset")
                              if plan is not None else None)
        self.hang_monitor = (plan.monitor("serve_hang")
                             if plan is not None else None)

    def health(self, service: PlacementService) -> Dict[str, Any]:
        document = service.health()
        document.update({
            "connections": self.connections,
            "in_flight": self.in_flight,
            "requests_seen": self.requests_seen,
            "rejected_connections": self.rejected_connections,
            "max_connections": self.config.max_connections,
            "request_timeout_seconds": self.config.request_timeout,
        })
        return document


async def handle_request(service: PlacementService,
                         request: Dict[str, Any],
                         state: Optional[ServerState] = None) -> Any:
    """Dispatch one decoded request document; returns the result payload."""
    operation = request.get("op")
    if operation == "answer":
        query = PlacementQuery.from_params(request.get("query") or {})
        decision = await service.answer(query)
        return decision.to_params()
    if operation == "answer_many":
        queries = [PlacementQuery.from_params(document)
                   for document in request.get("queries") or []]
        decisions = await service.answer_many(queries)
        return [decision.to_params() for decision in decisions]
    if operation == "stats":
        return service.stats()
    if operation == "health":
        if state is not None:
            return state.health(service)
        return service.health()
    if operation == "recalibrate":
        from repro.telemetry.recalibrate import RecalibrationResult
        document = request.get("calibration")
        if not isinstance(document, dict):
            raise ReproError(
                "recalibrate requires a 'calibration' object (a "
                "RecalibrationResult.to_params() document)")
        return service.recalibrate(RecalibrationResult.from_params(document))
    raise ReproError(f"unknown op {operation!r}; expected answer, "
                     f"answer_many, stats, health, or recalibrate")


async def _dispatch(service: PlacementService, request: Dict[str, Any],
                    state: ServerState) -> Any:
    """One request through the chaos gate and the service.

    The ``serve_hang`` sleep lives *inside* this coroutine so it burns
    the same :func:`asyncio.wait_for` window a genuinely slow dispatch
    would — the timeout path under test is the real one.
    """
    if state.hang_monitor:
        fault = state.hang_monitor.tick()
        if fault is not None:
            seconds = (fault.seconds if fault.seconds is not None
                       else chaos.plan.DEFAULT_HANG_SECONDS)
            chaos.log_event("injected_serve_hang", fault=fault.to_entry(),
                            seconds=seconds)
            await asyncio.sleep(seconds)
    return await handle_request(service, request, state)


def _error_response(exc: BaseException, code: str) -> Dict[str, Any]:
    return {"ok": False, "error": str(exc) or repr(exc), "code": code}


async def _handle_connection(service: PlacementService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             state: ServerState) -> None:
    if state.connections >= state.config.max_connections:
        # Backpressure, loudly: one structured line, then close.  A
        # silent drop would be indistinguishable from a network fault.
        state.rejected_connections += 1
        response = _error_response(
            ReproError(f"connection limit ({state.config.max_connections}) "
                       f"reached; retry after backoff"), "overloaded")
        try:
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - racing peer
            pass
        writer.close()
        return
    state.connections += 1
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            state.requests_seen += 1
            if state.reset_monitor:
                fault = state.reset_monitor.tick()
                if fault is not None:
                    chaos.log_event("injected_serve_reset",
                                    fault=fault.to_entry(),
                                    request=state.requests_seen)
                    # Close without replying: the client sees a
                    # mid-response EOF (TransportError) and must retry.
                    break
            state.in_flight += 1
            try:
                request = json.loads(text)
                if not isinstance(request, dict):
                    raise ReproError("a request must be a JSON object")
                result = await asyncio.wait_for(
                    _dispatch(service, request, state),
                    state.config.request_timeout)
                response = {"ok": True, "result": result}
            except asyncio.TimeoutError:
                response = _error_response(
                    ReproError(f"request timed out after "
                               f"{state.config.request_timeout:g}s"),
                    "timeout")
            except (ReproError, ValueError, TypeError, KeyError) as exc:
                response = _error_response(exc, "bad_request")
            except Exception as exc:  # pragma: no cover - defensive
                response = _error_response(exc, "internal")
            finally:
                state.in_flight -= 1
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
    finally:
        state.connections -= 1
        # No ``wait_closed()`` here: the handler task itself is cancelled
        # when the server shuts down, and awaiting the closing transport
        # from inside the dying task just raises CancelledError into the
        # event loop's exception handler.  ``close()`` is enough — the
        # loop finishes the transport teardown on its own.
        writer.close()


async def start_server(service: PlacementService, host: str = "127.0.0.1",
                       port: int = 0,
                       config: Optional[ServerConfig] = None
                       ) -> asyncio.AbstractServer:
    """Start the JSON-lines server; ``port=0`` picks a free port.

    The bound address is ``server.sockets[0].getsockname()``; close with
    ``server.close()`` + ``await server.wait_closed()``.  The live
    :class:`ServerState` is retrievable via :func:`server_state` (the
    ``health`` op reads it too).
    """
    state = ServerState(config if config is not None else ServerConfig())

    async def connection(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer, state)

    server = await asyncio.start_server(connection, host=host, port=port,
                                        limit=MAX_LINE_BYTES)
    server.repro_state = state  # type: ignore[attr-defined]
    return server


def server_state(server: asyncio.AbstractServer) -> ServerState:
    """The :class:`ServerState` attached by :func:`start_server`."""
    return server.repro_state  # type: ignore[attr-defined]


async def request(host: str, port: int,
                  documents: List[Dict[str, Any]],
                  timeout: Optional[float] = 30.0) -> List[Dict[str, Any]]:
    """Client helper: send request documents, return the response documents.

    Opens one connection, pipelines every request in order, and reads one
    response line per request (the server answers in order).  A
    connection that closes before every response arrives raises
    :class:`TransportError` (retryable — see :func:`request_with_retry`).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host=host, port=port, limit=MAX_LINE_BYTES),
        timeout)
    try:
        payload = b"".join(json.dumps(document).encode("utf-8") + b"\n"
                           for document in documents)
        writer.write(payload)
        await writer.drain()
        responses = []
        for _ in documents:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                raise TransportError(
                    "server closed the connection mid-response")
            responses.append(json.loads(line.decode("utf-8")))
        return responses
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


def _is_overloaded(responses: List[Dict[str, Any]]) -> bool:
    return any(not response.get("ok")
               and response.get("code") == "overloaded"
               for response in responses)


async def request_with_retry(host: str, port: int,
                             documents: List[Dict[str, Any]], *,
                             timeout: Optional[float] = 30.0,
                             retries: int = 3,
                             backoff_seconds: float = 0.1,
                             max_backoff_seconds: float = 2.0,
                             jitter_seed: Optional[int] = None
                             ) -> List[Dict[str, Any]]:
    """:func:`request` with exponential backoff for transient faults.

    Retries connect errors (``OSError``), client-side timeouts,
    mid-response closes (:class:`TransportError`), and ``overloaded``
    replies — up to ``retries`` extra attempts, sleeping
    ``min(max_backoff, backoff * 2**attempt)`` scaled by a jitter factor
    in ``[0.5, 1.5)``.  The jitter stream is seeded (``jitter_seed``,
    defaulting to the active chaos plan's seed), so chaos runs back off
    deterministically.

    Only batches whose every op is in :data:`IDEMPOTENT_OPS` are
    retried; anything else (``recalibrate``) gets exactly one attempt,
    because resending a mutation the server may already have applied is
    worse than surfacing the fault.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    idempotent = all(document.get("op") in IDEMPOTENT_OPS
                     for document in documents)
    attempts = retries + 1 if idempotent else 1
    if jitter_seed is None:
        plan = chaos.active_plan()
        jitter_seed = plan.seed if plan is not None else 0
    rng = random.Random(jitter_seed)
    last_error: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            responses = await request(host, port, documents, timeout=timeout)
            if _is_overloaded(responses) and attempt + 1 < attempts:
                last_error = ReproError("server overloaded")
            else:
                return responses
        except (OSError, asyncio.TimeoutError, TransportError) as exc:
            if attempt + 1 >= attempts:
                raise
            last_error = exc
        delay = min(max_backoff_seconds, backoff_seconds * (2 ** attempt))
        delay *= 0.5 + rng.random()
        chaos.log_event("client_retry", attempt=attempt + 1,
                        delay_seconds=delay,
                        error=str(last_error) or repr(last_error))
        await asyncio.sleep(delay)
    raise ReproError(  # pragma: no cover - loop always returns or raises
        f"retry loop exhausted after {attempts} attempts: {last_error}")


def serve_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    """The ``(host, port)`` a started server is listening on."""
    host, port = server.sockets[0].getsockname()[:2]
    return host, port
