"""JSON-lines TCP transport for the placement service.

Plain-stdlib :mod:`asyncio` framing: one request per line, one response
per line.  Requests are JSON objects with an ``op``:

* ``{"op": "answer", "query": {...}}`` — one
  :meth:`~repro.modeling.placement.PlacementQuery.to_params` document;
  responds with the decision's ``to_params()``.
* ``{"op": "answer_many", "queries": [{...}, ...]}`` — a batch, answered
  atomically (bit-identical to sequential singles).
* ``{"op": "stats"}`` — service counters.
* ``{"op": "recalibrate", "calibration": {...}}`` — one
  :meth:`~repro.telemetry.recalibrate.RecalibrationResult.to_params`
  document; swaps the advisor onto the refit calibration, bumps the
  calibration epoch, and drops every cached decision.

Every response line is ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "..."}``; malformed input answers an error line
instead of killing the connection, so one bad client request cannot take
down the stream for the rest.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.modeling.placement import PlacementQuery
from repro.serve.service import PlacementService

#: Maximum request-line length (a 4096-cell batch fits comfortably).
MAX_LINE_BYTES = 4 * 1024 * 1024


async def handle_request(service: PlacementService,
                         request: Dict[str, Any]) -> Any:
    """Dispatch one decoded request document; returns the result payload."""
    operation = request.get("op")
    if operation == "answer":
        query = PlacementQuery.from_params(request.get("query") or {})
        decision = await service.answer(query)
        return decision.to_params()
    if operation == "answer_many":
        queries = [PlacementQuery.from_params(document)
                   for document in request.get("queries") or []]
        decisions = await service.answer_many(queries)
        return [decision.to_params() for decision in decisions]
    if operation == "stats":
        return service.stats()
    if operation == "recalibrate":
        from repro.telemetry.recalibrate import RecalibrationResult
        document = request.get("calibration")
        if not isinstance(document, dict):
            raise ReproError(
                "recalibrate requires a 'calibration' object (a "
                "RecalibrationResult.to_params() document)")
        return service.recalibrate(RecalibrationResult.from_params(document))
    raise ReproError(f"unknown op {operation!r}; "
                     f"expected answer, answer_many, stats, or recalibrate")


async def _handle_connection(service: PlacementService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
                if not isinstance(request, dict):
                    raise ReproError("a request must be a JSON object")
                result = await handle_request(service, request)
                response = {"ok": True, "result": result}
            except (ReproError, ValueError, TypeError, KeyError) as exc:
                response = {"ok": False, "error": str(exc) or repr(exc)}
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
    finally:
        # No ``wait_closed()`` here: the handler task itself is cancelled
        # when the server shuts down, and awaiting the closing transport
        # from inside the dying task just raises CancelledError into the
        # event loop's exception handler.  ``close()`` is enough — the
        # loop finishes the transport teardown on its own.
        writer.close()


async def start_server(service: PlacementService, host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.AbstractServer:
    """Start the JSON-lines server; ``port=0`` picks a free port.

    The bound address is ``server.sockets[0].getsockname()``; close with
    ``server.close()`` + ``await server.wait_closed()``.
    """

    async def connection(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(connection, host=host, port=port,
                                      limit=MAX_LINE_BYTES)


async def request(host: str, port: int,
                  documents: List[Dict[str, Any]],
                  timeout: Optional[float] = 30.0) -> List[Dict[str, Any]]:
    """Client helper: send request documents, return the response documents.

    Opens one connection, pipelines every request in order, and reads one
    response line per request (the server answers in order).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host=host, port=port, limit=MAX_LINE_BYTES),
        timeout)
    try:
        payload = b"".join(json.dumps(document).encode("utf-8") + b"\n"
                           for document in documents)
        writer.write(payload)
        await writer.drain()
        responses = []
        for _ in documents:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if not line:
                raise ReproError("server closed the connection mid-response")
            responses.append(json.loads(line.decode("utf-8")))
        return responses
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


def serve_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    """The ``(host, port)`` a started server is listening on."""
    host, port = server.sockets[0].getsockname()[:2]
    return host, port
