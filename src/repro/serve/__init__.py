"""Online placement service: the launch advisor behind a query API.

``repro.serve`` turns the pool-aware placement advisor into a
long-running service answering :class:`~repro.modeling.placement
.PlacementQuery` requests against live pool state — the ROADMAP's
"placement advisor as an online service" item.  The design rests on the
decomposition production inference schedulers use to keep admission
decisions off the hot path, splitting every placement answer into:

* **Score computation** — the calibrated revocation score of each
  ``(gpu, region, hour)`` cell.  Expensive but *pure*: it depends only on
  the calibration, seed, and sample count, never on the pool.  The
  service's :class:`~repro.modeling.placement.ScoreTable` precomputes all
  cells vectorized at startup (:meth:`PlacementService.warm`) and the
  table survives arbitrary pool churn — it is never invalidated.
* **Pool-state reads** — availability and queue pressure, read through a
  versioned frozen :class:`~repro.scenarios.pool.PoolSnapshot`.  Cheap
  but *volatile*: any pool transition bumps the pool's version counter.

Decision caching follows the same split: answered decisions are cached by
query, keyed to the pool version they were computed at, and the whole
decision cache is discarded the moment the pool version moves — a stale
epoch is structurally unservable, while score tables carry over untouched.

:class:`PlacementService` is the in-process core (sync ``answer_now``,
async ``answer`` / ``answer_many``; the batch endpoint is bit-identical to
sequential single queries).  :mod:`repro.serve.transport` adds a JSON-lines
TCP front end on plain :mod:`asyncio`, and :mod:`repro.serve.cli` the
``repro-serve`` console entry point.  See ``examples/serve_queries.py``
for the service driven against a churning fleet pool, and
``benchmarks/serve_baseline.py`` for the load-generator benchmark behind
``BENCH_serve.json``.

Hardening (PR 9): the transport enforces a per-request dispatch timeout
and a concurrent-connection cap (:class:`~repro.serve.transport
.ServerConfig`), answers every failure with a structured error code
(``bad_request`` / ``timeout`` / ``overloaded`` / ``internal``), exposes
a ``health`` op (service uptime + epoch merged with transport queue
depth), and drains gracefully on SIGTERM (``repro-serve serve
--drain-seconds``).  Clients survive transient faults via
:func:`~repro.serve.transport.request_with_retry` — exponential backoff
with seeded jitter, applied only to idempotent ops.  The
:mod:`repro.chaos` harness injects connection resets (``serve_reset``)
and dispatch hangs (``serve_hang``) to pin these paths in
``tests/test_serve.py`` and the CI chaos-smoke job.
"""

from repro.serve.service import PlacementService

__all__ = ["PlacementService"]
