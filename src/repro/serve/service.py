"""The in-process placement service (see the package docstring).

:class:`PlacementService` wraps one :class:`~repro.modeling.launch_advisor
.LaunchAdvisor` and an optional pool, caches decisions per pool version,
and exposes the async endpoints the transport layer serves.  All real work
is synchronous and deterministic — the async surface exists for request
interleaving at the transport, not for parallel scoring — which is what
makes ``answer_many`` trivially bit-identical to a sequential loop of
single queries: it *is* that loop, with no await between items, so no pool
transition can slip between two queries of one batch.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementDecision, PlacementQuery


class PlacementService:
    """Answers placement queries against an advisor and (optionally) a pool.

    Args:
        advisor: The advisor whose ``answer()`` does the scoring; a default
            calibrated one when omitted.
        pool: Optional live :class:`~repro.scenarios.pool.TransientPool`.
            Every query is answered against a fresh snapshot of it; without
            a pool, queries run poolless (always feasible, probability-only
            scores).
        seed: Seed for the default advisor (ignored when ``advisor`` is
            given).
        samples_per_option: Sample count for the default advisor (ignored
            when ``advisor`` is given).
    """

    def __init__(self, advisor: Optional[LaunchAdvisor] = None,
                 pool=None, seed: int = 0, samples_per_option: int = 400):
        self.advisor = advisor if advisor is not None else LaunchAdvisor(
            samples_per_option=samples_per_option, seed=seed)
        self.pool = pool
        #: Decisions answered at `_cache_version`; discarded wholesale when
        #: the pool version moves, so a stale epoch is structurally
        #: unservable (tested in ``tests/test_serve.py``).
        self._decisions: Dict[PlacementQuery, PlacementDecision] = {}
        self._cache_version: Optional[int] = None
        self.queries_answered = 0
        self.cache_hits = 0
        self.cache_invalidations = 0
        self.recalibrations = 0
        #: Bumped by :meth:`recalibrate`; cached decisions are only valid
        #: within one calibration epoch, so a bump drops them all.
        self.calibration_epoch = 0
        #: Monotonic construction instant; the ``health`` op reports
        #: uptime relative to it.
        self.started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Warm-up.
    # ------------------------------------------------------------------
    def warm(self) -> int:
        """Precompute the score table for every ``(gpu, region, hour)`` cell.

        Returns the number of options built.  After warming, steady-state
        queries never run Monte-Carlo sampling — the hot path is a rank
        lookup plus snapshot reads.
        """
        return self.advisor.score_table.warm()

    # ------------------------------------------------------------------
    # Online recalibration.
    # ------------------------------------------------------------------
    def recalibrate(self, result) -> Dict[str, object]:
        """Swap in a refit calibration and invalidate every cached decision.

        Args:
            result: A :class:`repro.telemetry.recalibrate.RecalibrationResult`
                (observed cells are merged over the stock calibration by its
                ``advisor()`` builder).

        The advisor is rebuilt with the same sampling configuration
        (samples, seed, backend) on the refit revocation model, the
        decision cache epoch is bumped, and the cache is dropped — a
        decision scored under the old calibration must never answer a
        post-recalibration query.

        Returns:
            A summary: the new calibration epoch plus the refit cell and
            profile counts.
        """
        self.advisor = result.advisor(
            samples_per_option=self.advisor.samples_per_option,
            seed=self.advisor.seed,
            score_backend=self.advisor.score_backend)
        if self._decisions:
            self.cache_invalidations += 1
        self._decisions.clear()
        self._cache_version = None
        self.recalibrations += 1
        self.calibration_epoch += 1
        return {
            "calibration_epoch": self.calibration_epoch,
            "cells_refit": len(result.calibration),
            "weight_profiles_refit": len(result.hourly_weights),
        }

    # ------------------------------------------------------------------
    # Query endpoints.
    # ------------------------------------------------------------------
    def answer_now(self, query: PlacementQuery) -> PlacementDecision:
        """Answer one query synchronously (the core all endpoints share)."""
        if not isinstance(query, PlacementQuery):
            raise ConfigurationError(
                "answer_now expects a PlacementQuery; build one with "
                "PlacementQuery(...) or PlacementQuery.from_params(...)")
        version = self.pool.version if self.pool is not None else None
        if version != self._cache_version:
            # The pool moved since the cache was filled: every cached
            # decision describes a dead epoch.  Drop them all.
            if self._decisions:
                self.cache_invalidations += 1
            self._decisions.clear()
            self._cache_version = version
        self.queries_answered += 1
        decision = self._decisions.get(query)
        if decision is not None:
            self.cache_hits += 1
            return decision
        snapshot = self.pool.snapshot() if self.pool is not None else None
        decision = self.advisor.answer(query, pool=snapshot)
        self._decisions[query] = decision
        return decision

    async def answer(self, query: PlacementQuery) -> PlacementDecision:
        """Answer one query (async endpoint)."""
        return self.answer_now(query)

    async def answer_many(self, queries: Iterable[PlacementQuery]
                          ) -> List[PlacementDecision]:
        """Answer a batch of queries, bit-identical to sequential singles.

        The loop never awaits between items, so the whole batch answers
        against one pool epoch — exactly what a caller issuing the same
        queries back-to-back through :meth:`answer` would see when the
        pool does not move between them.
        """
        return [self.answer_now(query) for query in queries]

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Liveness summary: uptime, epoch, and cache/answer counters.

        The transport layer (``{"op": "health"}``) merges its own queue
        depth on top of this document; the service-level view is what an
        in-process embedder probes.
        """
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "calibration_epoch": self.calibration_epoch,
            "queries_answered": self.queries_answered,
            "cached_decisions": len(self._decisions),
            "pool_version": (self.pool.version
                             if self.pool is not None else None),
        }

    def stats(self) -> Dict[str, object]:
        """JSON-encodable service counters."""
        return {
            "queries_answered": self.queries_answered,
            "cache_hits": self.cache_hits,
            "cache_invalidations": self.cache_invalidations,
            "cached_decisions": len(self._decisions),
            "recalibrations": self.recalibrations,
            "calibration_epoch": self.calibration_epoch,
            "pool_version": (self.pool.version
                             if self.pool is not None else None),
            "score_backend": self.advisor.score_backend,
            "score_options_built": self.advisor.score_table.options_built,
        }
