"""Command-line interface for the placement service.

Usage::

    python -m repro.serve query k80 --duration 2.0 --utc-hour 9
    python -m repro.serve query v100 --duration 8 --hours 0,8,16
    python -m repro.serve query k80 --duration 2 --utc-hour 9 \\
        --connect 127.0.0.1:7077
    python -m repro.serve serve --host 127.0.0.1 --port 7077

``query`` answers one placement question — offline against a local
advisor by default, or against a running server with ``--connect``
(connection failures and timeouts exit nonzero with a one-line
diagnostic, not a traceback).  ``serve`` starts the JSON-lines TCP front
end (see :mod:`repro.serve.transport` for the wire protocol and
hardening knobs) and runs until interrupted; SIGTERM/SIGINT trigger a
graceful drain — stop accepting, let in-flight requests finish for up to
``--drain-seconds``, then exit.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.cli import run_cli, write_json_out
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.serve.service import PlacementService
from repro.serve.transport import (
    ServerConfig,
    TransportError,
    request_with_retry,
    serve_address,
    server_state,
    start_server,
)


def _parse_hours(text: str) -> List[int]:
    try:
        return [int(token) for token in text.split(",") if token.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--hours expects comma-separated integers (got {text!r})")


def _parse_connect(text: str) -> Any:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"--connect expects HOST:PORT (got {text!r})")
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--connect expects a numeric port (got {port!r})")


def _add_advisor_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--seed", type=int, default=0, help="advisor seed")
    sub.add_argument("--samples", type=int, default=400,
                     help="Monte-Carlo samples per (region, hour) option "
                          "(default: 400)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Answer placement queries, one-shot or as a service.")
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="answer one placement query")
    query.add_argument("gpu", help="GPU type to place (e.g. k80)")
    query.add_argument("--duration", type=float, required=True,
                       metavar="HOURS", help="placement horizon in hours")
    query.add_argument("--num-workers", type=int, default=1,
                       help="cluster size (scales expected revocations)")
    query.add_argument("--regions", default=None, metavar="R1,R2",
                       help="candidate regions (default: every calibrated "
                            "region offering the GPU)")
    mode = query.add_mutually_exclusive_group(required=True)
    mode.add_argument("--hours", type=_parse_hours, default=None,
                      metavar="H1,H2",
                      help="grid mode: score these local launch hours")
    mode.add_argument("--utc-hour", type=float, default=None,
                      help="live mode: score each region at its local hour "
                           "for this UTC wall-clock hour")
    query.add_argument("--queue-weight", type=float, default=0.5,
                       help="queue-pressure penalty weight (default: 0.5)")
    query.add_argument("--connect", type=_parse_connect, default=None,
                       metavar="HOST:PORT",
                       help="send the query to a running repro-serve server "
                            "instead of answering offline")
    query.add_argument("--timeout", type=float, default=10.0,
                       help="per-attempt client timeout in seconds for "
                            "--connect (default: 10)")
    query.add_argument("--retries", type=int, default=2,
                       help="extra client attempts for --connect on connect "
                            "errors/timeouts (default: 2)")
    query.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                       help="also write the decision to a JSON file")
    _add_advisor_arguments(query)

    serve = commands.add_parser("serve", help="run the JSON-lines TCP server")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7077,
                       help="bind port (0 picks a free port)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip precomputing the score table at startup")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request server dispatch timeout in seconds "
                            "(default: 30)")
    serve.add_argument("--max-connections", type=int, default=64,
                       help="concurrent connection cap; extra connections "
                            "get one 'overloaded' error line (default: 64)")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       help="graceful-drain window on SIGTERM/SIGINT: stop "
                            "accepting, wait this long for in-flight "
                            "requests (default: 5)")
    _add_advisor_arguments(serve)
    return parser


def _build_query(args: argparse.Namespace) -> PlacementQuery:
    regions = None
    if args.regions:
        regions = tuple(token.strip() for token in args.regions.split(",")
                        if token.strip())
    return PlacementQuery(
        gpu_name=args.gpu, duration_hours=args.duration,
        num_workers=args.num_workers, region_names=regions,
        launch_hours=None if args.hours is None else tuple(args.hours),
        hour_of_day_utc=args.utc_hour, queue_weight=args.queue_weight)


def _query_remote(args: argparse.Namespace) -> int:
    """Answer one query over the wire; nonzero + one-line stderr on failure."""
    host, port = args.connect
    document = {"op": "answer", "query": _build_query(args).to_params()}
    try:
        responses = asyncio.run(request_with_retry(
            host, port, [document], timeout=args.timeout,
            retries=args.retries))
    except (ConnectionRefusedError, asyncio.TimeoutError, TransportError,
            OSError) as exc:
        reason = str(exc) or exc.__class__.__name__
        print(f"error: cannot reach placement server at {host}:{port} "
              f"({reason})", file=sys.stderr)
        return 2
    response = responses[0]
    if not response.get("ok"):
        print(f"error: server at {host}:{port} refused the query "
              f"[{response.get('code', 'unknown')}]: "
              f"{response.get('error', 'no detail')}", file=sys.stderr)
        return 2
    return _print_decision(response["result"], args, count_key="options")


def _print_decision(document: Dict[str, Any], args: argparse.Namespace, *,
                    count_key: str) -> int:
    print(json.dumps(document, indent=2, sort_keys=True))
    if args.json_out:
        write_json_out(args.json_out, document,
                       len(document.get(count_key) or ()), "ranked options")
    return 0


async def _serve_forever(args: argparse.Namespace) -> int:
    service = PlacementService(advisor=LaunchAdvisor(
        samples_per_option=args.samples, seed=args.seed))
    if not args.no_warm:
        built = service.warm()
        print(f"score table warmed: {built} (gpu, region, hour) options")
    config = ServerConfig(request_timeout=args.request_timeout,
                          max_connections=args.max_connections)
    server = await start_server(service, host=args.host, port=args.port,
                                config=config)
    host, port = serve_address(server)
    print(f"serving placement queries on {host}:{port} (JSON lines; "
          f"ops: answer, answer_many, stats, health, recalibrate)")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without loop signal handlers (e.g. Windows)
    try:
        await stop.wait()
        # Graceful drain: stop accepting first, then give in-flight
        # requests a bounded window to finish before tearing down.
        server.close()
        state = server_state(server)
        deadline = loop.time() + max(0.0, args.drain_seconds)
        while state.in_flight and loop.time() < deadline:
            await asyncio.sleep(0.05)
        print(f"drained: {state.requests_seen} requests served, "
              f"{state.in_flight} still in flight at shutdown")
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        server.close()
        await server.wait_closed()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    def body() -> int:
        if args.command == "query":
            if args.connect is not None:
                return _query_remote(args)
            advisor = LaunchAdvisor(samples_per_option=args.samples,
                                    seed=args.seed)
            decision = PlacementService(advisor=advisor).answer_now(
                _build_query(args))
            return _print_decision(decision.to_params(), args,
                                   count_key="options")
        try:
            return asyncio.run(_serve_forever(args))
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port} ({exc})",
                  file=sys.stderr)
            return 2
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            return 0

    return run_cli(body)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
