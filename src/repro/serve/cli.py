"""Command-line interface for the placement service.

Usage::

    python -m repro.serve query k80 --duration 2.0 --utc-hour 9
    python -m repro.serve query v100 --duration 8 --hours 0,8,16
    python -m repro.serve serve --host 127.0.0.1 --port 7077

``query`` answers one placement question offline and prints the ranked
decision; ``serve`` starts the JSON-lines TCP front end (see
:mod:`repro.serve.transport` for the wire protocol) and runs until
interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import List, Optional, Sequence

from repro.cli import run_cli, write_json_out
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.serve.service import PlacementService
from repro.serve.transport import serve_address, start_server


def _parse_hours(text: str) -> List[int]:
    try:
        return [int(token) for token in text.split(",") if token.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--hours expects comma-separated integers (got {text!r})")


def _add_advisor_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--seed", type=int, default=0, help="advisor seed")
    sub.add_argument("--samples", type=int, default=400,
                     help="Monte-Carlo samples per (region, hour) option "
                          "(default: 400)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Answer placement queries, one-shot or as a service.")
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="answer one placement query")
    query.add_argument("gpu", help="GPU type to place (e.g. k80)")
    query.add_argument("--duration", type=float, required=True,
                       metavar="HOURS", help="placement horizon in hours")
    query.add_argument("--num-workers", type=int, default=1,
                       help="cluster size (scales expected revocations)")
    query.add_argument("--regions", default=None, metavar="R1,R2",
                       help="candidate regions (default: every calibrated "
                            "region offering the GPU)")
    mode = query.add_mutually_exclusive_group(required=True)
    mode.add_argument("--hours", type=_parse_hours, default=None,
                      metavar="H1,H2",
                      help="grid mode: score these local launch hours")
    mode.add_argument("--utc-hour", type=float, default=None,
                      help="live mode: score each region at its local hour "
                           "for this UTC wall-clock hour")
    query.add_argument("--queue-weight", type=float, default=0.5,
                       help="queue-pressure penalty weight (default: 0.5)")
    query.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                       help="also write the decision to a JSON file")
    _add_advisor_arguments(query)

    serve = commands.add_parser("serve", help="run the JSON-lines TCP server")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7077,
                       help="bind port (0 picks a free port)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip precomputing the score table at startup")
    _add_advisor_arguments(serve)
    return parser


def _build_query(args: argparse.Namespace) -> PlacementQuery:
    regions = None
    if args.regions:
        regions = tuple(token.strip() for token in args.regions.split(",")
                        if token.strip())
    return PlacementQuery(
        gpu_name=args.gpu, duration_hours=args.duration,
        num_workers=args.num_workers, region_names=regions,
        launch_hours=None if args.hours is None else tuple(args.hours),
        hour_of_day_utc=args.utc_hour, queue_weight=args.queue_weight)


async def _serve_forever(args: argparse.Namespace) -> int:
    service = PlacementService(advisor=LaunchAdvisor(
        samples_per_option=args.samples, seed=args.seed))
    if not args.no_warm:
        built = service.warm()
        print(f"score table warmed: {built} (gpu, region, hour) options")
    server = await start_server(service, host=args.host, port=args.port)
    host, port = serve_address(server)
    print(f"serving placement queries on {host}:{port} (JSON lines; "
          f"ops: answer, answer_many, stats, recalibrate)")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        server.close()
        await server.wait_closed()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    def body() -> int:
        if args.command == "query":
            advisor = LaunchAdvisor(samples_per_option=args.samples,
                                    seed=args.seed)
            decision = PlacementService(advisor=advisor).answer_now(
                _build_query(args))
            document = decision.to_params()
            print(json.dumps(document, indent=2, sort_keys=True))
            if args.json_out:
                write_json_out(args.json_out, document,
                               len(decision.options), "ranked options")
            return 0
        try:
            return asyncio.run(_serve_forever(args))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            return 0

    return run_cli(body)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
