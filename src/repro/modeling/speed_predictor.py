"""Step-time prediction models (Table II) and cluster-speed composition.

The paper evaluates eight regression models for predicting the step time of
an individual worker:

* GPU-agnostic: a univariate model on the normalized computation ratio
  ``Cnorm = Cm / Cgpu`` and a multivariate model on ``(Cm, Cgpu)``;
* GPU-specific (one family per GPU type, here K80 and P100 as in the
  paper): a univariate linear model on the normalized model complexity
  ``Cm``, an SVR with a two-degree polynomial kernel, and an SVR with an
  RBF kernel.

Cluster speed is then composed from individual predictions (Section VI-A):
the training speed of a cluster is approximately the sum of its workers'
speeds until the parameter-server bottleneck is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cmdare.profiler import SpeedMeasurement
from repro.errors import DataError, ModelingError, NotFittedError
from repro.modeling.linear import LinearRegression
from repro.modeling.metrics import mean_absolute_error, mean_absolute_percentage_error
from repro.modeling.model_selection import cross_validate_mae, grid_search_svr, train_test_split
from repro.modeling.preprocessing import MinMaxScaler
from repro.modeling.svr import SVR
from repro.perf.ps_capacity import PSCapacityModel

#: Default SVR hyperparameters used when grid search is skipped; the values
#: sit in the middle of the paper's search ranges.
DEFAULT_SVR_C = 50.0
DEFAULT_SVR_EPSILON = 0.01


@dataclass(frozen=True)
class StepTimeModelSpec:
    """Configuration of one Table II model.

    Attributes:
        name: Row label, e.g. ``"SVR RBF Kernel, K80"``.
        feature_mode: ``"cnorm"`` (normalized computation ratio),
            ``"cm_cgpu"`` (model complexity and GPU capacity), or ``"cm"``
            (normalized model complexity).
        estimator: ``"linear"``, ``"svr_poly"``, or ``"svr_rbf"``.
        gpu_name: GPU the model is specific to, or ``None`` for GPU-agnostic
            models.
    """

    name: str
    feature_mode: str
    estimator: str
    gpu_name: Optional[str] = None


class StepTimePredictor:
    """One step-time prediction model.

    Args:
        spec: Model configuration (features, estimator, GPU specificity).
        svr_C: SVR penalty parameter.
        svr_epsilon: SVR epsilon-tube width.
    """

    def __init__(self, spec: StepTimeModelSpec, svr_C: float = DEFAULT_SVR_C,
                 svr_epsilon: float = DEFAULT_SVR_EPSILON):
        if spec.feature_mode not in ("cnorm", "cm_cgpu", "cm"):
            raise ModelingError(f"unknown feature mode {spec.feature_mode!r}")
        if spec.estimator not in ("linear", "svr_poly", "svr_rbf"):
            raise ModelingError(f"unknown estimator {spec.estimator!r}")
        self.spec = spec
        self.svr_C = svr_C
        self.svr_epsilon = svr_epsilon
        self._scaler = MinMaxScaler()
        self._model = self._make_estimator()
        self._fitted = False

    # ------------------------------------------------------------------
    # Internal construction.
    # ------------------------------------------------------------------
    def _make_estimator(self):
        if self.spec.estimator == "linear":
            return LinearRegression()
        kernel = "poly" if self.spec.estimator == "svr_poly" else "rbf"
        return SVR(kernel=kernel, C=self.svr_C, epsilon=self.svr_epsilon, degree=2)

    def _raw_features(self, gflops: np.ndarray, teraflops: np.ndarray) -> np.ndarray:
        if self.spec.feature_mode == "cnorm":
            return (gflops / teraflops).reshape(-1, 1)
        if self.spec.feature_mode == "cm_cgpu":
            return np.column_stack([gflops, teraflops])
        return gflops.reshape(-1, 1)

    def _select(self, measurements: Sequence[SpeedMeasurement]
                ) -> List[SpeedMeasurement]:
        if self.spec.gpu_name is None:
            return list(measurements)
        gpu = get_gpu(self.spec.gpu_name)
        selected = [m for m in measurements if m.gpu_name == gpu.name]
        if not selected:
            raise DataError(f"no measurements for GPU {gpu.name!r}")
        return selected

    # ------------------------------------------------------------------
    # Fitting and prediction.
    # ------------------------------------------------------------------
    def fit(self, measurements: Sequence[SpeedMeasurement]) -> "StepTimePredictor":
        """Fit the model on single-worker speed measurements."""
        selected = self._select(measurements)
        if len(selected) < 3:
            raise DataError("need at least three measurements to fit a step-time model")
        gflops = np.array([m.model_gflops for m in selected])
        teraflops = np.array([m.gpu_teraflops for m in selected])
        targets = np.array([m.step_time for m in selected])
        features = self._scaler.fit_transform(self._raw_features(gflops, teraflops))
        self._model.fit(features, targets)
        self._fitted = True
        return self

    def predict_step_time(self, model_gflops: float, gpu_name: str) -> float:
        """Predict the step time (seconds) of one worker.

        Args:
            model_gflops: Model complexity ``Cm`` in GFLOPs.
            gpu_name: GPU type of the worker.
        """
        if not self._fitted:
            raise NotFittedError("StepTimePredictor must be fitted before predicting")
        gpu = get_gpu(gpu_name)
        if self.spec.gpu_name is not None and gpu.name != get_gpu(self.spec.gpu_name).name:
            raise ModelingError(
                f"model {self.spec.name!r} is specific to {self.spec.gpu_name!r}; "
                f"asked about {gpu_name!r}")
        raw = self._raw_features(np.array([model_gflops]), np.array([gpu.teraflops]))
        features = self._scaler.transform(raw)
        prediction = float(self._model.predict(features)[0])
        # A step never takes negative time; clip tiny extrapolations.
        return max(1e-4, prediction)

    def predict_speed(self, model_gflops: float, gpu_name: str) -> float:
        """Predict the training speed (steps/second) of one worker."""
        return 1.0 / self.predict_step_time(model_gflops, gpu_name)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def evaluate(self, measurements: Sequence[SpeedMeasurement],
                 test_fraction: float = 0.2, n_splits: int = 5,
                 seed: int = 0) -> "StepTimeEvaluation":
        """Evaluate with the paper's protocol (4:1 split, k-fold CV MAE)."""
        selected = self._select(measurements)
        gflops = np.array([m.model_gflops for m in selected])
        teraflops = np.array([m.gpu_teraflops for m in selected])
        targets = np.array([m.step_time for m in selected])
        raw = self._raw_features(gflops, teraflops)
        rng = np.random.default_rng(seed)
        train_x, test_x, train_y, test_y = train_test_split(
            raw, targets, test_fraction=test_fraction, rng=rng)

        scaler = MinMaxScaler().fit(train_x)

        def factory():
            predictor = StepTimePredictor(self.spec, svr_C=self.svr_C,
                                          svr_epsilon=self.svr_epsilon)
            return predictor._make_estimator()

        cv = cross_validate_mae(factory, scaler.transform(train_x), train_y,
                                n_splits=min(n_splits, len(train_y)), rng=rng)
        final_model = self._make_estimator()
        final_model.fit(scaler.transform(train_x), train_y)
        predictions = final_model.predict(scaler.transform(test_x))
        test_mae = mean_absolute_error(test_y, predictions)
        test_mape = mean_absolute_percentage_error(test_y, predictions)
        return StepTimeEvaluation(spec=self.spec, kfold_mae=cv.mean_mae,
                                  kfold_mae_std=cv.std_mae, test_mae=test_mae,
                                  test_mape=test_mape)


@dataclass(frozen=True)
class StepTimeEvaluation:
    """One row of Table II.

    Attributes:
        spec: The evaluated model's configuration.
        kfold_mae: Mean k-fold cross-validation MAE (seconds).
        kfold_mae_std: Standard deviation across folds.
        test_mae: MAE on the held-out test split (seconds).
        test_mape: MAPE on the held-out test split (percent).
    """

    spec: StepTimeModelSpec
    kfold_mae: float
    kfold_mae_std: float
    test_mae: float
    test_mape: float


#: The eight models of Table II, in the paper's row order.
TABLE2_MODEL_SPECS: Tuple[StepTimeModelSpec, ...] = (
    StepTimeModelSpec("Univariate, GPU-agnostic", "cnorm", "linear", None),
    StepTimeModelSpec("Multivariate, GPU-agnostic", "cm_cgpu", "linear", None),
    StepTimeModelSpec("Univariate, K80", "cm", "linear", "k80"),
    StepTimeModelSpec("SVR Polynomial Kernel, K80", "cm", "svr_poly", "k80"),
    StepTimeModelSpec("SVR RBF Kernel, K80", "cm", "svr_rbf", "k80"),
    StepTimeModelSpec("Univariate, P100", "cm", "linear", "p100"),
    StepTimeModelSpec("SVR Polynomial Kernel, P100", "cm", "svr_poly", "p100"),
    StepTimeModelSpec("SVR RBF Kernel, P100", "cm", "svr_rbf", "p100"),
)


def build_table2_models(measurements: Sequence[SpeedMeasurement],
                        use_grid_search: bool = False,
                        seed: int = 0) -> Dict[str, StepTimePredictor]:
    """Fit all eight Table II models on the given measurements.

    Args:
        measurements: Single-worker speed measurements across models/GPUs.
        use_grid_search: Run the paper's full hyperparameter grid search for
            the SVR models (slower); otherwise mid-range defaults are used.
        seed: Seed for splits and grid-search shuffling.
    """
    models: Dict[str, StepTimePredictor] = {}
    for spec in TABLE2_MODEL_SPECS:
        svr_c, svr_eps = DEFAULT_SVR_C, DEFAULT_SVR_EPSILON
        if use_grid_search and spec.estimator.startswith("svr"):
            gpu = get_gpu(spec.gpu_name) if spec.gpu_name else None
            selected = [m for m in measurements
                        if gpu is None or m.gpu_name == gpu.name]
            gflops = np.array([[m.model_gflops] for m in selected])
            targets = np.array([m.step_time for m in selected])
            scaled = MinMaxScaler().fit_transform(gflops)
            kernel = "poly" if spec.estimator == "svr_poly" else "rbf"
            result = grid_search_svr(scaled, targets, kernel=kernel,
                                     rng=np.random.default_rng(seed))
            svr_c, svr_eps = result.best_C, result.best_epsilon
        predictor = StepTimePredictor(spec, svr_C=svr_c, svr_epsilon=svr_eps)
        predictor.fit(measurements)
        models[spec.name] = predictor
    return models


def evaluate_table2_models(measurements: Sequence[SpeedMeasurement],
                           seed: int = 0) -> List[StepTimeEvaluation]:
    """Produce every row of Table II for the given measurement dataset."""
    rows: List[StepTimeEvaluation] = []
    for spec in TABLE2_MODEL_SPECS:
        predictor = StepTimePredictor(spec)
        rows.append(predictor.evaluate(measurements, seed=seed))
    return rows


class ClusterSpeedPredictor:
    """Cluster-speed prediction by composing per-worker predictions.

    Section VI-A: ``sp = sum_i sp_i`` for the workers of the cluster, with
    an optional parameter-server capacity cap for users who want the
    bottleneck-aware estimate (the plain sum is what the bottleneck
    detector compares against).

    Args:
        step_time_predictor: A fitted per-worker step-time model.  Use a
            GPU-agnostic model, or supply per-GPU models via
            ``per_gpu_predictors``.
        per_gpu_predictors: Optional mapping from GPU name to a fitted
            GPU-specific predictor; takes precedence over the shared model.
        ps_capacity_model: Optional capacity model for bottleneck-aware
            predictions.
    """

    def __init__(self, step_time_predictor: Optional[StepTimePredictor] = None,
                 per_gpu_predictors: Optional[Dict[str, StepTimePredictor]] = None,
                 ps_capacity_model: Optional[PSCapacityModel] = None):
        if step_time_predictor is None and not per_gpu_predictors:
            raise ModelingError("provide a shared predictor or per-GPU predictors")
        self.shared = step_time_predictor
        self.per_gpu = {get_gpu(name).name: predictor
                        for name, predictor in (per_gpu_predictors or {}).items()}
        self.ps_capacity_model = ps_capacity_model

    def _predictor_for(self, gpu_name: str) -> StepTimePredictor:
        gpu = get_gpu(gpu_name)
        if gpu.name in self.per_gpu:
            return self.per_gpu[gpu.name]
        if self.shared is None:
            raise ModelingError(f"no predictor available for GPU {gpu_name!r}")
        return self.shared

    def predict_worker_speeds(self, model_gflops: float,
                              gpu_names: Sequence[str]) -> List[float]:
        """Predicted speed of each worker in the cluster."""
        return [self._predictor_for(gpu).predict_speed(model_gflops, gpu)
                for gpu in gpu_names]

    def predict_cluster_speed(self, model_gflops: float,
                              gpu_names: Sequence[str]) -> float:
        """Predicted cluster speed as the plain sum of worker speeds."""
        if not gpu_names:
            raise ModelingError("the cluster must contain at least one worker")
        return float(sum(self.predict_worker_speeds(model_gflops, gpu_names)))

    def predict_with_ps_bottleneck(self, model_gflops: float,
                                   gpu_names: Sequence[str],
                                   gradient_bytes: float,
                                   num_parameter_servers: int = 1) -> float:
        """Bottleneck-aware cluster speed prediction.

        Requires a :class:`~repro.perf.ps_capacity.PSCapacityModel`; useful
        when the practitioner wants the expected speed including the PS cap
        rather than the idealized sum.
        """
        if self.ps_capacity_model is None:
            raise ModelingError("ps_capacity_model was not provided")
        speeds = self.predict_worker_speeds(model_gflops, gpu_names)
        return self.ps_capacity_model.cluster_speed(speeds, gradient_bytes,
                                                    num_parameter_servers)
