"""Feature preprocessing: min-max scaling, z-score standardization, PCA.

The paper normalizes its regression features with min-max normalization
(noting that z-score standardization is less appropriate because the data
is not Gaussian) and uses a two-component PCA to combine the three
checkpoint file sizes, whose index and meta components are highly
correlated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DataError, NotFittedError


def _as_matrix(features) -> np.ndarray:
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataError("features must be a 1-D or 2-D array")
    if array.shape[0] == 0:
        raise DataError("features must contain at least one sample")
    return array


class MinMaxScaler:
    """Min-max normalization to the [0, 1] range, fitted per feature."""

    def __init__(self) -> None:
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, features) -> "MinMaxScaler":
        """Learn per-feature minima and maxima."""
        matrix = _as_matrix(features)
        self.data_min_ = matrix.min(axis=0)
        self.data_max_ = matrix.max(axis=0)
        return self

    def transform(self, features) -> np.ndarray:
        """Scale features to [0, 1] using the fitted minima/maxima.

        Constant features map to 0.  Values outside the fitted range are
        allowed (and fall outside [0, 1]), which is what happens when the
        model is asked about a previously unobserved CNN.
        """
        if self.data_min_ is None or self.data_max_ is None:
            raise NotFittedError("MinMaxScaler must be fitted before transform")
        matrix = _as_matrix(features)
        if matrix.shape[1] != self.data_min_.shape[0]:
            raise DataError("feature count differs from the fitted data")
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span == 0, 1.0, span)
        return (matrix - self.data_min_) / safe_span

    def fit_transform(self, features) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)

    def inverse_transform(self, scaled) -> np.ndarray:
        """Map scaled values back to the original range."""
        if self.data_min_ is None or self.data_max_ is None:
            raise NotFittedError("MinMaxScaler must be fitted before inverse_transform")
        matrix = _as_matrix(scaled)
        span = self.data_max_ - self.data_min_
        return matrix * span + self.data_min_


class StandardScaler:
    """Z-score standardization (kept for the paper's footnote comparison)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, features) -> "StandardScaler":
        """Learn per-feature means and standard deviations."""
        matrix = _as_matrix(features)
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        self.scale_ = np.where(std == 0, 1.0, std)
        return self

    def transform(self, features) -> np.ndarray:
        """Standardize features with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler must be fitted before transform")
        matrix = _as_matrix(features)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise DataError("feature count differs from the fitted data")
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, features) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)


class PCA:
    """Principal component analysis via singular value decomposition.

    Used by the Table IV checkpoint model to reduce the three correlated
    checkpoint file-size features to two components.

    Args:
        n_components: Number of principal components to keep.
    """

    def __init__(self, n_components: int = 2):
        if n_components < 1:
            raise DataError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, features) -> "PCA":
        """Fit the principal components of the (centered) feature matrix."""
        matrix = _as_matrix(features)
        if self.n_components > matrix.shape[1]:
            raise DataError("n_components cannot exceed the number of features")
        if matrix.shape[0] < 2:
            raise DataError("PCA needs at least two samples")
        self.mean_ = matrix.mean(axis=0)
        centered = matrix - self.mean_
        _u, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variance = (singular_values ** 2) / (matrix.shape[0] - 1)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = variance[: self.n_components]
        total = variance.sum()
        self.explained_variance_ratio_ = (variance[: self.n_components] / total
                                          if total > 0 else np.zeros(self.n_components))
        return self

    def transform(self, features) -> np.ndarray:
        """Project features onto the fitted principal components."""
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA must be fitted before transform")
        matrix = _as_matrix(features)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise DataError("feature count differs from the fitted data")
        return (matrix - self.mean_) @ self.components_.T

    def fit_transform(self, features) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(features).transform(features)
