"""Error metrics.

The paper reports mean absolute error (MAE), chosen over RMSE for its
unambiguous interpretation, and mean absolute percentage error (MAPE) for
the headline results (9% for step-time prediction, 5.38% for checkpoint
prediction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _validate(y_true, y_pred) -> tuple:
    true = np.asarray(y_true, dtype=float).ravel()
    pred = np.asarray(y_pred, dtype=float).ravel()
    if true.size == 0:
        raise DataError("cannot compute a metric over zero samples")
    if true.shape != pred.shape:
        raise DataError(f"shape mismatch: {true.shape} vs {pred.shape}")
    return true, pred


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error (the paper's primary metric)."""
    true, pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """Mean absolute percentage error, in percent.

    Raises:
        DataError: If any true value is zero (the ratio is undefined).
    """
    true, pred = _validate(y_true, y_pred)
    if np.any(true == 0):
        raise DataError("MAPE is undefined when a true value is zero")
    return float(np.mean(np.abs((true - pred) / true)) * 100.0)


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error (reported for comparison only)."""
    true, pred = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((true - pred) ** 2)))


def coefficient_of_variation(values) -> float:
    """Standard deviation divided by the mean (the paper's stability metric)."""
    array = np.asarray(values, dtype=float).ravel()
    if array.size < 2:
        raise DataError("need at least two values for a coefficient of variation")
    mean = array.mean()
    if mean == 0:
        raise DataError("coefficient of variation is undefined for a zero mean")
    return float(array.std(ddof=1) / mean)
