"""Ordinary least squares linear regression.

Covers the paper's univariate (``S = a * C + b``) and multivariate
(``S = a * Cm + b * Cgpu + c``) regression models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DataError, NotFittedError


class LinearRegression:
    """Least-squares linear regression with an intercept.

    Example:
        >>> model = LinearRegression().fit([[0.0], [1.0], [2.0]], [1.0, 3.0, 5.0])
        >>> round(model.predict([[3.0]])[0], 6)
        7.0
    """

    def __init__(self) -> None:
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    @staticmethod
    def _as_matrix(features) -> np.ndarray:
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2:
            raise DataError("features must be 1-D or 2-D")
        return matrix

    def fit(self, features, targets) -> "LinearRegression":
        """Fit coefficients and intercept by least squares.

        Args:
            features: Sample matrix of shape ``(n_samples, n_features)`` (a
                1-D array is treated as a single feature).
            targets: Target values of shape ``(n_samples,)``.
        """
        matrix = self._as_matrix(features)
        target = np.asarray(targets, dtype=float).ravel()
        if matrix.shape[0] != target.shape[0]:
            raise DataError("features and targets must have the same length")
        if matrix.shape[0] < matrix.shape[1] + 1:
            raise DataError("not enough samples to fit the regression")
        design = np.hstack([matrix, np.ones((matrix.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, features) -> np.ndarray:
        """Predict targets for new samples."""
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("LinearRegression must be fitted before predict")
        matrix = self._as_matrix(features)
        if matrix.shape[1] != self.coef_.shape[0]:
            raise DataError("feature count differs from the fitted data")
        return matrix @ self.coef_ + self.intercept_

    def score_mae(self, features, targets) -> float:
        """Mean absolute error on the given samples."""
        from repro.modeling.metrics import mean_absolute_error

        return mean_absolute_error(targets, self.predict(features))
