"""Revocation estimation from empirical lifetime data.

Equation (5) of the paper computes the expected number of revocations over
a training run as the sum of each worker's probability of revocation within
the run's duration, obtained "by querying the empirical CDFs" of the
lifetime measurements (Fig. 8).  This module builds those empirical CDFs
from observed lifetimes and answers the queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.cloud.revocation import MAX_TRANSIENT_LIFETIME_HOURS, RevocationModel
from repro.errors import DataError


@dataclass
class EmpiricalLifetimeDistribution:
    """Empirical lifetime distribution of one ``(GPU, region)`` pair.

    Lifetimes are measured in hours; servers that survived to the 24-hour
    maximum are right-censored at 24 hours, exactly as in the paper's data.

    Attributes:
        lifetimes_hours: Observed lifetimes (revoked servers only).
        num_launched: Total servers launched, including survivors.
    """

    lifetimes_hours: List[float]
    num_launched: int

    def __post_init__(self) -> None:
        if self.num_launched <= 0:
            raise DataError("num_launched must be positive")
        if len(self.lifetimes_hours) > self.num_launched:
            raise DataError("more revocations than launched servers")
        if any(t < 0 for t in self.lifetimes_hours):
            raise DataError("lifetimes must be non-negative")

    @property
    def num_revoked(self) -> int:
        """Number of servers revoked before the 24-hour cutoff."""
        return len(self.lifetimes_hours)

    @property
    def revocation_fraction(self) -> float:
        """Fraction of launched servers that were revoked (Table V)."""
        return self.num_revoked / self.num_launched

    def cdf(self, duration_hours: float) -> float:
        """Probability a server is revoked within ``duration_hours``.

        The CDF is evaluated over *all* launched servers, so it saturates at
        the revocation fraction rather than at one.
        """
        if duration_hours <= 0:
            return 0.0
        horizon = min(duration_hours, MAX_TRANSIENT_LIFETIME_HOURS)
        revoked_before = sum(1 for t in self.lifetimes_hours if t <= horizon)
        return revoked_before / self.num_launched

    def cdf_curve(self, hours: Sequence[float]) -> np.ndarray:
        """CDF evaluated on a grid of hours (the Fig. 8 curves)."""
        return np.array([self.cdf(h) for h in hours])

    def mean_lifetime(self) -> float:
        """Mean lifetime in hours, counting survivors at 24 hours."""
        survivors = self.num_launched - self.num_revoked
        total = sum(self.lifetimes_hours) + survivors * MAX_TRANSIENT_LIFETIME_HOURS
        return total / self.num_launched

    def mean_time_to_revocation(self) -> float:
        """Mean lifetime of the revoked servers only.

        Raises:
            DataError: If no server was revoked.
        """
        if not self.lifetimes_hours:
            raise DataError("no revocations observed")
        return float(np.mean(self.lifetimes_hours))


class RevocationEstimator:
    """Per-(GPU, region) revocation probability estimates.

    The estimator can be built from measured lifetimes (the normal CM-DARE
    path: feed it the revocation campaign's dataset) or fall back to the
    calibrated analytic model for cells without measurements.

    Args:
        fallback_model: Analytic model used for cells without data.
    """

    def __init__(self, fallback_model: Optional[RevocationModel] = None):
        self._distributions: Dict[Tuple[str, str], EmpiricalLifetimeDistribution] = {}
        self._fallback = fallback_model

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def add_observations(self, gpu_name: str, region_name: str,
                         lifetimes_hours: Sequence[float], num_launched: int) -> None:
        """Add (or replace) the observations for one ``(GPU, region)`` cell."""
        key = (get_gpu(gpu_name).name, get_region(region_name).name)
        self._distributions[key] = EmpiricalLifetimeDistribution(
            lifetimes_hours=list(lifetimes_hours), num_launched=num_launched)

    def distribution(self, gpu_name: str, region_name: str) -> EmpiricalLifetimeDistribution:
        """The empirical distribution for a cell.

        Raises:
            DataError: If no observations were added for the cell.
        """
        key = (get_gpu(gpu_name).name, get_region(region_name).name)
        if key not in self._distributions:
            raise DataError(f"no lifetime observations for {key}")
        return self._distributions[key]

    def cells(self) -> List[Tuple[str, str]]:
        """All cells with observations."""
        return sorted(self._distributions)

    # ------------------------------------------------------------------
    # Queries (Eq. 5).
    # ------------------------------------------------------------------
    def revocation_probability(self, gpu_name: str, region_name: str,
                               duration_hours: float) -> float:
        """``Pr(R_i)``: probability one worker is revoked within the run."""
        key = (get_gpu(gpu_name).name, get_region(region_name).name)
        if key in self._distributions:
            return self._distributions[key].cdf(duration_hours)
        if self._fallback is not None:
            return self._fallback.revocation_probability(gpu_name, region_name,
                                                         duration_hours)
        raise DataError(f"no lifetime observations or fallback model for {key}")

    def expected_revocations(self, workers: Sequence[Tuple[str, str]],
                             duration_hours: float) -> float:
        """``Nr = sum_i Pr(R_i)`` over the cluster's transient workers.

        Args:
            workers: ``(gpu_name, region_name)`` of each transient worker.
            duration_hours: Predicted training duration in hours.
        """
        return float(sum(self.revocation_probability(gpu, region, duration_hours)
                         for gpu, region in workers))

    def safest_region(self, gpu_name: str, duration_hours: float) -> Tuple[str, float]:
        """The region with the lowest revocation probability for a GPU type.

        A direct implementation of the paper's "avoid high revocation
        regions" guidance.
        """
        candidates: List[Tuple[str, float]] = []
        for gpu, region in self.cells():
            if gpu == get_gpu(gpu_name).name:
                candidates.append((region, self.revocation_probability(gpu, region,
                                                                       duration_hours)))
        if not candidates and self._fallback is not None:
            for gpu, region in self._fallback.available_cells():
                if gpu == get_gpu(gpu_name).name:
                    candidates.append((region,
                                       self._fallback.revocation_probability(
                                           gpu, region, duration_hours)))
        if not candidates:
            raise DataError(f"no data for GPU {gpu_name!r}")
        return min(candidates, key=lambda pair: pair[1])
