"""Model selection: train/test splitting, k-fold cross validation, grid search.

The paper's protocol (Section III-B): random 4:1 train/test split, k-fold
cross validation on the training data reported as MAE, and grid search over
the SVR hyperparameters — penalty ``p`` (``C`` here) in [10, 100] with step
10, epsilon in [0.01, 0.1] with step 0.01.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.modeling.metrics import mean_absolute_error
from repro.modeling.svr import SVR

#: The paper's SVR hyperparameter grid.
PAPER_C_GRID: Tuple[float, ...] = tuple(float(c) for c in range(10, 101, 10))
PAPER_EPSILON_GRID: Tuple[float, ...] = tuple(round(0.01 * i, 2) for i in range(1, 11))


def train_test_split(features, targets, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/test split (4:1 by default, matching the paper).

    Returns:
        ``(train_features, test_features, train_targets, test_targets)``.
    """
    matrix = np.asarray(features, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    target = np.asarray(targets, dtype=float).ravel()
    if matrix.shape[0] != target.shape[0]:
        raise DataError("features and targets must have the same length")
    if not 0.0 < test_fraction < 1.0:
        raise DataError("test_fraction must be in (0, 1)")
    n = matrix.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DataError("not enough samples for the requested split")
    generator = rng if rng is not None else np.random.default_rng(0)
    order = generator.permutation(n)
    test_index, train_index = order[:n_test], order[n_test:]
    return matrix[train_index], matrix[test_index], target[train_index], target[test_index]


class KFold:
    """K-fold cross-validation splitter with shuffling.

    Args:
        n_splits: Number of folds (5 by default).
        rng: Random generator used for shuffling.
    """

    def __init__(self, n_splits: int = 5, rng: Optional[np.random.Generator] = None):
        if n_splits < 2:
            raise DataError("n_splits must be >= 2")
        self.n_splits = n_splits
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, validation_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise DataError("more folds than samples")
        order = self._rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            validation = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, validation


@dataclass(frozen=True)
class CrossValidationResult:
    """K-fold cross-validation MAE summary.

    Attributes:
        fold_maes: Per-fold validation MAE.
        mean_mae: Mean of the per-fold MAEs (the paper's "K-fold MAE").
        std_mae: Standard deviation of the per-fold MAEs (the "+-" column).
    """

    fold_maes: Tuple[float, ...]
    mean_mae: float
    std_mae: float


def cross_validate_mae(model_factory: Callable[[], object], features, targets,
                       n_splits: int = 5,
                       rng: Optional[np.random.Generator] = None
                       ) -> CrossValidationResult:
    """Run k-fold cross validation and report the validation MAE.

    Args:
        model_factory: Zero-argument callable returning a fresh, unfitted
            model exposing ``fit(X, y)`` and ``predict(X)``.
        features: Sample matrix.
        targets: Target values.
        n_splits: Number of folds.
        rng: Random generator for the fold shuffle.
    """
    matrix = np.asarray(features, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    target = np.asarray(targets, dtype=float).ravel()
    splitter = KFold(n_splits=n_splits, rng=rng)
    maes: List[float] = []
    for train_index, validation_index in splitter.split(matrix.shape[0]):
        model = model_factory()
        model.fit(matrix[train_index], target[train_index])
        predictions = model.predict(matrix[validation_index])
        maes.append(mean_absolute_error(target[validation_index], predictions))
    values = np.asarray(maes)
    return CrossValidationResult(fold_maes=tuple(values.tolist()),
                                 mean_mae=float(values.mean()),
                                 std_mae=float(values.std(ddof=1)) if len(values) > 1 else 0.0)


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of an SVR hyperparameter grid search.

    Attributes:
        best_C: Selected penalty parameter.
        best_epsilon: Selected epsilon-tube width.
        best_mae: Cross-validation MAE of the selected configuration.
        results: ``((C, epsilon), mae)`` for every grid point.
    """

    best_C: float
    best_epsilon: float
    best_mae: float
    results: Tuple[Tuple[Tuple[float, float], float], ...]


def grid_search_svr(features, targets, kernel: str = "rbf",
                    C_grid: Sequence[float] = PAPER_C_GRID,
                    epsilon_grid: Sequence[float] = PAPER_EPSILON_GRID,
                    n_splits: int = 5, degree: int = 2,
                    gamma: Optional[float] = None,
                    rng: Optional[np.random.Generator] = None) -> GridSearchResult:
    """Grid-search SVR hyperparameters by k-fold cross-validation MAE.

    The default grids are exactly the paper's.
    """
    if not C_grid or not epsilon_grid:
        raise DataError("hyperparameter grids must be non-empty")
    generator = rng if rng is not None else np.random.default_rng(0)
    results: List[Tuple[Tuple[float, float], float]] = []
    best: Optional[Tuple[float, float, float]] = None
    for c_value in C_grid:
        for epsilon in epsilon_grid:
            fold_rng = np.random.default_rng(generator.integers(0, 2 ** 31 - 1))
            outcome = cross_validate_mae(
                lambda c=c_value, e=epsilon: SVR(kernel=kernel, C=c, epsilon=e,
                                                 degree=degree, gamma=gamma),
                features, targets, n_splits=n_splits, rng=fold_rng)
            results.append((((float(c_value), float(epsilon))), outcome.mean_mae))
            if best is None or outcome.mean_mae < best[2]:
                best = (float(c_value), float(epsilon), outcome.mean_mae)
    assert best is not None
    return GridSearchResult(best_C=best[0], best_epsilon=best[1], best_mae=best[2],
                            results=tuple(results))
