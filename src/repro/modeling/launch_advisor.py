"""Launch-time and region advisor (the paper's Section V-C future work).

The paper observes that revocations depend on the region, the GPU type, and
the local time of day, and suggests "investigating how strategically
launching transient clusters at different times of day and different data
center locations can help mitigate revocation impacts" as future work.
This module implements that advisor: it scores (region, local launch hour)
combinations for a given GPU type and run duration by the probability that
a worker survives the run, estimated by Monte-Carlo sampling of the
calibrated revocation model (or of any model with the same interface).

The query API
-------------
All placement questions go through one entry point,
:meth:`LaunchAdvisor.answer`, which takes a frozen
:class:`~repro.modeling.placement.PlacementQuery` (grid mode: score a
launch-hour grid offline; live mode: score every candidate region at its
current local hour) plus an optional pool snapshot, and returns a ranked
:class:`~repro.modeling.placement.PlacementDecision`.  The five historical
entry points (``score_option`` / ``rank_options`` / ``place`` /
``best_feasible`` / ``recommend``) survive as thin deprecation shims over
``answer()``.

Scoring is deterministic — each ``(gpu, region, hour)`` option draws from
its own stable generator, seeded from the advisor seed and a CRC digest of
the option itself, independent of call order — so fleet payloads stay
reproducible and serial/parallel sweep executions stay bit-identical.  Two
score backends produce **bit-identical** probabilities:

* ``table`` (default) — the vectorized
  :class:`~repro.modeling.placement.ScoreTable`, which replays each
  option's sampling tape once, keeps the sorted revoked lifetimes, and
  answers every duration by rank lookup;
* ``sampling`` — the legacy per-option scalar Monte-Carlo loop with
  per-``(gpu, region, hour, duration)`` memoization, kept as the reference
  implementation.

Select with ``REPRO_PLACEMENT_SCORES=table|sampling`` (payload-neutral by
construction; fingerprinted by the sweep cache like the other runtime
knobs) or per advisor via ``score_backend=``.

Pool-aware placement
--------------------
A live-mode query with a pool ranks ``(gpu, region, launch hour)`` options
by combining the calibrated revocation score with pool state (free/warm
slot counts and replacement-queue depth), read through the versioned
read-only snapshot API of :class:`repro.scenarios.pool.TransientPool` (any
object with ``cells()`` / ``acquirable()`` / ``pending_waiters()`` /
``capacity()`` works).  Options with no acquirable slot are marked
infeasible and rank after every feasible one, so a fleet controller can
fall back to the next-best feasible placement instead of queueing blindly
on an exhausted cell.  The decision records the pool version it was
computed against, which is what lets :mod:`repro.serve` cache decisions
until the pool actually changes.
"""

from __future__ import annotations

import os
import warnings
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.errors import ConfigurationError
from repro.modeling.placement import (
    PlacementDecision,
    PlacementOption,
    PlacementQuery,
    ScoreTable,
)
from repro.units import hour_bin

#: Environment switch selecting the score backend (``table`` or
#: ``sampling``).  Both are bit-identical; the knob exists so the legacy
#: reference path stays deployable (and benchmarkable) without code edits.
PLACEMENT_SCORES_ENV = "REPRO_PLACEMENT_SCORES"

_SCORE_BACKENDS = ("table", "sampling")


@dataclass(frozen=True)
class LaunchOption:
    """One scored (region, launch hour) option of the deprecated grid shims.

    New code reads :class:`~repro.modeling.placement.PlacementOption` out
    of a :class:`~repro.modeling.placement.PlacementDecision` instead.

    Attributes:
        gpu_name: GPU type being launched.
        region_name: Candidate region.
        launch_hour_local: Candidate local launch hour (0-23).
        revocation_probability: Estimated probability that one worker is
            revoked before the run completes.
        expected_revocations: Expected revocations for the whole cluster
            (``num_workers`` times the per-worker probability).
    """

    gpu_name: str
    region_name: str
    launch_hour_local: int
    revocation_probability: float
    expected_revocations: float

#: Historical launch-hour grid of the deprecated ``rank_options`` /
#: ``recommend`` shims.
_DEFAULT_LAUNCH_HOURS = (0, 4, 8, 12, 16, 20)


def placement_scores_backend() -> str:
    """The score backend selected by ``REPRO_PLACEMENT_SCORES`` (default
    ``table``).  Unrecognized values fall back to the default rather than
    failing a whole fleet run over a typo; advisors constructed with an
    explicit ``score_backend=`` validate strictly instead."""
    backend = os.environ.get(PLACEMENT_SCORES_ENV, "").strip().lower()
    return backend if backend in _SCORE_BACKENDS else "table"


def _deprecated(old: str, instead: str) -> None:
    warnings.warn(
        f"LaunchAdvisor.{old} is deprecated; use LaunchAdvisor.answer"
        f"({instead}) instead",
        DeprecationWarning, stacklevel=3)


class LaunchAdvisor:
    """Scores candidate regions and launch hours for a transient cluster.

    Args:
        revocation_model: Generative revocation model to sample from; the
            calibrated default model when omitted.
        samples_per_option: Monte-Carlo samples per (region, hour) option.
        seed: Seed the per-option generators derive from.
        score_backend: ``"table"`` or ``"sampling"`` (see the module
            docstring); ``None`` reads ``REPRO_PLACEMENT_SCORES``.
    """

    def __init__(self, revocation_model: Optional[RevocationModel] = None,
                 samples_per_option: int = 400, seed: int = 0,
                 score_backend: Optional[str] = None):
        if samples_per_option < 10:
            raise ConfigurationError("samples_per_option must be at least 10")
        if score_backend is None:
            score_backend = placement_scores_backend()
        elif score_backend not in _SCORE_BACKENDS:
            raise ConfigurationError(
                f"unknown score backend {score_backend!r}; "
                f"expected one of {_SCORE_BACKENDS}")
        self.score_backend = score_backend
        self._model_template = revocation_model
        self.samples_per_option = samples_per_option
        self.seed = seed
        self._table = ScoreTable(revocation_model,
                                 samples=samples_per_option, seed=seed)
        #: Sampling-backend memo per (gpu, region, hour, duration); the
        #: table backend needs none (the score table is duration-agnostic).
        self._probability_cache = {}

    def _model_for(self, option_index: int) -> RevocationModel:
        rng = np.random.default_rng(self.seed * 9973 + option_index)
        if self._model_template is None:
            return RevocationModel(rng=rng)
        # Re-instantiate with the same calibration but an option-specific
        # generator so options are scored independently and reproducibly.
        return RevocationModel(rng=rng,
                               calibration=dict(self._model_template._calibration),
                               hourly_weights=dict(self._model_template._hourly_weights))

    @property
    def score_table(self) -> ScoreTable:
        """The advisor's vectorized score table.

        Always present (even under the sampling backend, which ignores
        it), so the serve layer can pre-warm every ``(gpu, region, hour)``
        option at startup regardless of backend.
        """
        return self._table

    # ------------------------------------------------------------------
    # Scoring primitives.
    # ------------------------------------------------------------------
    def revocation_score(self, gpu_name: str, region_name: str,
                         launch_hour_local: int, duration_hours: float) -> float:
        """Per-worker revocation probability for one option.

        Each ``(gpu, region, hour)`` option samples from its own stable
        generator (seeded from the advisor seed and a digest of the option
        itself, independent of call order), so repeated placement queries
        during a fleet run are deterministic and cheap.  Both backends
        return bit-identical values.
        """
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        gpu = get_gpu(gpu_name)
        hour = hour_bin(launch_hour_local)
        if self.score_backend == "table":
            return self._table.probability(gpu.name, region_name, hour,
                                           duration_hours)
        return self._sampled_score(gpu.name, region_name, hour,
                                   float(duration_hours))

    def _sampled_score(self, gpu_name: str, region_name: str, hour: int,
                       duration_hours: float) -> float:
        """The legacy scalar Monte-Carlo backend (memoized per duration)."""
        key = (gpu_name, region_name, hour, duration_hours)
        cached = self._probability_cache.get(key)
        if cached is not None:
            return cached
        # A stable per-option index: CRC32 keeps the derived generator
        # independent of the order in which options are first scored.
        option_index = zlib.crc32(
            f"place:{gpu_name}:{region_name}:{hour}".encode("utf-8"))
        model = self._model_for(option_index)
        outcomes = model.sample_batch(gpu_name, region_name,
                                      self.samples_per_option,
                                      launch_hour_local=float(hour))
        revoked_within_run = sum(
            1 for outcome in outcomes
            if outcome.revoked and outcome.lifetime_hours <= duration_hours)
        probability = revoked_within_run / self.samples_per_option
        self._probability_cache[key] = probability
        return probability

    def _scores(self, gpu_name: str, cells: Sequence[Tuple[str, int]],
                duration_hours: float) -> List[float]:
        """Revocation probabilities for a whole candidate set.

        The table backend scores every cell with one vectorized matrix
        comparison; the sampling backend loops the memoized scalar path.
        """
        if self.score_backend == "table":
            return [float(probability) for probability in self._table.
                    probabilities(gpu_name, cells, duration_hours)]
        return [self._sampled_score(gpu_name, region, hour,
                                    float(duration_hours))
                for region, hour in cells]

    # ------------------------------------------------------------------
    # The query API.
    # ------------------------------------------------------------------
    def _candidate_cells(self, query: PlacementQuery,
                         pool) -> List[Tuple[str, int]]:
        """Resolve a query to concrete ``(region, local hour)`` candidates."""
        gpu = get_gpu(query.gpu_name)
        region_names = query.region_names
        if region_names is None:
            if query.hour_of_day_utc is not None and pool is not None:
                region_names = tuple(region for cell_gpu, region in pool.cells()
                                     if cell_gpu == gpu.name)
                if not region_names:
                    raise ConfigurationError(
                        f"the pool has no {query.gpu_name!r} cells to place into")
            else:
                region_names = tuple(
                    region for cell_gpu, region
                    in self._table.available_cells() if cell_gpu == gpu.name)
                if not region_names:
                    raise ConfigurationError(
                        f"no candidate regions offer {query.gpu_name!r}")
        if query.launch_hours is not None:
            return [(region_name, hour) for region_name in region_names
                    for hour in query.launch_hours]
        return [(region.name, hour_bin(region.local_hour(query.hour_of_day_utc)))
                for region in map(get_region, region_names)]

    def answer(self, query: PlacementQuery, pool=None) -> PlacementDecision:
        """Answer one placement query, optionally against live pool state.

        Args:
            query: What to place, for how long, and where/when to consider
                (see :class:`~repro.modeling.placement.PlacementQuery`).
            pool: Optional pool state, duck-typed against
                :class:`repro.scenarios.pool.PoolSnapshot` (a live
                :class:`~repro.scenarios.pool.TransientPool` works too):
                must offer ``cells()``, ``acquirable(gpu, region)``,
                ``pending_waiters(gpu, region)``, and
                ``capacity(gpu, region)``.  Without a pool every option is
                feasible and the score is the bare revocation probability.

        Returns:
            The ranked decision; ``decision.best`` is the placement to
            take, or ``None`` when the pool can grant nothing.
        """
        gpu = get_gpu(query.gpu_name)
        cells = self._candidate_cells(query, pool)
        probabilities = self._scores(gpu.name, cells, query.duration_hours)
        options: List[PlacementOption] = []
        for (region_name, hour), probability in zip(cells, probabilities):
            if pool is None:
                acquirable: Optional[int] = None
                queue_depth = 0
                feasible = True
                score = probability
            else:
                acquirable = pool.acquirable(gpu.name, region_name)
                queue_depth = pool.pending_waiters(gpu.name, region_name)
                capacity = pool.capacity(gpu.name, region_name)
                pressure = queue_depth / capacity if capacity > 0 else 0.0
                feasible = acquirable > 0
                score = probability + query.queue_weight * pressure
            options.append(PlacementOption(
                gpu_name=gpu.name, region_name=region_name,
                launch_hour_local=hour,
                revocation_probability=probability,
                expected_revocations=probability * query.num_workers,
                acquirable=acquirable, queue_depth=queue_depth,
                feasible=feasible, score=score))
        options.sort(key=lambda option: (not option.feasible, option.score,
                                         option.region_name,
                                         option.launch_hour_local))
        return PlacementDecision(query=query, options=tuple(options),
                                 pool_version=getattr(pool, "version", None))

    # ------------------------------------------------------------------
    # Deprecated entry points (thin shims over answer()).
    # ------------------------------------------------------------------
    def score_option(self, gpu_name: str, region_name: str, launch_hour_local: int,
                     duration_hours: float, num_workers: int = 1,
                     option_index: int = 0) -> LaunchOption:
        """Deprecated: score one (region, launch hour) option.

        Use :meth:`answer` with a single-region, single-hour grid query.
        ``option_index`` is ignored — option generators are now keyed by a
        stable digest of the option itself.
        """
        _deprecated("score_option", "query with region_names + launch_hours")
        query = PlacementQuery(gpu_name=gpu_name, duration_hours=duration_hours,
                               num_workers=num_workers,
                               region_names=(region_name,),
                               launch_hours=(launch_hour_local,))
        option = self.answer(query).options[0]
        return LaunchOption(gpu_name=option.gpu_name,
                            region_name=option.region_name,
                            launch_hour_local=option.launch_hour_local,
                            revocation_probability=option.revocation_probability,
                            expected_revocations=option.expected_revocations)

    def rank_options(self, gpu_name: str, duration_hours: float,
                     num_workers: int = 1,
                     region_names: Optional[Sequence[str]] = None,
                     launch_hours: Sequence[int] = _DEFAULT_LAUNCH_HOURS
                     ) -> List[LaunchOption]:
        """Deprecated: score and rank a (region, hour) grid.

        Use :meth:`answer` with a grid-mode query.
        """
        _deprecated("rank_options", "query with launch_hours")
        decision = self._answer_grid(gpu_name, duration_hours, num_workers,
                                     region_names, launch_hours)
        return [LaunchOption(gpu_name=option.gpu_name,
                             region_name=option.region_name,
                             launch_hour_local=option.launch_hour_local,
                             revocation_probability=option.revocation_probability,
                             expected_revocations=option.expected_revocations)
                for option in decision.options]

    def recommend(self, gpu_name: str, duration_hours: float, num_workers: int = 1,
                  region_names: Optional[Sequence[str]] = None,
                  launch_hours: Sequence[int] = _DEFAULT_LAUNCH_HOURS
                  ) -> LaunchOption:
        """Deprecated: the single safest (region, launch hour) option.

        Use ``answer(query).options[0]`` with a grid-mode query.
        """
        _deprecated("recommend", "query with launch_hours")
        option = self._answer_grid(gpu_name, duration_hours, num_workers,
                                   region_names, launch_hours).options[0]
        return LaunchOption(gpu_name=option.gpu_name,
                            region_name=option.region_name,
                            launch_hour_local=option.launch_hour_local,
                            revocation_probability=option.revocation_probability,
                            expected_revocations=option.expected_revocations)

    def _answer_grid(self, gpu_name, duration_hours, num_workers,
                     region_names, launch_hours) -> PlacementDecision:
        query = PlacementQuery(
            gpu_name=gpu_name, duration_hours=duration_hours,
            num_workers=num_workers,
            region_names=None if region_names is None else tuple(region_names),
            launch_hours=tuple(launch_hours))
        return self.answer(query)

    def place(self, gpu_name: str, duration_hours: float, pool,
              hour_of_day_utc: float,
              region_names: Optional[Sequence[str]] = None,
              queue_weight: float = 0.5) -> List[PlacementOption]:
        """Deprecated: rank live placements for one worker against a pool.

        Use :meth:`answer` with a live-mode query and a pool snapshot.
        """
        _deprecated("place", "query with hour_of_day_utc, pool=snapshot")
        query = PlacementQuery(
            gpu_name=gpu_name, duration_hours=duration_hours,
            region_names=None if region_names is None else tuple(region_names),
            hour_of_day_utc=hour_of_day_utc, queue_weight=queue_weight)
        return list(self.answer(query, pool=pool).options)

    def best_feasible(self, gpu_name: str, duration_hours: float, pool,
                      hour_of_day_utc: float,
                      region_names: Optional[Sequence[str]] = None,
                      queue_weight: float = 0.5) -> Optional[PlacementOption]:
        """Deprecated: the best placement the pool can grant right now.

        Use ``answer(query, pool=snapshot).best``.
        """
        _deprecated("best_feasible", "query with hour_of_day_utc, pool=snapshot")
        query = PlacementQuery(
            gpu_name=gpu_name, duration_hours=duration_hours,
            region_names=None if region_names is None else tuple(region_names),
            hour_of_day_utc=hour_of_day_utc, queue_weight=queue_weight)
        return self.answer(query, pool=pool).best
