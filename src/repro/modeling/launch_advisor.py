"""Launch-time and region advisor (the paper's Section V-C future work).

The paper observes that revocations depend on the region, the GPU type, and
the local time of day, and suggests "investigating how strategically
launching transient clusters at different times of day and different data
center locations can help mitigate revocation impacts" as future work.
This module implements that advisor: it scores (region, local launch hour)
combinations for a given GPU type and run duration by the probability that
a worker survives the run, estimated by Monte-Carlo sampling of the
calibrated revocation model (or of any model with the same interface).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.revocation import RevocationModel
from repro.errors import ConfigurationError
from repro.units import hour_bin


@dataclass(frozen=True)
class LaunchOption:
    """One scored (region, launch hour) option.

    Attributes:
        gpu_name: GPU type being launched.
        region_name: Candidate region.
        launch_hour_local: Candidate local launch hour (0-23).
        revocation_probability: Estimated probability that one worker is
            revoked before the run completes.
        expected_revocations: Expected revocations for the whole cluster
            (``num_workers`` times the per-worker probability).
    """

    gpu_name: str
    region_name: str
    launch_hour_local: int
    revocation_probability: float
    expected_revocations: float


class LaunchAdvisor:
    """Scores candidate regions and launch hours for a transient cluster.

    Args:
        revocation_model: Generative revocation model to sample from; the
            calibrated default model when omitted.
        samples_per_option: Monte-Carlo samples per (region, hour) option.
        seed: Seed for the sampling generator.
    """

    def __init__(self, revocation_model: Optional[RevocationModel] = None,
                 samples_per_option: int = 400, seed: int = 0):
        if samples_per_option < 10:
            raise ConfigurationError("samples_per_option must be at least 10")
        self._model_template = revocation_model
        self.samples_per_option = samples_per_option
        self.seed = seed

    def _model_for(self, option_index: int) -> RevocationModel:
        rng = np.random.default_rng(self.seed * 9973 + option_index)
        if self._model_template is None:
            return RevocationModel(rng=rng)
        # Re-instantiate with the same calibration but an option-specific
        # generator so options are scored independently and reproducibly.
        return RevocationModel(rng=rng,
                               calibration=dict(self._model_template._calibration),
                               hourly_weights=dict(self._model_template._hourly_weights))

    # ------------------------------------------------------------------
    # Scoring.
    # ------------------------------------------------------------------
    def score_option(self, gpu_name: str, region_name: str, launch_hour_local: int,
                     duration_hours: float, num_workers: int = 1,
                     option_index: int = 0) -> LaunchOption:
        """Score one (region, launch hour) option by Monte-Carlo sampling."""
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        gpu = get_gpu(gpu_name)
        model = self._model_for(option_index)
        # The batched sampler consumes the RNG exactly like a sample() loop,
        # so scores are unchanged — just cheaper per option.
        outcomes = model.sample_batch(gpu.name, region_name,
                                      self.samples_per_option,
                                      launch_hour_local=float(launch_hour_local))
        revoked_within_run = sum(
            1 for outcome in outcomes
            if outcome.revoked and outcome.lifetime_hours <= duration_hours)
        probability = revoked_within_run / self.samples_per_option
        return LaunchOption(gpu_name=gpu.name, region_name=region_name,
                            launch_hour_local=hour_bin(launch_hour_local),
                            revocation_probability=probability,
                            expected_revocations=probability * num_workers)

    def rank_options(self, gpu_name: str, duration_hours: float,
                     num_workers: int = 1,
                     region_names: Optional[Sequence[str]] = None,
                     launch_hours: Sequence[int] = (0, 4, 8, 12, 16, 20)
                     ) -> List[LaunchOption]:
        """Score and rank all candidate (region, hour) combinations.

        Args:
            gpu_name: GPU type of the workers.
            duration_hours: Expected run duration.
            num_workers: Number of transient workers in the cluster.
            region_names: Candidate regions; defaults to every region that
                offers the GPU type in the calibrated model.
            launch_hours: Candidate local launch hours.

        Returns:
            Options sorted from the safest (lowest revocation probability)
            to the riskiest.
        """
        model = self._model_for(0)
        if region_names is None:
            region_names = [region for gpu, region in model.available_cells()
                            if gpu == get_gpu(gpu_name).name]
        if not region_names:
            raise ConfigurationError(f"no candidate regions offer {gpu_name!r}")
        options: List[LaunchOption] = []
        option_index = 1
        for region_name in region_names:
            for hour in launch_hours:
                options.append(self.score_option(
                    gpu_name, region_name, hour, duration_hours,
                    num_workers=num_workers, option_index=option_index))
                option_index += 1
        return sorted(options, key=lambda option: (option.revocation_probability,
                                                   option.region_name,
                                                   option.launch_hour_local))

    def recommend(self, gpu_name: str, duration_hours: float, num_workers: int = 1,
                  region_names: Optional[Sequence[str]] = None,
                  launch_hours: Sequence[int] = (0, 4, 8, 12, 16, 20)) -> LaunchOption:
        """The single safest (region, launch hour) option."""
        return self.rank_options(gpu_name, duration_hours, num_workers=num_workers,
                                 region_names=region_names,
                                 launch_hours=launch_hours)[0]
