"""Launch-time and region advisor (the paper's Section V-C future work).

The paper observes that revocations depend on the region, the GPU type, and
the local time of day, and suggests "investigating how strategically
launching transient clusters at different times of day and different data
center locations can help mitigate revocation impacts" as future work.
This module implements that advisor: it scores (region, local launch hour)
combinations for a given GPU type and run duration by the probability that
a worker survives the run, estimated by Monte-Carlo sampling of the
calibrated revocation model (or of any model with the same interface).

Pool-aware placement
--------------------
:meth:`LaunchAdvisor.place` extends the advisor to *fleet* scale: it ranks
``(gpu, region, launch hour)`` options by combining the calibrated
revocation score with the **live** state of a shared transient-server pool
(free/warm slot counts and replacement-queue depth, duck-typed against
:class:`repro.scenarios.pool.TransientPool`).  Options with no acquirable
slot are marked infeasible and rank after every feasible one, so a fleet
controller can fall back to the next-best feasible placement instead of
queueing blindly on an exhausted cell.  Scoring is deterministic — each
``(gpu, region, hour)`` option draws from its own stable generator and is
memoized per duration — so fleet payloads stay reproducible and
serial/parallel sweep executions stay bit-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.errors import ConfigurationError
from repro.units import hour_bin


@dataclass(frozen=True)
class LaunchOption:
    """One scored (region, launch hour) option.

    Attributes:
        gpu_name: GPU type being launched.
        region_name: Candidate region.
        launch_hour_local: Candidate local launch hour (0-23).
        revocation_probability: Estimated probability that one worker is
            revoked before the run completes.
        expected_revocations: Expected revocations for the whole cluster
            (``num_workers`` times the per-worker probability).
    """

    gpu_name: str
    region_name: str
    launch_hour_local: int
    revocation_probability: float
    expected_revocations: float


@dataclass(frozen=True)
class PlacementOption:
    """One pool-aware ``(gpu, region, launch hour)`` placement option.

    Attributes:
        gpu_name: GPU type being placed.
        region_name: Candidate region.
        launch_hour_local: Local launch hour (0-23) the score was taken at.
        revocation_probability: Estimated probability that one worker is
            revoked before the placement horizon elapses.
        acquirable: Slots (cold free + warm) the pool could hand out right
            now in this cell.
        queue_depth: Replacement requests already queued on this cell.
        feasible: Whether the pool can grant a slot here right now.
        score: Combined rank score (lower is better): the revocation
            probability plus a queue-pressure penalty; infeasible options
            always rank after every feasible one.
    """

    gpu_name: str
    region_name: str
    launch_hour_local: int
    revocation_probability: float
    acquirable: int
    queue_depth: int
    feasible: bool
    score: float


class LaunchAdvisor:
    """Scores candidate regions and launch hours for a transient cluster.

    Args:
        revocation_model: Generative revocation model to sample from; the
            calibrated default model when omitted.
        samples_per_option: Monte-Carlo samples per (region, hour) option.
        seed: Seed for the sampling generator.
    """

    def __init__(self, revocation_model: Optional[RevocationModel] = None,
                 samples_per_option: int = 400, seed: int = 0):
        if samples_per_option < 10:
            raise ConfigurationError("samples_per_option must be at least 10")
        self._model_template = revocation_model
        self.samples_per_option = samples_per_option
        self.seed = seed
        #: Memoized per-(gpu, region, hour, duration) revocation scores for
        #: the pool-aware placement path, which re-scores the same cells
        #: every time a fleet replacement is denied.
        self._probability_cache: Dict[Tuple[str, str, int, float], float] = {}

    def _model_for(self, option_index: int) -> RevocationModel:
        rng = np.random.default_rng(self.seed * 9973 + option_index)
        if self._model_template is None:
            return RevocationModel(rng=rng)
        # Re-instantiate with the same calibration but an option-specific
        # generator so options are scored independently and reproducibly.
        return RevocationModel(rng=rng,
                               calibration=dict(self._model_template._calibration),
                               hourly_weights=dict(self._model_template._hourly_weights))

    # ------------------------------------------------------------------
    # Scoring.
    # ------------------------------------------------------------------
    def score_option(self, gpu_name: str, region_name: str, launch_hour_local: int,
                     duration_hours: float, num_workers: int = 1,
                     option_index: int = 0) -> LaunchOption:
        """Score one (region, launch hour) option by Monte-Carlo sampling."""
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        gpu = get_gpu(gpu_name)
        model = self._model_for(option_index)
        # The batched sampler consumes the RNG exactly like a sample() loop,
        # so scores are unchanged — just cheaper per option.
        outcomes = model.sample_batch(gpu.name, region_name,
                                      self.samples_per_option,
                                      launch_hour_local=float(launch_hour_local))
        revoked_within_run = sum(
            1 for outcome in outcomes
            if outcome.revoked and outcome.lifetime_hours <= duration_hours)
        probability = revoked_within_run / self.samples_per_option
        return LaunchOption(gpu_name=gpu.name, region_name=region_name,
                            launch_hour_local=hour_bin(launch_hour_local),
                            revocation_probability=probability,
                            expected_revocations=probability * num_workers)

    def rank_options(self, gpu_name: str, duration_hours: float,
                     num_workers: int = 1,
                     region_names: Optional[Sequence[str]] = None,
                     launch_hours: Sequence[int] = (0, 4, 8, 12, 16, 20)
                     ) -> List[LaunchOption]:
        """Score and rank all candidate (region, hour) combinations.

        Args:
            gpu_name: GPU type of the workers.
            duration_hours: Expected run duration.
            num_workers: Number of transient workers in the cluster.
            region_names: Candidate regions; defaults to every region that
                offers the GPU type in the calibrated model.
            launch_hours: Candidate local launch hours.

        Returns:
            Options sorted from the safest (lowest revocation probability)
            to the riskiest.
        """
        model = self._model_for(0)
        if region_names is None:
            region_names = [region for gpu, region in model.available_cells()
                            if gpu == get_gpu(gpu_name).name]
        if not region_names:
            raise ConfigurationError(f"no candidate regions offer {gpu_name!r}")
        options: List[LaunchOption] = []
        option_index = 1
        for region_name in region_names:
            for hour in launch_hours:
                options.append(self.score_option(
                    gpu_name, region_name, hour, duration_hours,
                    num_workers=num_workers, option_index=option_index))
                option_index += 1
        return sorted(options, key=lambda option: (option.revocation_probability,
                                                   option.region_name,
                                                   option.launch_hour_local))

    # ------------------------------------------------------------------
    # Pool-aware placement.
    # ------------------------------------------------------------------
    def revocation_score(self, gpu_name: str, region_name: str,
                         launch_hour_local: int, duration_hours: float) -> float:
        """Memoized per-worker revocation probability for one option.

        Each ``(gpu, region, hour)`` option samples from its own stable
        generator (seeded from the advisor seed and a digest of the option
        itself, independent of call order), so repeated placement queries
        during a fleet run are deterministic and cheap.
        """
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        gpu = get_gpu(gpu_name)
        hour = hour_bin(launch_hour_local)
        key = (gpu.name, region_name, hour, float(duration_hours))
        cached = self._probability_cache.get(key)
        if cached is not None:
            return cached
        # A stable per-option index: CRC32 keeps the derived generator
        # independent of the order in which options are first scored.
        option_index = zlib.crc32(
            f"place:{gpu.name}:{region_name}:{hour}".encode("utf-8"))
        option = self.score_option(gpu.name, region_name, hour, duration_hours,
                                   option_index=option_index)
        self._probability_cache[key] = option.revocation_probability
        return option.revocation_probability

    def place(self, gpu_name: str, duration_hours: float, pool,
              hour_of_day_utc: float,
              region_names: Optional[Sequence[str]] = None,
              queue_weight: float = 0.5) -> List[PlacementOption]:
        """Rank live placements for one worker against a shared pool.

        Args:
            gpu_name: GPU type of the worker being placed.
            duration_hours: Placement horizon the revocation score covers.
            pool: Live pool state, duck-typed against
                :class:`repro.scenarios.pool.TransientPool`: must offer
                ``cells()``, ``acquirable(gpu, region)``,
                ``pending_waiters(gpu, region)``, and
                ``capacity(gpu, region)``.
            hour_of_day_utc: Current UTC wall-clock hour; each candidate is
                scored at its region's *local* hour, like the launch-time
                revocation draws of the fleet runner.
            region_names: Candidate regions; defaults to every pool cell
                offering the GPU type.
            queue_weight: Weight of the queue-pressure penalty (queued
                waiters per slot of capacity) added to the revocation
                probability.

        Returns:
            Options sorted best first: all feasible options (a slot is
            acquirable right now) ordered by score, then the infeasible
            ones, with deterministic ``(region, hour)`` tie-breaks.
        """
        if queue_weight < 0:
            raise ConfigurationError("queue_weight must be non-negative")
        gpu = get_gpu(gpu_name)
        if region_names is None:
            region_names = [region for cell_gpu, region in pool.cells()
                            if cell_gpu == gpu.name]
        if not region_names:
            raise ConfigurationError(
                f"the pool has no {gpu_name!r} cells to place into")
        options: List[PlacementOption] = []
        for region_name in region_names:
            region = get_region(region_name)
            hour = hour_bin(region.local_hour(hour_of_day_utc))
            probability = self.revocation_score(gpu.name, region.name, hour,
                                                duration_hours)
            acquirable = pool.acquirable(gpu.name, region.name)
            queue_depth = pool.pending_waiters(gpu.name, region.name)
            capacity = pool.capacity(gpu.name, region.name)
            pressure = queue_depth / capacity if capacity > 0 else 0.0
            options.append(PlacementOption(
                gpu_name=gpu.name, region_name=region.name,
                launch_hour_local=hour,
                revocation_probability=probability,
                acquirable=acquirable, queue_depth=queue_depth,
                feasible=acquirable > 0,
                score=probability + queue_weight * pressure))
        return sorted(options, key=lambda option: (
            not option.feasible, option.score, option.region_name,
            option.launch_hour_local))

    def best_feasible(self, gpu_name: str, duration_hours: float, pool,
                      hour_of_day_utc: float,
                      region_names: Optional[Sequence[str]] = None,
                      queue_weight: float = 0.5) -> Optional[PlacementOption]:
        """The best placement the pool can grant right now, or ``None``."""
        options = self.place(gpu_name, duration_hours, pool, hour_of_day_utc,
                             region_names=region_names,
                             queue_weight=queue_weight)
        best = options[0]
        return best if best.feasible else None

    def recommend(self, gpu_name: str, duration_hours: float, num_workers: int = 1,
                  region_names: Optional[Sequence[str]] = None,
                  launch_hours: Sequence[int] = (0, 4, 8, 12, 16, 20)) -> LaunchOption:
        """The single safest (region, launch hour) option."""
        return self.rank_options(gpu_name, duration_hours, num_workers=num_workers,
                                 region_names=region_names,
                                 launch_hours=launch_hours)[0]
