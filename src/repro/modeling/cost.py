"""Monetary cost estimation (extension beyond the paper).

The paper motivates transient servers by their lower unit cost but never
formalizes the cost model.  This module provides one: given a cluster, a
predicted training time, and the expected revocation behaviour, it
estimates the dollar cost of the run on transient versus on-demand servers,
including the extra time transient runs spend on replacements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.machines import PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.errors import ConfigurationError
from repro.modeling.training_time import TrainingTimePrediction
from repro.training.cluster import ClusterSpec


@dataclass(frozen=True)
class CostEstimate:
    """Cost estimate of one training run.

    Attributes:
        transient_cost_usd: Predicted cost using transient GPU workers.
        on_demand_cost_usd: Predicted cost using on-demand GPU workers.
        savings_usd: Absolute savings of the transient configuration.
        savings_fraction: Relative savings (0-1).
        transient_duration_hours: Run duration on transient servers
            (includes revocation overhead).
        on_demand_duration_hours: Run duration on on-demand servers (no
            revocation overhead).
    """

    transient_cost_usd: float
    on_demand_cost_usd: float
    savings_usd: float
    savings_fraction: float
    transient_duration_hours: float
    on_demand_duration_hours: float


class ClusterCostModel:
    """Estimates the monetary cost of a training run.

    Args:
        price_catalog: Hourly prices; Google Cloud list prices by default.
    """

    def __init__(self, price_catalog: Optional[PriceCatalog] = None):
        self.prices = price_catalog if price_catalog is not None else default_price_catalog()

    # ------------------------------------------------------------------
    # Hourly rates.
    # ------------------------------------------------------------------
    def hourly_rate(self, cluster: ClusterSpec, transient_workers: bool) -> float:
        """Hourly cost (USD) of the full cluster.

        Parameter servers are always billed on-demand (they must not be
        revoked); only GPU workers switch between transient and on-demand.
        """
        rate = cluster.num_parameter_servers * self.prices.machine_hourly_price(
            PARAMETER_SERVER_MACHINE, transient=False)
        for worker in cluster.workers:
            rate += self.prices.machine_hourly_price(
                gpu_worker_machine(worker.gpu_name), transient=transient_workers)
        return rate

    # ------------------------------------------------------------------
    # Run-level estimates.
    # ------------------------------------------------------------------
    def estimate(self, cluster: ClusterSpec,
                 transient_prediction: TrainingTimePrediction,
                 on_demand_prediction: Optional[TrainingTimePrediction] = None
                 ) -> CostEstimate:
        """Estimate transient vs. on-demand cost for one training run.

        Args:
            cluster: Cluster configuration.
            transient_prediction: Training-time prediction including the
                revocation overhead term.
            on_demand_prediction: Prediction without revocations; when
                omitted, the transient prediction minus its revocation term
                is used (same compute and checkpoint terms).
        """
        transient_hours = transient_prediction.total_hours
        if on_demand_prediction is not None:
            on_demand_hours = on_demand_prediction.total_hours
        else:
            on_demand_hours = (transient_prediction.total_seconds
                               - transient_prediction.revocation_seconds) / 3600.0
        if transient_hours <= 0 or on_demand_hours <= 0:
            raise ConfigurationError("predicted durations must be positive")
        transient_cost = self.hourly_rate(cluster, transient_workers=True) * transient_hours
        on_demand_cost = self.hourly_rate(cluster, transient_workers=False) * on_demand_hours
        savings = on_demand_cost - transient_cost
        fraction = savings / on_demand_cost if on_demand_cost > 0 else 0.0
        return CostEstimate(
            transient_cost_usd=transient_cost,
            on_demand_cost_usd=on_demand_cost,
            savings_usd=savings,
            savings_fraction=fraction,
            transient_duration_hours=transient_hours,
            on_demand_duration_hours=on_demand_hours,
        )

    def cost_per_step(self, cluster: ClusterSpec, cluster_speed: float,
                      transient_workers: bool) -> float:
        """Marginal cost (USD) per training step at a given cluster speed."""
        if cluster_speed <= 0:
            raise ConfigurationError("cluster_speed must be positive")
        steps_per_hour = cluster_speed * 3600.0
        return self.hourly_rate(cluster, transient_workers) / steps_per_hour
