"""Regression-based performance modeling (the paper's core contribution).

The package contains a small from-scratch regression toolkit (ordinary
least squares, epsilon-SVR with polynomial/RBF kernels, PCA, min-max
scaling, k-fold cross validation, grid search, MAE/MAPE metrics) and the
predictors the paper builds on top of it:

* the eight step-time prediction models of Table II
  (:mod:`repro.modeling.speed_predictor`),
* the four checkpoint-time prediction models of Table IV
  (:mod:`repro.modeling.checkpoint_predictor`),
* heterogeneous-cluster speed composition and the end-to-end training-time
  estimator of Eqs. (4)-(5) (:mod:`repro.modeling.training_time`),
* the empirical-CDF revocation estimator used by Eq. (5)
  (:mod:`repro.modeling.revocation_estimator`), and
* a monetary-cost extension (:mod:`repro.modeling.cost`).
"""

from repro.modeling.metrics import mean_absolute_error, mean_absolute_percentage_error, root_mean_squared_error
from repro.modeling.preprocessing import MinMaxScaler, StandardScaler, PCA
from repro.modeling.linear import LinearRegression
from repro.modeling.kernels import linear_kernel, polynomial_kernel, rbf_kernel
from repro.modeling.svr import SVR
from repro.modeling.model_selection import KFold, cross_validate_mae, grid_search_svr, train_test_split
from repro.modeling.speed_predictor import (
    ClusterSpeedPredictor,
    StepTimePredictor,
    build_table2_models,
)
from repro.modeling.checkpoint_predictor import CheckpointTimePredictor, build_table4_models
from repro.modeling.revocation_estimator import EmpiricalLifetimeDistribution, RevocationEstimator
from repro.modeling.training_time import TrainingTimeEstimator, TrainingTimePrediction
from repro.modeling.cost import ClusterCostModel, CostEstimate
from repro.modeling.launch_advisor import LaunchAdvisor, LaunchOption
from repro.modeling.placement import (
    PlacementDecision,
    PlacementOption,
    PlacementQuery,
    ScoreTable,
)

__all__ = [
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_squared_error",
    "MinMaxScaler",
    "StandardScaler",
    "PCA",
    "LinearRegression",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "SVR",
    "KFold",
    "cross_validate_mae",
    "grid_search_svr",
    "train_test_split",
    "StepTimePredictor",
    "ClusterSpeedPredictor",
    "build_table2_models",
    "CheckpointTimePredictor",
    "build_table4_models",
    "EmpiricalLifetimeDistribution",
    "RevocationEstimator",
    "TrainingTimeEstimator",
    "TrainingTimePrediction",
    "ClusterCostModel",
    "CostEstimate",
    "LaunchAdvisor",
    "LaunchOption",
    "PlacementQuery",
    "PlacementOption",
    "PlacementDecision",
    "ScoreTable",
]
