"""End-to-end training time estimation (Section VI-A, Eqs. 4-5).

The paper composes its performance models into a prediction of the total
time to complete ``Nw`` training steps on a (possibly heterogeneous,
possibly transient) cluster:

    T = Nw / sp  +  ceil(Nw / Ic) * Tc  +  Nr * (Tp + Ts)          (4)
    Nr = sum_i Pr(R_i)                                             (5)

where ``sp`` is the predicted cluster speed (sum of per-worker speeds),
``Ic`` the checkpoint interval, ``Tc`` the predicted checkpoint time,
``Tp`` the time to provision a new GPU server, ``Ts`` the worker
replacement time, and ``Pr(R_i)`` the probability worker ``i`` is revoked
during the run (queried from the empirical lifetime CDFs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ModelingError
from repro.modeling.checkpoint_predictor import CheckpointTimePredictor
from repro.modeling.revocation_estimator import RevocationEstimator
from repro.modeling.speed_predictor import ClusterSpeedPredictor
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob


@dataclass(frozen=True)
class TrainingTimePrediction:
    """A decomposed training-time prediction.

    Attributes:
        total_seconds: Predicted end-to-end training time ``T``.
        compute_seconds: The ``Nw / sp`` term.
        checkpoint_seconds: The ``ceil(Nw / Ic) * Tc`` term.
        revocation_seconds: The ``Nr * (Tp + Ts)`` term.
        cluster_speed: Predicted cluster speed ``sp`` (steps/second).
        checkpoint_time: Predicted per-checkpoint time ``Tc`` (seconds).
        num_checkpoints: ``ceil(Nw / Ic)``.
        expected_revocations: ``Nr``.
    """

    total_seconds: float
    compute_seconds: float
    checkpoint_seconds: float
    revocation_seconds: float
    cluster_speed: float
    checkpoint_time: float
    num_checkpoints: int
    expected_revocations: float

    @property
    def total_hours(self) -> float:
        """Predicted training time in hours."""
        return self.total_seconds / 3600.0


class TrainingTimeEstimator:
    """Composes speed, checkpoint, and revocation models into Eq. (4).

    Args:
        cluster_speed_predictor: Per-worker/cluster speed model (Table II
            models composed per Section VI-A).
        checkpoint_predictor: Checkpoint-time model (Table IV).
        revocation_estimator: Empirical-CDF revocation estimator (Eq. 5);
            omit it to predict for non-revocable (on-demand) clusters.
        provisioning_seconds: Running-average time to provision a new GPU
            server (``Tp``).
        replacement_seconds: Running-average worker replacement time
            (``Ts``).
    """

    def __init__(self, cluster_speed_predictor: ClusterSpeedPredictor,
                 checkpoint_predictor: CheckpointTimePredictor,
                 revocation_estimator: Optional[RevocationEstimator] = None,
                 provisioning_seconds: float = 85.0,
                 replacement_seconds: float = 20.0):
        if provisioning_seconds < 0 or replacement_seconds < 0:
            raise ConfigurationError("overhead times must be non-negative")
        self.cluster_speed_predictor = cluster_speed_predictor
        self.checkpoint_predictor = checkpoint_predictor
        self.revocation_estimator = revocation_estimator
        self.provisioning_seconds = provisioning_seconds
        self.replacement_seconds = replacement_seconds

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------
    def predict(self, job: TrainingJob, cluster: ClusterSpec,
                fixed_point_iterations: int = 2) -> TrainingTimePrediction:
        """Predict the end-to-end training time for a job on a cluster.

        The expected-revocation term depends on the run duration, which
        itself depends on the expected revocations; a couple of fixed-point
        iterations resolve the circularity (the paper's example uses a
        duration-free approximation, which the first iteration reproduces).

        Args:
            job: Training workload (``Nw``, ``Ic``, model).
            cluster: Cluster configuration.
            fixed_point_iterations: Number of refinement passes for ``Nr``.
        """
        if fixed_point_iterations < 1:
            raise ModelingError("fixed_point_iterations must be >= 1")
        speed = self.cluster_speed_predictor.predict_cluster_speed(
            job.profile.gflops, list(cluster.gpu_names()))
        if speed <= 0:
            raise ModelingError("predicted cluster speed must be positive")
        checkpoint_time = self.checkpoint_predictor.predict_time(job.profile.checkpoint)
        num_checkpoints = math.ceil(job.total_steps / job.checkpoint_interval_steps)

        compute_seconds = job.total_steps / speed
        checkpoint_seconds = num_checkpoints * checkpoint_time

        expected_revocations = 0.0
        revocation_seconds = 0.0
        total = compute_seconds + checkpoint_seconds
        transient_workers: Sequence[Tuple[str, str]] = [
            (worker.gpu_name, worker.region_name)
            for worker in cluster.workers if worker.transient]
        if self.revocation_estimator is not None and transient_workers:
            for _ in range(fixed_point_iterations):
                duration_hours = total / 3600.0
                expected_revocations = self.revocation_estimator.expected_revocations(
                    transient_workers, duration_hours)
                revocation_seconds = expected_revocations * (
                    self.provisioning_seconds + self.replacement_seconds)
                total = compute_seconds + checkpoint_seconds + revocation_seconds

        return TrainingTimePrediction(
            total_seconds=total,
            compute_seconds=compute_seconds,
            checkpoint_seconds=checkpoint_seconds,
            revocation_seconds=revocation_seconds,
            cluster_speed=speed,
            checkpoint_time=checkpoint_time,
            num_checkpoints=num_checkpoints,
            expected_revocations=expected_revocations,
        )

    def prediction_error(self, predicted_seconds: float, measured_seconds: float) -> float:
        """Relative prediction error ``|predicted - measured| / measured``."""
        if measured_seconds <= 0:
            raise ModelingError("measured_seconds must be positive")
        return abs(predicted_seconds - measured_seconds) / measured_seconds
