"""Placement query API and the vectorized revocation score table.

This module carries the redesigned placement interface shared by the fleet
runner (:mod:`repro.scenarios.fleet`) and the online placement service
(:mod:`repro.serve`): one :class:`PlacementQuery` in, one
:class:`PlacementDecision` out, replacing the five overlapping
``LaunchAdvisor`` entry points (``score_option`` / ``rank_options`` /
``place`` / ``best_feasible`` / ``recommend``) that accreted through PR 5.

The design separates the two halves of every placement decision:

* **Score computation** — the calibrated per-worker revocation probability
  of each ``(gpu, region, launch hour)`` cell.  Expensive (Monte-Carlo
  against :class:`~repro.cloud.revocation.RevocationModel`), but pure: it
  depends only on the calibration, the advisor seed, and the sample count.
  :class:`ScoreTable` precomputes it for every cell at once and caches it
  forever — score tables survive arbitrary pool churn.
* **Pool-state reads** — live availability and queue pressure.  Cheap
  (O(cells) counter reads through a versioned
  :class:`~repro.scenarios.pool.PoolSnapshot`), but volatile: any pool
  transition invalidates feasibility.  These are re-read per query and
  never cached across pool versions.

Score-table representation
--------------------------
The PR 5 advisor memoized one Monte-Carlo probability per
``(gpu, region, hour, duration)`` — a new duration meant re-sampling every
cell.  The table stores something strictly stronger: the **sorted revoked
lifetimes** of each ``(gpu, region, hour)`` option.  The Monte-Carlo
probability for *any* horizon ``d`` is then the rank of ``d`` in that
vector (``count(lifetime <= d) / samples``), so one build answers every
duration, and a whole candidate set is scored with a single vectorized
comparison against the row-stacked lifetime matrix.

Bit-identity contract
---------------------
Table scores are **bit-identical** to the sampling path they replace, for
every duration: each option replays the exact RNG tape of the legacy
per-option sampler (one stable generator per option, seeded from the
advisor seed and a CRC digest of the option, consuming the underlying
bit stream double-for-double — a block ``Generator.random`` draw yields
the same doubles as the scalar ``uniform``/``choice`` calls it replaces).
``tests/test_placement_api.py`` pins the equivalence across the full
calibration grid, and the adaptive-placement golden fixture in
``tests/test_fleet_golden_identity.py`` pins that fleets behave
identically with the table on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.cloud.revocation import (
    MAX_TRANSIENT_LIFETIME_HOURS,
    RevocationModel,
)
from repro.errors import ConfigurationError
from repro.units import hour_bin, hour_bins, wrap_hour

#: Candidate revocation times per Monte-Carlo draw.  Mirrors the
#: :class:`~repro.cloud.revocation.RevocationModel` constructor default the
#: legacy per-option sampler always used (it re-instantiated the model
#: without forwarding ``candidates``), which the tape replay must match.
DEFAULT_CANDIDATES = 8

#: Tape stride per Monte-Carlo sample: one revocation test, then (for
#: revoked samples) ``DEFAULT_CANDIDATES`` candidate draws plus one
#: hour-of-day resampling choice.
_DRAWS_PER_SAMPLE = DEFAULT_CANDIDATES + 2


@dataclass(frozen=True)
class PlacementQuery:
    """One placement question: where (and optionally when) to launch.

    A query runs in one of two modes:

    * **live** (``hour_of_day_utc`` given): every candidate region is
      scored at its *local* hour right now — the mode fleet controllers
      and the online service use against a live pool snapshot;
    * **grid** (``launch_hours`` given): every ``(region, hour)``
      combination of an explicit local launch-hour grid is scored — the
      paper's offline Section V-C planning mode.

    Queries are frozen and hashable, so they key decision caches directly.

    Attributes:
        gpu_name: GPU type of the worker(s) being placed.
        duration_hours: Horizon the revocation score covers.
        num_workers: Cluster size; scales ``expected_revocations``.
        region_names: Candidate regions; ``None`` means every region that
            offers the GPU (in the pool when one is supplied, else in the
            calibration).
        launch_hours: Candidate local launch hours (grid mode); mutually
            exclusive with ``hour_of_day_utc``.
        hour_of_day_utc: Current UTC wall-clock hour (live mode).
        queue_weight: Weight of the queue-pressure penalty (queued waiters
            per slot of capacity) added to the revocation probability.
    """

    gpu_name: str
    duration_hours: float
    num_workers: int = 1
    region_names: Optional[Tuple[str, ...]] = None
    launch_hours: Optional[Tuple[int, ...]] = None
    hour_of_day_utc: Optional[float] = None
    queue_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if self.queue_weight < 0:
            raise ConfigurationError("queue_weight must be non-negative")
        if (self.launch_hours is None) == (self.hour_of_day_utc is None):
            raise ConfigurationError(
                "a placement query needs exactly one of launch_hours (grid "
                "mode) or hour_of_day_utc (live mode)")
        if self.region_names is not None:
            names = tuple(self.region_names)
            if not names:
                raise ConfigurationError(
                    "region_names must name at least one candidate region")
            object.__setattr__(self, "region_names", names)
        if self.launch_hours is not None:
            hours = tuple(hour_bin(hour) for hour in self.launch_hours)
            if not hours:
                raise ConfigurationError(
                    "launch_hours must name at least one candidate hour")
            object.__setattr__(self, "launch_hours", hours)
        else:
            object.__setattr__(self, "hour_of_day_utc",
                               wrap_hour(float(self.hour_of_day_utc)))
        object.__setattr__(self, "duration_hours", float(self.duration_hours))
        object.__setattr__(self, "queue_weight", float(self.queue_weight))

    def to_params(self) -> Dict[str, Any]:
        """A JSON-encodable parameter dict (defaults omitted)."""
        params: Dict[str, Any] = {"gpu_name": self.gpu_name,
                                  "duration_hours": self.duration_hours}
        if self.num_workers != 1:
            params["num_workers"] = self.num_workers
        if self.region_names is not None:
            params["region_names"] = list(self.region_names)
        if self.launch_hours is not None:
            params["launch_hours"] = list(self.launch_hours)
        if self.hour_of_day_utc is not None:
            params["hour_of_day_utc"] = self.hour_of_day_utc
        if self.queue_weight != 0.5:
            params["queue_weight"] = self.queue_weight
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "PlacementQuery":
        """Rebuild a query from :meth:`to_params` output (wire format)."""
        known = {"gpu_name", "duration_hours", "num_workers", "region_names",
                 "launch_hours", "hour_of_day_utc", "queue_weight"}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(
                f"unknown placement-query fields: {sorted(unknown)}")
        kwargs = dict(params)
        if "region_names" in kwargs and kwargs["region_names"] is not None:
            kwargs["region_names"] = tuple(kwargs["region_names"])
        if "launch_hours" in kwargs and kwargs["launch_hours"] is not None:
            kwargs["launch_hours"] = tuple(kwargs["launch_hours"])
        return cls(**kwargs)


@dataclass(frozen=True)
class PlacementOption:
    """One ranked ``(gpu, region, launch hour)`` option of a decision.

    Attributes:
        gpu_name: GPU type being placed.
        region_name: Candidate region.
        launch_hour_local: Local launch hour (0-23) the score was taken at.
        revocation_probability: Estimated probability that one worker is
            revoked before the query horizon elapses.
        expected_revocations: ``num_workers`` times the per-worker
            probability.
        acquirable: Slots (cold free + warm) the pool could hand out right
            now in this cell; ``None`` when the query ran without a pool.
        queue_depth: Replacement requests already queued on this cell.
        feasible: Whether the pool can grant a slot here right now (always
            true without a pool).
        score: Combined rank score (lower is better): the revocation
            probability plus the queue-pressure penalty; infeasible options
            always rank after every feasible one.
    """

    gpu_name: str
    region_name: str
    launch_hour_local: int
    revocation_probability: float
    expected_revocations: float
    acquirable: Optional[int]
    queue_depth: int
    feasible: bool
    score: float

    def to_params(self) -> Dict[str, Any]:
        """A JSON-encodable option dict (wire format)."""
        return {"gpu_name": self.gpu_name, "region_name": self.region_name,
                "launch_hour_local": self.launch_hour_local,
                "revocation_probability": self.revocation_probability,
                "expected_revocations": self.expected_revocations,
                "acquirable": self.acquirable,
                "queue_depth": self.queue_depth,
                "feasible": self.feasible, "score": self.score}


@dataclass(frozen=True)
class PlacementDecision:
    """The ranked answer to one :class:`PlacementQuery`.

    Attributes:
        query: The query this decision answers.
        options: Candidate placements sorted best first — feasible options
            by score, then the infeasible tail, with deterministic
            ``(region, hour)`` tie-breaks.
        pool_version: The pool-state version the feasibility columns were
            read at (``None`` for poolless queries).  Decision caches key
            on it: a version bump makes every cached decision stale.
    """

    query: PlacementQuery
    options: Tuple[PlacementOption, ...] = field(default=())
    pool_version: Optional[int] = None

    @property
    def best(self) -> Optional[PlacementOption]:
        """The best feasible option, or ``None`` when nothing is grantable."""
        if self.options and self.options[0].feasible:
            return self.options[0]
        return None

    @property
    def feasible(self) -> bool:
        """Whether at least one option is grantable right now."""
        return self.best is not None

    def to_params(self) -> Dict[str, Any]:
        """A JSON-encodable decision dict (wire format)."""
        return {"query": self.query.to_params(),
                "options": [option.to_params() for option in self.options],
                "pool_version": self.pool_version}


class ScoreTable:
    """Precomputed revocation scores for every ``(gpu, region, hour)`` cell.

    Each option's Monte-Carlo draw replays the exact RNG tape of the
    legacy per-option sampler (see the module docstring), then keeps the
    *sorted revoked lifetimes* instead of a single per-duration
    probability.  ``probability(..., duration)`` is a rank lookup, and
    :meth:`probabilities` scores a whole candidate set with one vectorized
    comparison against the row-stacked lifetime matrix — the stage that
    makes the online service's query path sampling-free.

    Args:
        revocation_model: Calibration source; the calibrated default model
            when omitted.  Only its calibration and hourly-weight tables
            are read — the table never consumes the model's own generator.
        samples: Monte-Carlo samples per option.
        seed: Advisor seed the per-option generators derive from.
    """

    def __init__(self, revocation_model: Optional[RevocationModel] = None,
                 samples: int = 400, seed: int = 0):
        if samples < 10:
            raise ConfigurationError("samples must be at least 10")
        self._model = (revocation_model if revocation_model is not None
                       else RevocationModel())
        self.samples = int(samples)
        self.seed = int(seed)
        #: Sorted revoked lifetimes per built ``(gpu, region, hour)`` option.
        self._lifetimes: Dict[Tuple[str, str, int], np.ndarray] = {}
        #: Row-stacked (inf-padded) lifetime matrices per candidate set,
        #: so repeated queries over the same cells are one array op.
        self._matrices: Dict[Tuple[str, Tuple[Tuple[str, int], ...]],
                             np.ndarray] = {}

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def available_cells(self) -> Sequence[Tuple[str, str]]:
        """All calibrated ``(gpu, region)`` combinations."""
        return self._model.available_cells()

    @property
    def options_built(self) -> int:
        """Options whose lifetime vectors are materialized."""
        return len(self._lifetimes)

    # ------------------------------------------------------------------
    # Build (the cacheable, pool-independent stage).
    # ------------------------------------------------------------------
    def _build_option(self, gpu_name: str, region_name: str,
                      hour: int) -> np.ndarray:
        """Replay one option's sampling tape; return sorted revoked lifetimes.

        The legacy sampler seeded one generator per option
        (``seed * 9973 + crc32("place:<gpu>:<region>:<hour>")``) and
        consumed it through scalar ``uniform``/``choice`` calls.  Every one
        of those calls takes exactly one double from the underlying bit
        stream, so a single block ``random()`` draw is the same tape; the
        replay below applies the same arithmetic to the same doubles
        (candidate transforms stay scalar on purpose — numpy's SIMD
        log/pow kernels differ from the scalar ones by an ulp).  Revoked
        samples consume ``DEFAULT_CANDIDATES + 2`` doubles, survivors one;
        the block is sized for the worst case and the excess — drawn from
        a generator that exists only for this option — is discarded.
        """
        params = self._model.params_for(gpu_name, region_name)
        shape, scale = params.weibull_shape, params.weibull_scale_hours
        cap_quantile = 1.0 - np.exp(
            -((MAX_TRANSIENT_LIFETIME_HOURS / scale) ** shape))
        inv_shape = 1.0 / shape
        weights = np.asarray(self._model.hourly_weights(gpu_name),
                             dtype=np.float64)
        launch_hour = wrap_hour(float(hour))
        option_index = zlib.crc32(
            f"place:{gpu_name}:{region_name}:{hour}".encode("utf-8"))
        rng = np.random.default_rng(self.seed * 9973 + option_index)
        tape = rng.random(self.samples * _DRAWS_PER_SAMPLE)
        candidates = DEFAULT_CANDIDATES
        position = 0
        lifetimes: List[float] = []
        for _ in range(self.samples):
            if tape[position] >= params.p_revoke_24h:
                position += 1
                continue
            position += 1
            uniforms = tape[position:position + candidates] * cap_quantile
            times = [float(scale * (-np.log(1.0 - u)) ** inv_shape)
                     for u in uniforms.tolist()]
            candidate_weights = weights[hour_bins(
                launch_hour + np.asarray(times))] + 1e-9
            probabilities = candidate_weights / candidate_weights.sum()
            # Generator.choice(n, p=...) == cumsum-normalize + one double +
            # searchsorted; replayed verbatim so the chosen index matches.
            cdf = probabilities.cumsum()
            cdf /= cdf[-1]
            chosen = int(cdf.searchsorted(tape[position + candidates],
                                          side="right"))
            if chosen >= candidates:  # pragma: no cover - u < 1 <= cdf[-1]
                chosen = candidates - 1
            lifetimes.append(times[chosen])
            position += candidates + 1
        return np.sort(np.asarray(lifetimes, dtype=np.float64))

    def lifetimes(self, gpu_name: str, region_name: str,
                  launch_hour_local: int) -> np.ndarray:
        """The sorted revoked-lifetime vector of one option (built lazily)."""
        gpu = get_gpu(gpu_name)
        region = get_region(region_name)
        hour = hour_bin(launch_hour_local)
        key = (gpu.name, region.name, hour)
        vector = self._lifetimes.get(key)
        if vector is None:
            vector = self._build_option(gpu.name, region.name, hour)
            self._lifetimes[key] = vector
        return vector

    def warm(self, cells: Optional[Sequence[Tuple[str, str]]] = None,
             hours: Sequence[int] = tuple(range(24))) -> int:
        """Build every ``(cell, hour)`` option up front; returns the count.

        The online service calls this at startup so steady-state queries
        never sample; fleets rely on the lazy path instead and only build
        the options they actually rank.
        """
        if cells is None:
            cells = self.available_cells()
        for gpu_name, region_name in cells:
            for hour in hours:
                self.lifetimes(gpu_name, region_name, hour)
        return self.options_built

    # ------------------------------------------------------------------
    # Lookup (exact for every duration).
    # ------------------------------------------------------------------
    def probability(self, gpu_name: str, region_name: str,
                    launch_hour_local: int, duration_hours: float) -> float:
        """Per-worker revocation probability within ``duration_hours``.

        Bit-identical to the legacy per-option Monte-Carlo estimate for
        every duration: the rank of the horizon among the option's revoked
        lifetimes is exactly the ``lifetime <= duration`` count the
        sampling loop took.
        """
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        vector = self.lifetimes(gpu_name, region_name, launch_hour_local)
        count = int(np.searchsorted(vector, float(duration_hours),
                                    side="right"))
        return count / self.samples

    def probabilities(self, gpu_name: str,
                      cells: Sequence[Tuple[str, int]],
                      duration_hours: float) -> np.ndarray:
        """Vectorized :meth:`probability` over a ``(region, hour)`` set.

        All candidate options are scored with one comparison against the
        cached row-stacked lifetime matrix — the "score every cell at
        once" stage of the serve hot path.  Elementwise identical to the
        scalar lookups (the padding rows compare with ``inf``).
        """
        if duration_hours <= 0:
            raise ConfigurationError("duration_hours must be positive")
        gpu = get_gpu(gpu_name)
        key = (gpu.name, tuple((region, hour_bin(hour))
                               for region, hour in cells))
        matrix = self._matrices.get(key)
        if matrix is None:
            vectors = [self.lifetimes(gpu.name, region, hour)
                       for region, hour in key[1]]
            width = max((vector.size for vector in vectors), default=0)
            matrix = np.full((len(vectors), max(width, 1)), np.inf)
            for row, vector in enumerate(vectors):
                matrix[row, :vector.size] = vector
            self._matrices[key] = matrix
        counts = (matrix <= float(duration_hours)).sum(axis=1)
        return counts / float(self.samples)
