"""Kernel functions for support vector regression.

The paper's GPU-specific SVR models use a two-degree polynomial kernel and
an RBF kernel (Section III-B, Eqs. 2-3); the checkpoint model uses the RBF
kernel (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _as_matrix(values) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataError("kernel inputs must be 1-D or 2-D arrays")
    return array


def linear_kernel(a, b) -> np.ndarray:
    """Plain dot-product kernel ``K(x, y) = x . y``."""
    left, right = _as_matrix(a), _as_matrix(b)
    return left @ right.T


def polynomial_kernel(a, b, degree: int = 2, coef0: float = 1.0,
                      gamma: float = 1.0) -> np.ndarray:
    """Polynomial kernel ``K(x, y) = (gamma * x . y + coef0) ** degree``.

    The paper uses a two-degree polynomial.
    """
    if degree < 1:
        raise DataError("degree must be >= 1")
    left, right = _as_matrix(a), _as_matrix(b)
    return (gamma * (left @ right.T) + coef0) ** degree


def rbf_kernel(a, b, gamma: float = 1.0) -> np.ndarray:
    """RBF kernel ``K(x, y) = exp(-gamma * ||x - y||^2)``.

    The paper parameterizes the RBF width as ``1 / (2 * sigma^2)``; ``gamma``
    plays that role here.
    """
    if gamma <= 0:
        raise DataError("gamma must be positive")
    left, right = _as_matrix(a), _as_matrix(b)
    left_sq = np.sum(left ** 2, axis=1)[:, None]
    right_sq = np.sum(right ** 2, axis=1)[None, :]
    squared_distance = np.maximum(0.0, left_sq + right_sq - 2.0 * (left @ right.T))
    return np.exp(-gamma * squared_distance)
