"""Epsilon-insensitive support vector regression (from scratch).

The paper evaluates SVR with two-degree polynomial and RBF kernels for
step-time prediction (Table II) and with an RBF kernel for checkpoint-time
prediction (Table IV), tuning the penalty ``C`` (called ``p`` in the paper)
and the epsilon tube via grid search.

The implementation solves the standard epsilon-SVR dual problem

    minimize  0.5 * (a - a*)^T K (a - a*) + eps * sum(a + a*) - y^T (a - a*)
    subject to  sum(a - a*) = 0,   0 <= a, a* <= C

with SciPy's SLSQP solver, which is plenty for the paper's dataset sizes
(twenty models).  Lagrange multipliers, support vectors, and the intercept
are exposed for inspection.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy import optimize

from repro.errors import DataError, ModelingError, NotFittedError
from repro.modeling.kernels import linear_kernel, polynomial_kernel, rbf_kernel


def _make_kernel(kernel: str, degree: int, gamma: Optional[float],
                 coef0: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    name = kernel.lower()
    if name == "linear":
        return linear_kernel
    if name in ("poly", "polynomial"):
        return lambda a, b: polynomial_kernel(a, b, degree=degree,
                                              gamma=gamma if gamma else 1.0,
                                              coef0=coef0)
    if name == "rbf":
        return lambda a, b: rbf_kernel(a, b, gamma=gamma if gamma else 1.0)
    raise ModelingError(f"unknown kernel {kernel!r}; use 'linear', 'poly', or 'rbf'")


class SVR:
    """Epsilon-insensitive support vector regression.

    Args:
        kernel: ``"linear"``, ``"poly"``, or ``"rbf"``.
        C: Penalty parameter (the paper's ``p``), searched over [10, 100].
        epsilon: Width of the insensitive tube, searched over [0.01, 0.1].
        gamma: Kernel coefficient.  ``None`` selects ``1 / (n_features *
            Var(X))`` ("scale"), matching common practice.
        degree: Degree of the polynomial kernel (2 in the paper).
        coef0: Independent term of the polynomial kernel.
    """

    def __init__(self, kernel: str = "rbf", C: float = 10.0, epsilon: float = 0.05,
                 gamma: Optional[float] = None, degree: int = 2, coef0: float = 1.0):
        if C <= 0:
            raise ModelingError("C must be positive")
        if epsilon < 0:
            raise ModelingError("epsilon must be non-negative")
        self.kernel = kernel
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        # Fitted state.
        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self._gamma_value: Optional[float] = None

    # ------------------------------------------------------------------
    # Internal helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _as_matrix(features) -> np.ndarray:
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim != 2:
            raise DataError("features must be 1-D or 2-D")
        return matrix

    def _resolve_gamma(self, matrix: np.ndarray) -> float:
        if self.gamma is not None:
            return float(self.gamma)
        variance = matrix.var()
        if variance <= 0:
            variance = 1.0
        return 1.0 / (matrix.shape[1] * variance)

    # ------------------------------------------------------------------
    # Fitting.
    # ------------------------------------------------------------------
    def fit(self, features, targets) -> "SVR":
        """Fit the SVR by solving the dual quadratic program."""
        matrix = self._as_matrix(features)
        target = np.asarray(targets, dtype=float).ravel()
        if matrix.shape[0] != target.shape[0]:
            raise DataError("features and targets must have the same length")
        if matrix.shape[0] < 2:
            raise DataError("SVR needs at least two samples")
        n = matrix.shape[0]
        self._gamma_value = self._resolve_gamma(matrix)
        kernel_fn = _make_kernel(self.kernel, self.degree, self._gamma_value, self.coef0)
        gram = kernel_fn(matrix, matrix)
        # Guard against slight asymmetry from floating point.
        gram = 0.5 * (gram + gram.T) + 1e-10 * np.eye(n)

        def objective(variables: np.ndarray) -> float:
            alpha, alpha_star = variables[:n], variables[n:]
            beta = alpha - alpha_star
            return float(0.5 * beta @ gram @ beta
                         + self.epsilon * np.sum(alpha + alpha_star)
                         - target @ beta)

        def gradient(variables: np.ndarray) -> np.ndarray:
            alpha, alpha_star = variables[:n], variables[n:]
            beta = alpha - alpha_star
            common = gram @ beta
            grad_alpha = common + self.epsilon - target
            grad_alpha_star = -common + self.epsilon + target
            return np.concatenate([grad_alpha, grad_alpha_star])

        constraints = [{
            "type": "eq",
            "fun": lambda v: np.sum(v[:n]) - np.sum(v[n:]),
            "jac": lambda v: np.concatenate([np.ones(n), -np.ones(n)]),
        }]
        bounds = [(0.0, self.C)] * (2 * n)
        initial = np.zeros(2 * n)
        result = optimize.minimize(objective, initial, jac=gradient, bounds=bounds,
                                   constraints=constraints, method="SLSQP",
                                   options={"maxiter": 500, "ftol": 1e-9})
        if not result.success and not np.isfinite(result.fun):
            raise ModelingError(f"SVR dual optimization failed: {result.message}")
        alpha, alpha_star = result.x[:n], result.x[n:]
        beta = alpha - alpha_star

        self.support_vectors_ = matrix
        self.dual_coef_ = beta
        self.intercept_ = self._compute_intercept(gram, target, alpha, alpha_star, beta)
        return self

    def _compute_intercept(self, gram: np.ndarray, target: np.ndarray,
                           alpha: np.ndarray, alpha_star: np.ndarray,
                           beta: np.ndarray) -> float:
        decision = gram @ beta
        tolerance = 1e-6 * self.C
        estimates = []
        free_alpha = (alpha > tolerance) & (alpha < self.C - tolerance)
        free_alpha_star = (alpha_star > tolerance) & (alpha_star < self.C - tolerance)
        estimates.extend(target[free_alpha] - decision[free_alpha] - self.epsilon)
        estimates.extend(target[free_alpha_star] - decision[free_alpha_star] + self.epsilon)
        if estimates:
            return float(np.mean(estimates))
        # Fall back to the unconstrained least-squares intercept.
        return float(np.mean(target - decision))

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------
    def predict(self, features) -> np.ndarray:
        """Predict targets for new samples."""
        if (self.support_vectors_ is None or self.dual_coef_ is None
                or self.intercept_ is None):
            raise NotFittedError("SVR must be fitted before predict")
        matrix = self._as_matrix(features)
        if matrix.shape[1] != self.support_vectors_.shape[1]:
            raise DataError("feature count differs from the fitted data")
        kernel_fn = _make_kernel(self.kernel, self.degree, self._gamma_value, self.coef0)
        gram = kernel_fn(matrix, self.support_vectors_)
        return gram @ self.dual_coef_ + self.intercept_

    @property
    def n_support_(self) -> int:
        """Number of support vectors (non-zero dual coefficients)."""
        if self.dual_coef_ is None:
            raise NotFittedError("SVR must be fitted first")
        return int(np.sum(np.abs(self.dual_coef_) > 1e-8))

    def score_mae(self, features, targets) -> float:
        """Mean absolute error on the given samples."""
        from repro.modeling.metrics import mean_absolute_error

        return mean_absolute_error(targets, self.predict(features))
