"""Checkpoint-time prediction models (Table IV).

The paper evaluates four regression models for predicting the time to
checkpoint a model, using the checkpoint file sizes as features:

1. univariate linear on the total size ``Sc``,
2. multivariate linear on the data and meta file sizes ``(Sd, Sm)``,
3. multivariate linear on two PCA components of ``(Sd, Sm, Si)``, and
4. SVR with an RBF kernel on ``Sc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cmdare.profiler import CheckpointMeasurement
from repro.errors import DataError, ModelingError, NotFittedError
from repro.modeling.linear import LinearRegression
from repro.modeling.metrics import mean_absolute_error, mean_absolute_percentage_error
from repro.modeling.model_selection import cross_validate_mae, grid_search_svr, train_test_split
from repro.modeling.preprocessing import PCA
from repro.modeling.svr import SVR
from repro.workloads.checkpoints import CheckpointFiles

#: Default SVR hyperparameters used when grid search is skipped.
DEFAULT_SVR_C = 50.0
DEFAULT_SVR_EPSILON = 0.05

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class CheckpointModelSpec:
    """Configuration of one Table IV model.

    Attributes:
        name: Row label, e.g. ``"SVR RBF kernel"``.
        feature_mode: ``"sc"`` (total size), ``"sd_sm"`` (data and meta
            sizes), or ``"pca"`` (two PCA components of data/meta/index).
        estimator: ``"linear"`` or ``"svr_rbf"``.
    """

    name: str
    feature_mode: str
    estimator: str


class CheckpointTimePredictor:
    """One checkpoint-time prediction model."""

    def __init__(self, spec: CheckpointModelSpec, svr_C: float = DEFAULT_SVR_C,
                 svr_epsilon: float = DEFAULT_SVR_EPSILON):
        if spec.feature_mode not in ("sc", "sd_sm", "pca"):
            raise ModelingError(f"unknown feature mode {spec.feature_mode!r}")
        if spec.estimator not in ("linear", "svr_rbf"):
            raise ModelingError(f"unknown estimator {spec.estimator!r}")
        self.spec = spec
        self.svr_C = svr_C
        self.svr_epsilon = svr_epsilon
        self._pca: Optional[PCA] = PCA(n_components=2) if spec.feature_mode == "pca" else None
        self._model = self._make_estimator()
        self._fitted = False

    def _make_estimator(self):
        if self.spec.estimator == "linear":
            return LinearRegression()
        return SVR(kernel="rbf", C=self.svr_C, epsilon=self.svr_epsilon)

    # ------------------------------------------------------------------
    # Feature extraction.
    # ------------------------------------------------------------------
    def _raw_features(self, measurements: Sequence[CheckpointMeasurement]) -> np.ndarray:
        data = np.array([m.data_bytes for m in measurements]) / _MB
        meta = np.array([m.meta_bytes for m in measurements]) / _MB
        index = np.array([m.index_bytes for m in measurements]) / _MB
        total = np.array([m.total_bytes for m in measurements]) / _MB
        if self.spec.feature_mode == "sc":
            return total.reshape(-1, 1)
        if self.spec.feature_mode == "sd_sm":
            return np.column_stack([data, meta])
        return np.column_stack([data, meta, index])

    def _features_from_files(self, files: CheckpointFiles) -> np.ndarray:
        if self.spec.feature_mode == "sc":
            raw = np.array([[files.total_mb]])
        elif self.spec.feature_mode == "sd_sm":
            raw = np.array([[files.data_mb, files.meta_mb]])
        else:
            raw = np.array([[files.data_mb, files.meta_mb, files.index_mb]])
        if self._pca is not None:
            return self._pca.transform(raw)
        return raw

    # ------------------------------------------------------------------
    # Fitting and prediction.
    # ------------------------------------------------------------------
    def fit(self, measurements: Sequence[CheckpointMeasurement]) -> "CheckpointTimePredictor":
        """Fit the model on checkpoint measurements."""
        if len(measurements) < 3:
            raise DataError("need at least three checkpoint measurements")
        raw = self._raw_features(measurements)
        targets = np.array([m.duration for m in measurements])
        if self._pca is not None:
            features = self._pca.fit_transform(raw)
        else:
            features = raw
        self._model.fit(features, targets)
        self._fitted = True
        return self

    def predict_time(self, files: CheckpointFiles) -> float:
        """Predict the checkpoint duration (seconds) for the given files."""
        if not self._fitted:
            raise NotFittedError("CheckpointTimePredictor must be fitted first")
        prediction = float(self._model.predict(self._features_from_files(files))[0])
        return max(1e-3, prediction)

    # ------------------------------------------------------------------
    # Evaluation (Table IV protocol).
    # ------------------------------------------------------------------
    def evaluate(self, measurements: Sequence[CheckpointMeasurement],
                 test_fraction: float = 0.2, n_splits: int = 5,
                 seed: int = 0) -> "CheckpointEvaluation":
        """Evaluate with the paper's protocol (4:1 split, k-fold CV MAE)."""
        raw = self._raw_features(measurements)
        targets = np.array([m.duration for m in measurements])
        rng = np.random.default_rng(seed)
        train_x, test_x, train_y, test_y = train_test_split(
            raw, targets, test_fraction=test_fraction, rng=rng)
        pca = PCA(n_components=2).fit(train_x) if self._pca is not None else None
        transform = (lambda x: pca.transform(x)) if pca is not None else (lambda x: x)

        def factory():
            return CheckpointTimePredictor(self.spec, svr_C=self.svr_C,
                                           svr_epsilon=self.svr_epsilon)._make_estimator()

        cv = cross_validate_mae(factory, transform(train_x), train_y,
                                n_splits=min(n_splits, len(train_y)), rng=rng)
        model = self._make_estimator()
        model.fit(transform(train_x), train_y)
        predictions = model.predict(transform(test_x))
        return CheckpointEvaluation(spec=self.spec, kfold_mae=cv.mean_mae,
                                    kfold_mae_std=cv.std_mae,
                                    test_mae=mean_absolute_error(test_y, predictions),
                                    test_mape=mean_absolute_percentage_error(test_y, predictions))


@dataclass(frozen=True)
class CheckpointEvaluation:
    """One row of Table IV."""

    spec: CheckpointModelSpec
    kfold_mae: float
    kfold_mae_std: float
    test_mae: float
    test_mape: float


#: The four models of Table IV, in the paper's row order.
TABLE4_MODEL_SPECS: Tuple[CheckpointModelSpec, ...] = (
    CheckpointModelSpec("Univariate", "sc", "linear"),
    CheckpointModelSpec("Multivariate", "sd_sm", "linear"),
    CheckpointModelSpec("Multivariate, Two Components PCA", "pca", "linear"),
    CheckpointModelSpec("SVR RBF kernel", "sc", "svr_rbf"),
)


def build_table4_models(measurements: Sequence[CheckpointMeasurement],
                        use_grid_search: bool = False,
                        seed: int = 0) -> Dict[str, CheckpointTimePredictor]:
    """Fit all four Table IV models on the given checkpoint measurements."""
    models: Dict[str, CheckpointTimePredictor] = {}
    for spec in TABLE4_MODEL_SPECS:
        svr_c, svr_eps = DEFAULT_SVR_C, DEFAULT_SVR_EPSILON
        if use_grid_search and spec.estimator == "svr_rbf":
            totals = np.array([[m.total_bytes / _MB] for m in measurements])
            targets = np.array([m.duration for m in measurements])
            result = grid_search_svr(totals, targets, kernel="rbf",
                                     rng=np.random.default_rng(seed))
            svr_c, svr_eps = result.best_C, result.best_epsilon
        predictor = CheckpointTimePredictor(spec, svr_C=svr_c, svr_epsilon=svr_eps)
        predictor.fit(measurements)
        models[spec.name] = predictor
    return models


def evaluate_table4_models(measurements: Sequence[CheckpointMeasurement],
                           seed: int = 0) -> List[CheckpointEvaluation]:
    """Produce every row of Table IV for the given measurement dataset."""
    return [CheckpointTimePredictor(spec).evaluate(measurements, seed=seed)
            for spec in TABLE4_MODEL_SPECS]
