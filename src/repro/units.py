"""Unit constants and small conversion helpers.

The library follows a strict unit convention:

* time is expressed in **seconds** (floats),
* data sizes in **bytes** (ints or floats),
* computation in **FLOPs** (floats; one multiply-add counts as two FLOPs),
* computational capacity in **FLOPS** (FLOPs per second),
* training progress in **steps**, and speed in **steps per second**.

Helper functions convert to the human-friendly units the paper reports
(GFLOPs, teraflops, megabytes, hours) at presentation boundaries only.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

#: Hours per day; the modulus of every hour-of-day computation.
HOURS_PER_DAY = 24.0


def wrap_hour(hour: float) -> float:
    """Wrap an hour-of-day value into the half-open range ``[0, 24)``.

    A plain ``hour % 24.0`` does not guarantee that range: for tiny negative
    inputs the float remainder rounds up to the modulus itself
    (``-1e-18 % 24.0 == 24.0``), which then indexes one past the end of any
    24-bin table.  Every hour-of-day computation in the library (simulator
    clock, region local time, revocation model, Fig. 9 histograms) must wrap
    through this helper so UTC offsets and negative/large times agree
    end-to-end.
    """
    wrapped = float(hour) % HOURS_PER_DAY
    return wrapped if wrapped < HOURS_PER_DAY else 0.0


def hour_bin(hour: float) -> int:
    """The integer hour-of-day bin (0-23) containing ``hour``.

    Floor-based: ``int()`` truncates toward zero and disagrees with the
    wrapped value for negative inputs, so binning must happen after
    :func:`wrap_hour`.
    """
    return int(math.floor(wrap_hour(hour)))


def hour_bins(hours) -> "np.ndarray":
    """Vectorized :func:`hour_bin`: an int64 bin (0-23) per element.

    Elementwise identical to ``[hour_bin(h) for h in hours]`` — the same
    wrap (including the tiny-negative remainder edge) and the same floor —
    in three array operations.  Used by the batched revocation sampler.
    """
    import numpy as np

    wrapped = np.asarray(hours, dtype=np.float64) % HOURS_PER_DAY
    wrapped = np.where(wrapped < HOURS_PER_DAY, wrapped, 0.0)
    return np.floor(wrapped).astype(np.int64)

# ---------------------------------------------------------------------------
# Data sizes.
# ---------------------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# ---------------------------------------------------------------------------
# Computation.
# ---------------------------------------------------------------------------
FLOP = 1.0
MEGAFLOP = 1e6
GIGAFLOP = 1e9
TERAFLOP = 1e12


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * HOUR


def bytes_to_mb(num_bytes: float) -> float:
    """Convert bytes to mebibytes (the paper reports checkpoint sizes in MB)."""
    return num_bytes / MB


def mb_to_bytes(megabytes: float) -> float:
    """Convert mebibytes to bytes."""
    return megabytes * MB


def flops_to_gflops(flops: float) -> float:
    """Convert FLOPs to GFLOPs (model complexity unit used by the paper)."""
    return flops / GIGAFLOP


def gflops_to_flops(gflops: float) -> float:
    """Convert GFLOPs to FLOPs."""
    return gflops * GIGAFLOP


def flops_to_teraflops(flops: float) -> float:
    """Convert FLOPS to teraflops (GPU capacity unit used by the paper)."""
    return flops / TERAFLOP


def teraflops_to_flops(teraflops: float) -> float:
    """Convert teraflops to FLOPS."""
    return teraflops * TERAFLOP
