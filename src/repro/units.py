"""Unit constants and small conversion helpers.

The library follows a strict unit convention:

* time is expressed in **seconds** (floats),
* data sizes in **bytes** (ints or floats),
* computation in **FLOPs** (floats; one multiply-add counts as two FLOPs),
* computational capacity in **FLOPS** (FLOPs per second),
* training progress in **steps**, and speed in **steps per second**.

Helper functions convert to the human-friendly units the paper reports
(GFLOPs, teraflops, megabytes, hours) at presentation boundaries only.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

# ---------------------------------------------------------------------------
# Data sizes.
# ---------------------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# ---------------------------------------------------------------------------
# Computation.
# ---------------------------------------------------------------------------
FLOP = 1.0
MEGAFLOP = 1e6
GIGAFLOP = 1e9
TERAFLOP = 1e12


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOUR


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * HOUR


def bytes_to_mb(num_bytes: float) -> float:
    """Convert bytes to mebibytes (the paper reports checkpoint sizes in MB)."""
    return num_bytes / MB


def mb_to_bytes(megabytes: float) -> float:
    """Convert mebibytes to bytes."""
    return megabytes * MB


def flops_to_gflops(flops: float) -> float:
    """Convert FLOPs to GFLOPs (model complexity unit used by the paper)."""
    return flops / GIGAFLOP


def gflops_to_flops(gflops: float) -> float:
    """Convert GFLOPs to FLOPs."""
    return gflops * GIGAFLOP


def flops_to_teraflops(flops: float) -> float:
    """Convert FLOPS to teraflops (GPU capacity unit used by the paper)."""
    return flops / TERAFLOP


def teraflops_to_flops(teraflops: float) -> float:
    """Convert teraflops to FLOPS."""
    return teraflops * TERAFLOP
