"""Parameter-server bottleneck detection and mitigation (Section VI-B).

CM-DARE compares the *predicted* cluster training speed (the sum of the
individual workers' predicted speeds, Section VI-A) against the *measured*
speed from the performance tracker.  After a warm-up period, a measured
speed falling short of the prediction by more than a configurable threshold
flags a bottleneck; the suggested mitigation is to add a parameter server,
which the paper shows improves training speed by up to 70.6% (Fig. 12) at
the cost of a ~10 s session restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, DataError
from repro.cmdare.tracker import PerformanceTracker

#: Warm-up period (seconds) before the detector starts judging, and the
#: relative deviation threshold; both values come from Section VI-B
#: ("a warmup period of 30 seconds and a threshold of 6.7%").
DEFAULT_WARMUP_SECONDS = 30.0
DEFAULT_THRESHOLD = 0.067


@dataclass(frozen=True)
class BottleneckReport:
    """Outcome of one bottleneck check.

    Attributes:
        bottleneck_detected: Whether the measured speed fell short of the
            prediction by more than the threshold.
        predicted_speed: Predicted cluster speed (steps/second).
        measured_speed: Measured cluster speed (steps/second).
        deviation: Relative shortfall ``(predicted - measured) / predicted``.
        in_warmup: True when the check happened inside the warm-up window
            (in which case no bottleneck is ever reported).
        suggestion: Human-readable mitigation suggestion.
    """

    bottleneck_detected: bool
    predicted_speed: float
    measured_speed: float
    deviation: float
    in_warmup: bool
    suggestion: str


class BottleneckDetector:
    """Flags parameter-server bottlenecks from prediction/measurement gaps.

    Args:
        warmup_seconds: Time to wait after session start before judging.
        threshold: Relative shortfall that triggers a bottleneck flag.
    """

    def __init__(self, warmup_seconds: float = DEFAULT_WARMUP_SECONDS,
                 threshold: float = DEFAULT_THRESHOLD):
        if warmup_seconds < 0:
            raise ConfigurationError("warmup_seconds must be non-negative")
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.warmup_seconds = warmup_seconds
        self.threshold = threshold

    # ------------------------------------------------------------------
    # Core check.
    # ------------------------------------------------------------------
    def check(self, predicted_speed: float, measured_speed: float,
              elapsed_seconds: float) -> BottleneckReport:
        """Compare a prediction against a measurement.

        Args:
            predicted_speed: Predicted cluster speed (steps/second).
            measured_speed: Measured cluster speed (steps/second).
            elapsed_seconds: Time since the session (or the last
                reconfiguration) started.
        """
        if predicted_speed <= 0:
            raise DataError("predicted_speed must be positive")
        if measured_speed < 0:
            raise DataError("measured_speed must be non-negative")
        deviation = (predicted_speed - measured_speed) / predicted_speed
        in_warmup = elapsed_seconds < self.warmup_seconds
        detected = (not in_warmup) and deviation > self.threshold
        if detected:
            suggestion = ("measured speed is {:.1%} below the prediction; the "
                          "parameter servers are the likely bottleneck — add a "
                          "parameter server (expect up to ~70% speedup at the "
                          "cost of a ~10 s session restart)").format(deviation)
        elif in_warmup:
            suggestion = "still inside the warm-up window; no judgement yet"
        else:
            suggestion = "measured speed is consistent with the prediction"
        return BottleneckReport(bottleneck_detected=detected,
                                predicted_speed=predicted_speed,
                                measured_speed=measured_speed,
                                deviation=deviation, in_warmup=in_warmup,
                                suggestion=suggestion)

    def check_tracker(self, tracker: PerformanceTracker,
                      predicted_speed: float,
                      last_n_windows: Optional[int] = 3) -> BottleneckReport:
        """Check a live session through its performance tracker."""
        measured = tracker.average_speed(last_n_windows=last_n_windows)
        elapsed = tracker.elapsed_since_start()
        return self.check(predicted_speed, measured, elapsed)

    # ------------------------------------------------------------------
    # Slow-worker variant (the paper notes the same approach detects
    # under-performing workers).
    # ------------------------------------------------------------------
    def check_worker(self, predicted_step_time: float, measured_step_time: float,
                     elapsed_seconds: float) -> BottleneckReport:
        """Flag an individual worker training slower than predicted."""
        if predicted_step_time <= 0 or measured_step_time <= 0:
            raise DataError("step times must be positive")
        return self.check(predicted_speed=1.0 / predicted_step_time,
                          measured_speed=1.0 / measured_step_time,
                          elapsed_seconds=elapsed_seconds)
