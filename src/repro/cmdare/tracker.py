"""Training performance tracker.

Every training server runs a performance tracker that forwards training
speed to the CM-DARE performance profiler (steps (4) of the Fig. 1
workflow).  The tracker consumes the session's trace incrementally and
exposes windowed speed estimates, which the bottleneck detector compares
against predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DataError
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class SpeedSample:
    """One windowed speed observation.

    Attributes:
        time: Simulation time at the end of the window.
        cluster_step: Cluster step count at the end of the window.
        speed: Cluster training speed over the window (steps/second).
    """

    time: float
    cluster_step: int
    speed: float


class PerformanceTracker:
    """Tracks the windowed training speed of one session.

    Args:
        session: The training session to observe.
        window_seconds: Length of the speed-averaging window.
    """

    def __init__(self, session: TrainingSession, window_seconds: float = 30.0):
        if window_seconds <= 0:
            raise DataError("window_seconds must be positive")
        self.session = session
        self.window_seconds = window_seconds
        self._samples: List[SpeedSample] = []
        self._consumed_records = 0
        self._window_start_time = session.simulator.now
        self._window_start_step = 0

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def poll(self) -> Optional[SpeedSample]:
        """Consume new trace records; emit a sample when a window closes.

        Returns:
            The newly closed window's sample, or ``None`` if the current
            window has not yet elapsed.
        """
        records = self.session.trace.step_records
        self._consumed_records = len(records)
        now = self.session.simulator.now
        if now - self._window_start_time < self.window_seconds:
            return None
        current_step = self.session.cluster_steps
        elapsed = now - self._window_start_time
        steps = current_step - self._window_start_step
        sample = SpeedSample(time=now, cluster_step=current_step,
                             speed=max(0.0, steps / elapsed))
        self._samples.append(sample)
        self._window_start_time = now
        self._window_start_step = current_step
        return sample

    def reset_window(self) -> None:
        """Restart the current averaging window at the present time.

        The controller calls this after cluster reconfigurations (a
        revocation, a replacement joining, an added parameter server) so the
        next speed sample does not mix measurements from two different
        cluster shapes.
        """
        self._window_start_time = self.session.simulator.now
        self._window_start_step = self.session.cluster_steps

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[SpeedSample]:
        """All closed-window samples so far."""
        return list(self._samples)

    def latest_speed(self) -> float:
        """Speed of the most recent closed window.

        Raises:
            DataError: If no window has closed yet.
        """
        if not self._samples:
            raise DataError("no speed window has closed yet")
        return self._samples[-1].speed

    def average_speed(self, last_n_windows: Optional[int] = None) -> float:
        """Average speed over the most recent ``last_n_windows`` windows."""
        if not self._samples:
            raise DataError("no speed window has closed yet")
        samples = self._samples if last_n_windows is None else self._samples[-last_n_windows:]
        return sum(sample.speed for sample in samples) / len(samples)

    def elapsed_since_start(self) -> float:
        """Seconds elapsed since the tracker was attached."""
        return self.session.simulator.now - self.session.trace.start_time
