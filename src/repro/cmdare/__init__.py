"""CM-DARE: the cloud measurement and training framework.

This package reproduces the framework of Fig. 1:

* :mod:`repro.cmdare.tracker` — the per-cluster training performance
  tracker that reports windowed training speed,
* :mod:`repro.cmdare.profiler` — the performance profiler that aggregates
  measurements across sessions into datasets for model building,
* :mod:`repro.cmdare.transient_tf` — the transient-TensorFlow recovery
  policies (chief-checkpoint handoff vs. the legacy IP-reuse behaviour),
* :mod:`repro.cmdare.resource_manager` — sets up and reconfigures training
  clusters through the simulated cloud provider,
* :mod:`repro.cmdare.bottleneck` — detection and mitigation of
  parameter-server bottlenecks (Section VI-B),
* :mod:`repro.cmdare.controller` — the controller tying revocation
  handling, replacement, and bottleneck mitigation together,
* :mod:`repro.cmdare.experiment` — one-call experiment drivers used by the
  measurement campaigns and the examples.
"""

from repro.cmdare.tracker import PerformanceTracker, SpeedSample
from repro.cmdare.profiler import PerformanceProfiler, SpeedMeasurement, CheckpointMeasurement
from repro.cmdare.transient_tf import RecoveryMode, TransientTensorFlowPolicy
from repro.cmdare.resource_manager import ResourceManager, ProvisionedCluster
from repro.cmdare.bottleneck import BottleneckDetector, BottleneckReport
from repro.cmdare.mitigation import MitigationPlan, MitigationPlanner
from repro.cmdare.controller import CMDareController
from repro.cmdare.experiment import ExperimentResult, run_training_experiment

__all__ = [
    "PerformanceTracker",
    "SpeedSample",
    "PerformanceProfiler",
    "SpeedMeasurement",
    "CheckpointMeasurement",
    "RecoveryMode",
    "TransientTensorFlowPolicy",
    "ResourceManager",
    "ProvisionedCluster",
    "BottleneckDetector",
    "BottleneckReport",
    "MitigationPlan",
    "MitigationPlanner",
    "CMDareController",
    "ExperimentResult",
    "run_training_experiment",
]
