"""Resource manager: provisions and reconfigures training clusters.

The resource manager is step (2) of the Fig. 1 workflow: given the cluster
configuration in the practitioner's training script, it requests the
parameter servers (on-demand) and GPU workers (transient) from the cloud
provider, and later fulfils configuration changes decided by the controller
(replacement workers after revocations, extra parameter servers when a
bottleneck is flagged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cloud.instance import CloudInstance, ServerClass
from repro.cloud.machines import PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.provider import InstanceRequest, SimulatedCloudProvider
from repro.errors import ConfigurationError
from repro.training.cluster import ClusterSpec, WorkerSpec


@dataclass
class ProvisionedCluster:
    """The cloud instances backing one training cluster.

    Attributes:
        spec: The cluster specification that was provisioned.
        parameter_servers: Instances running parameter servers.
        workers: Instances running GPU workers, keyed by worker index label.
    """

    spec: ClusterSpec
    parameter_servers: List[CloudInstance] = field(default_factory=list)
    workers: Dict[str, CloudInstance] = field(default_factory=dict)

    @property
    def num_running_workers(self) -> int:
        """Number of worker instances currently running."""
        return sum(1 for instance in self.workers.values() if instance.is_running)

    def all_instances(self) -> List[CloudInstance]:
        """All instances of the cluster."""
        return self.parameter_servers + list(self.workers.values())


class ResourceManager:
    """Provisions clusters and replacement workers through the provider.

    Args:
        provider: The simulated cloud provider.
    """

    def __init__(self, provider: SimulatedCloudProvider):
        self.provider = provider

    # ------------------------------------------------------------------
    # Initial provisioning.
    # ------------------------------------------------------------------
    def provision(self, spec: ClusterSpec,
                  on_worker_running: Optional[Callable[[CloudInstance], None]] = None,
                  on_worker_revoked: Optional[Callable[[CloudInstance], None]] = None
                  ) -> ProvisionedCluster:
        """Request every server of a cluster specification.

        Parameter servers are requested as on-demand (non-revocable) servers
        and GPU workers follow each worker spec's transient flag, matching
        the paper's setup.

        Args:
            spec: Cluster to provision.
            on_worker_running: Callback when a GPU worker reaches RUNNING.
            on_worker_revoked: Callback when a GPU worker is revoked.
        """
        cluster = ProvisionedCluster(spec=spec)
        for index in range(spec.num_parameter_servers):
            request = InstanceRequest(
                region_name=spec.ps_region_name,
                machine=PARAMETER_SERVER_MACHINE,
                server_class=ServerClass.ON_DEMAND,
                labels={"role": "ps", "index": str(index)})
            cluster.parameter_servers.append(self.provider.request_instance(request))
        for index, worker in enumerate(spec.workers):
            instance = self.request_worker(worker, label=f"worker-{index}",
                                           on_running=on_worker_running,
                                           on_revoked=on_worker_revoked)
            cluster.workers[f"worker-{index}"] = instance
        return cluster

    # ------------------------------------------------------------------
    # Individual workers (initial and replacement).
    # ------------------------------------------------------------------
    def request_worker(self, spec: WorkerSpec, label: str,
                       on_running: Optional[Callable[[CloudInstance], None]] = None,
                       on_revoked: Optional[Callable[[CloudInstance], None]] = None,
                       after_revocation: bool = False) -> CloudInstance:
        """Request one GPU worker instance."""
        server_class = ServerClass.TRANSIENT if spec.transient else ServerClass.ON_DEMAND
        request = InstanceRequest(
            region_name=spec.region_name,
            machine=gpu_worker_machine(spec.gpu_name),
            server_class=server_class,
            labels={"role": "worker", "name": label, "workload": "training"},
            on_running=on_running,
            on_revoked=on_revoked,
            after_revocation=after_revocation)
        return self.provider.request_instance(request)

    def request_replacement(self, spec: WorkerSpec, label: str,
                            on_running: Optional[Callable[[CloudInstance], None]] = None,
                            on_revoked: Optional[Callable[[CloudInstance], None]] = None
                            ) -> CloudInstance:
        """Request a replacement worker immediately after a revocation.

        The paper finds that requesting immediately is a valid strategy:
        startup time is not materially affected by the preceding revocation.
        """
        return self.request_worker(spec, label, on_running=on_running,
                                   on_revoked=on_revoked, after_revocation=True)

    def add_parameter_server(self, cluster: ProvisionedCluster) -> CloudInstance:
        """Request one additional parameter server (bottleneck mitigation)."""
        index = len(cluster.parameter_servers)
        request = InstanceRequest(
            region_name=cluster.spec.ps_region_name,
            machine=PARAMETER_SERVER_MACHINE,
            server_class=ServerClass.ON_DEMAND,
            labels={"role": "ps", "index": str(index)})
        instance = self.provider.request_instance(request)
        cluster.parameter_servers.append(instance)
        return instance

    # ------------------------------------------------------------------
    # Teardown and accounting.
    # ------------------------------------------------------------------
    def release(self, cluster: ProvisionedCluster) -> None:
        """Terminate every instance of a cluster."""
        for instance in cluster.all_instances():
            if instance.is_alive:
                self.provider.terminate_instance(instance.instance_id)

    def cluster_cost(self, cluster: ProvisionedCluster) -> float:
        """Total cost (USD) accrued by the cluster so far."""
        return sum(self.provider.instance_cost(instance.instance_id)
                   for instance in cluster.all_instances())

    def validate_spec(self, spec: ClusterSpec) -> None:
        """Validate that the provider can satisfy a cluster specification."""
        for worker in spec.workers:
            from repro.cloud.regions import get_region
            region = get_region(worker.region_name)
            if not region.offers(worker.gpu_name):
                raise ConfigurationError(
                    f"region {worker.region_name!r} does not offer {worker.gpu_name!r}")
