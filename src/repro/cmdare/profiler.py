"""Performance profiler: offline measurement aggregation.

The profiler is where CM-DARE accumulates the raw measurements that power
the paper's regression models: per-(model, GPU) training speed samples and
per-model checkpoint durations.  The measurement campaigns in
:mod:`repro.measurement` write into a profiler and the modeling layer reads
feature matrices out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DataError


@dataclass(frozen=True)
class SpeedMeasurement:
    """One training-speed measurement for a (model, GPU) pair.

    Attributes:
        model_name: CNN model name.
        gpu_name: GPU type of the measured worker.
        model_gflops: Model complexity (``Cm``) in GFLOPs.
        gpu_teraflops: GPU capacity (``Cgpu``) in teraflops.
        step_time: Measured average step time in seconds.
        cluster_size: Number of GPU workers in the measured cluster.
        num_parameter_servers: Number of parameter servers.
    """

    model_name: str
    gpu_name: str
    model_gflops: float
    gpu_teraflops: float
    step_time: float
    cluster_size: int = 1
    num_parameter_servers: int = 1

    @property
    def speed(self) -> float:
        """Training speed in steps/second."""
        return 1.0 / self.step_time

    @property
    def computation_ratio(self) -> float:
        """The paper's computation ratio ``Cm / Cgpu``."""
        return self.model_gflops / self.gpu_teraflops


@dataclass(frozen=True)
class CheckpointMeasurement:
    """One checkpoint-duration measurement for a model.

    Attributes:
        model_name: CNN model name.
        data_bytes: Checkpoint data-file size (``Sd``).
        index_bytes: Checkpoint index-file size (``Si``).
        meta_bytes: Checkpoint meta-file size (``Sm``).
        duration: Measured checkpoint duration in seconds.
    """

    model_name: str
    data_bytes: int
    index_bytes: int
    meta_bytes: int
    duration: float

    @property
    def total_bytes(self) -> int:
        """Total checkpoint size (``Sc``)."""
        return self.data_bytes + self.index_bytes + self.meta_bytes


class PerformanceProfiler:
    """Accumulates speed and checkpoint measurements across sessions."""

    def __init__(self) -> None:
        self._speed: List[SpeedMeasurement] = []
        self._checkpoints: List[CheckpointMeasurement] = []

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def record_speed(self, measurement: SpeedMeasurement) -> None:
        """Record one speed measurement."""
        if measurement.step_time <= 0:
            raise DataError("step_time must be positive")
        self._speed.append(measurement)

    def record_checkpoint(self, measurement: CheckpointMeasurement) -> None:
        """Record one checkpoint measurement."""
        if measurement.duration <= 0:
            raise DataError("checkpoint duration must be positive")
        self._checkpoints.append(measurement)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def speed_measurements(self) -> List[SpeedMeasurement]:
        """All recorded speed measurements."""
        return list(self._speed)

    @property
    def checkpoint_measurements(self) -> List[CheckpointMeasurement]:
        """All recorded checkpoint measurements."""
        return list(self._checkpoints)

    def speed_for(self, gpu_name: Optional[str] = None,
                  model_name: Optional[str] = None) -> List[SpeedMeasurement]:
        """Speed measurements filtered by GPU and/or model."""
        result = self._speed
        if gpu_name is not None:
            result = [m for m in result if m.gpu_name == gpu_name.lower()]
        if model_name is not None:
            result = [m for m in result if m.model_name == model_name]
        return list(result)

    def gpus(self) -> List[str]:
        """GPU types with at least one speed measurement."""
        return sorted({m.gpu_name for m in self._speed})

    def models(self) -> List[str]:
        """Models with at least one speed measurement."""
        return sorted({m.model_name for m in self._speed})

    # ------------------------------------------------------------------
    # Feature matrices for the modeling layer.
    # ------------------------------------------------------------------
    def speed_feature_matrix(self, gpu_name: Optional[str] = None
                             ) -> Tuple[np.ndarray, np.ndarray, List[SpeedMeasurement]]:
        """Return ``(features, step_times, measurements)`` for regression.

        Features are ``[Cm, Cgpu]`` columns (GFLOPs, teraflops); callers
        select/normalize the columns they need.
        """
        measurements = self.speed_for(gpu_name=gpu_name)
        if not measurements:
            raise DataError("no speed measurements recorded")
        features = np.array([[m.model_gflops, m.gpu_teraflops] for m in measurements])
        targets = np.array([m.step_time for m in measurements])
        return features, targets, measurements

    def checkpoint_feature_matrix(self) -> Tuple[np.ndarray, np.ndarray,
                                                 List[CheckpointMeasurement]]:
        """Return ``(features, durations, measurements)`` for regression.

        Features are ``[Sd, Sm, Si, Sc]`` in MB.
        """
        if not self._checkpoints:
            raise DataError("no checkpoint measurements recorded")
        mb = 1024.0 * 1024.0
        features = np.array([[m.data_bytes / mb, m.meta_bytes / mb,
                              m.index_bytes / mb, m.total_bytes / mb]
                             for m in self._checkpoints])
        targets = np.array([m.duration for m in self._checkpoints])
        return features, targets, list(self._checkpoints)

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    def mean_step_time(self, model_name: str, gpu_name: str) -> Tuple[float, float]:
        """Mean and std of the measured step time for a (model, GPU) pair."""
        measurements = [m.step_time for m in self.speed_for(gpu_name, model_name)]
        if not measurements:
            raise DataError(f"no measurements for {model_name!r} on {gpu_name!r}")
        values = np.asarray(measurements)
        std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
        return float(values.mean()), std

    def mean_checkpoint_time(self, model_name: str) -> Tuple[float, float]:
        """Mean and std of the measured checkpoint duration for a model."""
        durations = [m.duration for m in self._checkpoints if m.model_name == model_name]
        if not durations:
            raise DataError(f"no checkpoint measurements for {model_name!r}")
        values = np.asarray(durations)
        std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
        return float(values.mean()), std
