"""Transient-TensorFlow recovery policies.

CM-DARE modifies TensorFlow so that (a) a revoked worker notifies the
parameter server and the controller, and (b) when the *chief* worker is
revoked, another GPU worker takes over checkpointing.  Unmodified
TensorFlow instead binds the chief role to an IP address: a replacement
worker reusing the revoked chief's address becomes the new chief and forces
the whole cluster to recompute from the last checkpoint (Section V-E).

:class:`TransientTensorFlowPolicy` captures which behaviour a session uses
and what a replacement request should look like, so the controller and the
Fig. 11 experiment can switch between them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.training.session import TrainingSession
from repro.training.worker import WorkerState


class RecoveryMode(enum.Enum):
    """How the framework recovers from a chief revocation."""

    #: CM-DARE's behaviour: hand checkpointing to a surviving worker; the
    #: replacement joins with a fresh IP and no progress is lost.
    TRANSIENT_AWARE = "transient_aware"

    #: Unmodified TensorFlow with the revoked chief's IP reused by the
    #: replacement: the cluster recomputes from the last checkpoint.
    LEGACY_IP_REUSE = "legacy_ip_reuse"


@dataclass(frozen=True)
class TransientTensorFlowPolicy:
    """Framework-level recovery policy for a training session.

    Attributes:
        recovery_mode: Chief-revocation recovery behaviour.
        notify_parameter_server: Whether revoked workers notify the PS and
            the controller (always true for CM-DARE; kept as a switch so
            the ablation benchmarks can turn it off).
    """

    recovery_mode: RecoveryMode = RecoveryMode.TRANSIENT_AWARE
    notify_parameter_server: bool = True

    @property
    def reuse_chief_ip(self) -> bool:
        """Whether replacement workers reuse the revoked chief's IP address."""
        return self.recovery_mode is RecoveryMode.LEGACY_IP_REUSE

    def expected_recomputation_steps(self, session: TrainingSession) -> int:
        """Steps that would be discarded if the chief were revoked now."""
        if self.recovery_mode is RecoveryMode.TRANSIENT_AWARE:
            return 0
        return session.steps_since_checkpoint

    def describe_recovery(self, revoked: WorkerState) -> str:
        """Human-readable description of what happens after a revocation."""
        if not revoked.is_chief:
            return ("worker revocation: training continues with the remaining "
                    "workers; a replacement may be requested")
        if self.recovery_mode is RecoveryMode.TRANSIENT_AWARE:
            return ("chief revocation: checkpoint responsibility handed to a "
                    "surviving worker; no recomputation")
        return ("chief revocation: replacement reuses the chief's IP, cluster "
                "recomputes from the last checkpoint")
