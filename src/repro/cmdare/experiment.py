"""High-level experiment drivers.

``run_training_experiment`` is the one-call entry point the measurement
campaigns and the examples use: it wires a simulator, (optionally) a
simulated cloud provider, a training session, a performance tracker, and a
controller together, runs the workload to completion, and returns the
trace, controller log, and cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cloud.provider import SimulatedCloudProvider
from repro.cloud.storage import CloudStorage
from repro.cmdare.controller import CMDareController, ControllerConfig
from repro.errors import ConfigurationError
from repro.perf.checkpoint_time import CheckpointTimeModel
from repro.perf.ps_capacity import PSCapacityModel
from repro.perf.step_time import StepTimeModel
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.training.cluster import ClusterSpec
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.training.trace import TrainingTrace


@dataclass
class ExperimentResult:
    """Everything produced by one training experiment.

    Attributes:
        trace: The training trace.
        session: The (finished) training session.
        controller: The controller that drove the session, if one was used.
        provider: The simulated cloud provider, if one was used.
        total_cost_usd: Cloud cost accrued (0 when no provider is used).
        metadata: Free-form experiment metadata.
    """

    trace: TrainingTrace
    session: TrainingSession
    controller: Optional[CMDareController] = None
    provider: Optional[SimulatedCloudProvider] = None
    total_cost_usd: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def cluster_speed(self) -> float:
        """Average cluster speed of the experiment (steps/second)."""
        return self.trace.cluster_speed()

    @property
    def duration_seconds(self) -> float:
        """Simulated duration of the experiment."""
        return self.trace.duration


def run_training_experiment(cluster: ClusterSpec, job: TrainingJob,
                            seed: int = 0,
                            controller_config: Optional[ControllerConfig] = None,
                            with_controller: bool = True,
                            with_provider: bool = False,
                            with_storage: bool = False,
                            steps_per_event: int = 10,
                            step_time_model: Optional[StepTimeModel] = None,
                            ps_capacity_model: Optional[PSCapacityModel] = None,
                            checkpoint_time_model: Optional[CheckpointTimeModel] = None
                            ) -> ExperimentResult:
    """Run one complete training experiment on a fresh simulator.

    Args:
        cluster: Cluster configuration.
        job: Training workload.
        seed: Root seed for every random stream in the experiment.
        controller_config: Controller behaviour (auto-replacement,
            bottleneck mitigation, recovery policy).
        with_controller: Attach a CM-DARE controller and monitoring loop.
        with_provider: Drive revocations from the simulated cloud provider
            (transient workers may be revoked mid-run); without it the
            session runs undisturbed unless faults are injected manually.
        with_storage: Attach a cloud-storage bucket for checkpoints.
        steps_per_event: Simulation granularity (steps per event).
        step_time_model: Optional shared ground-truth step-time model.
        ps_capacity_model: Optional shared PS-capacity model.
        checkpoint_time_model: Optional shared checkpoint-duration model.

    Returns:
        An :class:`ExperimentResult`.
    """
    if job.total_steps <= 0:
        raise ConfigurationError("job must have a positive number of steps")
    streams = RandomStreams(seed=seed)
    simulator = Simulator(epoch_hour_utc=float(streams.get("epoch").uniform(0, 24)))
    storage = CloudStorage(cluster.ps_region_name) if with_storage else None

    session = TrainingSession(
        simulator, cluster, job, streams=streams,
        step_time_model=step_time_model or StepTimeModel(rng=streams.get("step_time")),
        ps_capacity_model=ps_capacity_model or PSCapacityModel(),
        checkpoint_time_model=(checkpoint_time_model
                               or CheckpointTimeModel(rng=streams.get("checkpoint"))),
        storage=storage, steps_per_event=steps_per_event)

    provider: Optional[SimulatedCloudProvider] = None
    if with_provider:
        provider = SimulatedCloudProvider(simulator, streams=streams)
        _wire_provider_revocations(provider, session, cluster)

    controller: Optional[CMDareController] = None
    if with_controller:
        controller = CMDareController(session, config=controller_config)
        controller.start_monitoring()

    trace = session.run_to_completion()
    if provider is not None:
        provider.terminate_all()
    total_cost = provider.total_cost() if provider is not None else 0.0
    return ExperimentResult(trace=trace, session=session, controller=controller,
                            provider=provider, total_cost_usd=total_cost,
                            metadata={"model": job.model_name,
                                      "cluster": cluster.describe(),
                                      "seed": str(seed)})


def _wire_provider_revocations(provider: SimulatedCloudProvider,
                               session: TrainingSession,
                               cluster: ClusterSpec) -> None:
    """Provision the cluster and forward provider revocations to the session.

    The session's workers are indexed in cluster order; each transient
    worker instance forwards its revocation to the matching session worker.
    """
    from repro.cmdare.resource_manager import ResourceManager

    manager = ResourceManager(provider)
    worker_ids = list(session.workers)

    def on_worker_revoked(instance) -> None:
        label = instance.labels.get("name", "")
        try:
            index = int(label.split("-")[-1])
        except ValueError:
            return
        if index >= len(worker_ids) or session.finished:
            return
        worker_id = worker_ids[index]
        if worker_id in session.workers and session.workers[worker_id].active:
            session.handle_revocation(worker_id)

    provisioned = manager.provision(cluster, on_worker_revoked=on_worker_revoked)
    for index, instance in enumerate(provisioned.workers.values()):
        if index < len(worker_ids):
            session.workers[worker_ids[index]].instance_id = instance.instance_id
