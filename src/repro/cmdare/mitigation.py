"""Overhead-aware bottleneck mitigation planning (Section VI-B future work).

The paper shows that adding a second parameter server can improve training
speed by up to 70.6%, but notes that TensorFlow requires a ~10-second
session restart to do so and leaves "overhead-aware bottleneck mitigation
as future work".  This module implements that planner: given the measured
cluster speed, the capacity model's prediction of the post-mitigation
speed, the remaining workload, and the cost of the extra server, it decides
whether the mitigation pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.machines import PARAMETER_SERVER_MACHINE
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.errors import ConfigurationError
from repro.perf.calibration import SESSION_RESTART_SECONDS
from repro.perf.ps_capacity import PSCapacityModel
from repro.training.session import TrainingSession


@dataclass(frozen=True)
class MitigationPlan:
    """The outcome of an overhead-aware mitigation analysis.

    Attributes:
        worthwhile: Whether adding the parameter server is recommended.
        current_speed: Measured (or modeled) current cluster speed.
        projected_speed: Projected cluster speed with the extra PS.
        remaining_steps: Training steps left when the decision is made.
        time_saved_seconds: Net completion-time change (positive = faster),
            already accounting for the session-restart overhead.
        restart_overhead_seconds: Session-restart cost paid on mitigation.
        extra_cost_usd: Additional parameter-server cost for the remainder
            of the run.
        breakeven_steps: Minimum remaining steps for the mitigation to pay
            for its restart overhead.
    """

    worthwhile: bool
    current_speed: float
    projected_speed: float
    remaining_steps: int
    time_saved_seconds: float
    restart_overhead_seconds: float
    extra_cost_usd: float
    breakeven_steps: float

    @property
    def speedup(self) -> float:
        """Projected speed divided by the current speed."""
        return self.projected_speed / self.current_speed


class MitigationPlanner:
    """Decides whether adding a parameter server is worth its overhead.

    Args:
        ps_capacity_model: Capacity model used to project the
            post-mitigation cluster speed.
        price_catalog: Prices used for the extra parameter server's cost.
        restart_overhead_seconds: Session-restart cost of reconfiguring the
            cluster (the paper measures about ten seconds).
        min_time_saved_seconds: Do not recommend mitigations that save less
            than this much wall-clock time.
    """

    def __init__(self, ps_capacity_model: Optional[PSCapacityModel] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 restart_overhead_seconds: float = SESSION_RESTART_SECONDS,
                 min_time_saved_seconds: float = 30.0):
        if restart_overhead_seconds < 0 or min_time_saved_seconds < 0:
            raise ConfigurationError("overheads must be non-negative")
        self.ps_capacity_model = ps_capacity_model or PSCapacityModel()
        self.prices = price_catalog or default_price_catalog()
        self.restart_overhead_seconds = restart_overhead_seconds
        self.min_time_saved_seconds = min_time_saved_seconds

    # ------------------------------------------------------------------
    # Planning.
    # ------------------------------------------------------------------
    def plan(self, worker_speeds, gradient_bytes: float, remaining_steps: int,
             current_parameter_servers: int = 1, additional_servers: int = 1,
             measured_speed: Optional[float] = None) -> MitigationPlan:
        """Evaluate adding ``additional_servers`` parameter servers.

        Args:
            worker_speeds: Uncontended per-worker speeds (steps/second).
            gradient_bytes: Per-step gradient payload of the model.
            remaining_steps: Steps left in the workload.
            current_parameter_servers: Parameter servers currently serving.
            additional_servers: Parameter servers the mitigation would add.
            measured_speed: Measured cluster speed; when omitted the
                capacity model's estimate for the current configuration is
                used.
        """
        if remaining_steps < 0:
            raise ConfigurationError("remaining_steps must be non-negative")
        if additional_servers < 1:
            raise ConfigurationError("additional_servers must be >= 1")
        speeds = list(worker_speeds)
        if not speeds:
            raise ConfigurationError("worker_speeds must not be empty")

        current = (measured_speed if measured_speed is not None else
                   self.ps_capacity_model.cluster_speed(
                       speeds, gradient_bytes, current_parameter_servers))
        projected = self.ps_capacity_model.cluster_speed(
            speeds, gradient_bytes, current_parameter_servers + additional_servers)
        if current <= 0 or projected <= 0:
            raise ConfigurationError("cluster speeds must be positive")

        current_time = remaining_steps / current
        mitigated_time = self.restart_overhead_seconds + remaining_steps / projected
        time_saved = current_time - mitigated_time

        # Breakeven: remaining steps at which the restart overhead is exactly
        # repaid by the faster speed.
        per_step_gain = 1.0 / current - 1.0 / projected
        breakeven = (float("inf") if per_step_gain <= 0
                     else self.restart_overhead_seconds / per_step_gain)

        extra_cost = additional_servers * self.prices.cost(
            PARAMETER_SERVER_MACHINE, transient=False, seconds=max(0.0, mitigated_time))
        worthwhile = time_saved >= self.min_time_saved_seconds
        return MitigationPlan(worthwhile=worthwhile, current_speed=current,
                              projected_speed=projected,
                              remaining_steps=remaining_steps,
                              time_saved_seconds=time_saved,
                              restart_overhead_seconds=self.restart_overhead_seconds,
                              extra_cost_usd=extra_cost, breakeven_steps=breakeven)

    def plan_for_session(self, session: TrainingSession,
                         additional_servers: int = 1,
                         measured_speed: Optional[float] = None) -> MitigationPlan:
        """Plan a mitigation for a live training session."""
        speeds = [session.step_time_model.mean_speed(session.job.profile.gflops,
                                                     worker.gpu_name)
                  for worker in session.active_workers()]
        remaining = max(0, session.job.total_steps - session.cluster_steps)
        return self.plan(speeds, session.job.profile.parameter_bytes, remaining,
                         current_parameter_servers=session.ps_group.count,
                         additional_servers=additional_servers,
                         measured_speed=measured_speed)
