"""The CM-DARE controller.

The controller (Fig. 1, steps (6)-(10)) reacts to revocation notifications
and to online performance measurements:

* when a transient worker is revoked, it immediately requests a replacement
  (the paper shows immediate requests are not penalized) and adds it to the
  training session after the cold-start replacement overhead;
* when the chief is revoked, the transient-TensorFlow policy decides
  whether checkpoint responsibility is handed off (CM-DARE) or the legacy
  recompute-from-checkpoint behaviour applies;
* it periodically compares measured speed against the predicted speed and,
  when a parameter-server bottleneck is flagged, optionally provisions an
  additional parameter server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cmdare.bottleneck import BottleneckDetector, BottleneckReport
from repro.cmdare.tracker import PerformanceTracker
from repro.cmdare.transient_tf import TransientTensorFlowPolicy
from repro.errors import ConfigurationError, DataError
from repro.perf.replacement import ReplacementOverheadModel
from repro.simulation.events import Event
from repro.training.cluster import WorkerSpec
from repro.training.session import TrainingSession
from repro.training.worker import WorkerState


@dataclass
class ControllerAction:
    """One action taken (or decision made) by the controller."""

    time: float
    kind: str
    detail: str


@dataclass
class ControllerConfig:
    """Controller behaviour switches.

    Attributes:
        auto_replace: Request a replacement worker after each revocation.
        auto_mitigate_bottleneck: Add a parameter server when a bottleneck
            is detected (at most ``max_extra_parameter_servers`` times).
        max_extra_parameter_servers: Upper bound on mitigation actions.
        poll_interval_seconds: Cadence of the monitoring loop.
        policy: Transient-TensorFlow recovery policy.
    """

    auto_replace: bool = True
    auto_mitigate_bottleneck: bool = False
    max_extra_parameter_servers: int = 1
    poll_interval_seconds: float = 15.0
    policy: TransientTensorFlowPolicy = field(default_factory=TransientTensorFlowPolicy)


class CMDareController:
    """Reactive controller attached to one training session.

    Args:
        session: The training session to control.
        config: Behaviour switches.
        replacement_model: Ground-truth replacement-overhead model used to
            time replacement joins.
        detector: Bottleneck detector.
        tracker: Performance tracker; created automatically when omitted.
    """

    def __init__(self, session: TrainingSession,
                 config: Optional[ControllerConfig] = None,
                 replacement_model: Optional[ReplacementOverheadModel] = None,
                 detector: Optional[BottleneckDetector] = None,
                 tracker: Optional[PerformanceTracker] = None):
        self.session = session
        self.config = config if config is not None else ControllerConfig()
        if self.config.poll_interval_seconds <= 0:
            raise ConfigurationError("poll_interval_seconds must be positive")
        self.replacement_model = (replacement_model if replacement_model is not None
                                  else ReplacementOverheadModel(
                                      rng=session.streams.get("replacement")))
        self.detector = detector if detector is not None else BottleneckDetector()
        self.tracker = tracker if tracker is not None else PerformanceTracker(session)
        self.actions: List[ControllerAction] = []
        self.bottleneck_reports: List[BottleneckReport] = []
        self._extra_parameter_servers = 0
        self._monitoring = False
        self._poll_event: Optional[Event] = None
        self._last_reconfiguration = session.trace.start_time
        session.on_revocation.append(self._on_revocation)
        # A poll scheduled just before the workload completes must not
        # outlive the session: cancel it the moment the session finishes so
        # the simulator heap drains and a later start_monitoring restarts
        # from a clean slate.
        session.on_finished.append(lambda _session: self.stop_monitoring())

    # ------------------------------------------------------------------
    # Logging helpers.
    # ------------------------------------------------------------------
    def _log(self, kind: str, detail: str) -> None:
        self.actions.append(ControllerAction(time=self.session.simulator.now,
                                             kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # Revocation handling.
    # ------------------------------------------------------------------
    def _on_revocation(self, session: TrainingSession, worker: WorkerState) -> None:
        self._log("revocation", self.config.policy.describe_recovery(worker))
        self._mark_reconfiguration()
        if not self.config.auto_replace:
            return
        self.request_replacement(worker)

    def _mark_reconfiguration(self, settle_seconds: float = 0.0) -> None:
        """Restart the warm-up clock after a cluster membership change."""
        self._last_reconfiguration = self.session.simulator.now + settle_seconds
        self.tracker.reset_window()

    def request_replacement(self, revoked: WorkerState,
                            cold: bool = True,
                            spec: Optional[WorkerSpec] = None) -> WorkerState:
        """Request and (after the start overhead) add a replacement worker.

        Args:
            revoked: The worker being replaced.
            cold: True for a cold start (new server: Fig. 10 cold path, the
                paper's default); False when an already-running warm server
                is reused, paying only the warm overhead plus the short
                re-acquisition handshake.
            spec: Placement of the replacement; defaults to the revoked
                worker's own ``(gpu, region)``.  A pool-aware fleet may
                redirect the replacement to a different region (adaptive
                placement).
        """
        spec = spec if spec is not None else revoked.spec
        if cold:
            overhead = self.replacement_model.sample(
                self.session.job.profile, cold=True, gpu_name=spec.gpu_name)
        else:
            overhead = self.replacement_model.sample_warm_reuse(
                self.session.job.profile, gpu_name=spec.gpu_name)
        records = self.session.trace.revocation_records
        was_chief = any(r.worker_id == revoked.worker_id and r.was_chief for r in records)
        reuse_ip = self.config.policy.reuse_chief_ip and was_chief
        replacement = self.session.add_worker(
            spec, overhead_seconds=overhead.total, cold_start=cold,
            reuse_chief_ip=reuse_ip)
        # The cluster shape changes again when the replacement joins; push the
        # warm-up window past that point so the detector does not misread the
        # transition as a parameter-server bottleneck.
        self._mark_reconfiguration(settle_seconds=overhead.total)
        start = "cold-start" if cold else "warm-reuse"
        self._log("replacement",
                  f"requested {spec.gpu_name} replacement for {revoked.worker_id}"
                  f" in {spec.region_name}; {start} overhead {overhead.total:.1f}s")
        return replacement

    # ------------------------------------------------------------------
    # Monitoring loop.
    # ------------------------------------------------------------------
    def predicted_speed(self) -> float:
        """Predicted cluster speed: the sum of individual worker speeds.

        This mirrors Section VI-A: the composition of per-worker predictions
        with no parameter-server term, which is exactly what makes the
        comparison against the measured speed reveal PS bottlenecks.  Workers
        that have been requested but have not yet joined the session (e.g. a
        cold-start replacement still booting) are excluded.
        """
        gflops = self.session.job.profile.gflops
        now = self.session.simulator.now
        return sum(self.session.step_time_model.mean_speed(gflops, worker.gpu_name)
                   for worker in self.session.active_workers()
                   if worker.joined_at <= now)

    def start_monitoring(self) -> None:
        """Begin the periodic poll/detect/mitigate loop."""
        if self._monitoring or self.session.finished:
            return
        self._monitoring = True
        self._poll_event = self.session.simulator.schedule(
            self.config.poll_interval_seconds, self._poll, label="cmdare:poll")

    def stop_monitoring(self) -> None:
        """Stop the poll loop, cancelling any pending poll event."""
        self._monitoring = False
        if self._poll_event is not None:
            self._poll_event.cancel()
            self._poll_event = None

    def _poll(self, _sim) -> None:
        self._poll_event = None
        if not self._monitoring:
            return
        if self.session.finished:
            self._monitoring = False
            return
        sample = self.tracker.poll()
        if sample is not None:
            try:
                # Average the last few windows observed since the most recent
                # reconfiguration: a single window of an asynchronous cluster
                # is quantized by whole steps and can swing by several percent
                # without any real slowdown.
                elapsed = self.session.simulator.now - self._last_reconfiguration
                recent = [s.speed for s in self.tracker.samples
                          if s.time > self._last_reconfiguration][-3:]
                if not recent:
                    raise DataError("no speed windows since the last reconfiguration")
                measured = sum(recent) / len(recent)
                report = self.detector.check(self.predicted_speed(), measured, elapsed)
            except DataError:
                report = None
            if report is not None:
                self.bottleneck_reports.append(report)
                if report.bottleneck_detected:
                    self._log("bottleneck", report.suggestion)
                    self._maybe_mitigate()
        self._poll_event = self.session.simulator.schedule(
            self.config.poll_interval_seconds, self._poll, label="cmdare:poll")

    def _maybe_mitigate(self) -> None:
        if not self.config.auto_mitigate_bottleneck:
            return
        if self._extra_parameter_servers >= self.config.max_extra_parameter_servers:
            return
        self.session.add_parameter_server(1)
        self._extra_parameter_servers += 1
        self._mark_reconfiguration(settle_seconds=10.0)
        self._log("mitigation", "added one parameter server (session restart ~10s)")

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Compact summary of everything the controller did."""
        return {
            "num_actions": len(self.actions),
            "num_revocations_seen": sum(1 for a in self.actions if a.kind == "revocation"),
            "num_replacements": sum(1 for a in self.actions if a.kind == "replacement"),
            "num_bottleneck_flags": sum(1 for a in self.actions if a.kind == "bottleneck"),
            "extra_parameter_servers": self._extra_parameter_servers,
        }
