"""Fleet-scale scenario simulation.

Design note
===========

The paper (and the measurement campaigns reproducing it) always runs **one
training job at a time** against the transient-server characterization of
Section V-C.  The ROADMAP's north star, however, asks for scenario
diversity at production scale: whole *fleets* of concurrent jobs competing
for the same finite transient-GPU capacity.  This package is the layer
that composes the existing subsystems into that regime:

* a :class:`~repro.scenarios.spec.ScenarioSpec` declares N concurrent jobs
  (:class:`~repro.scenarios.spec.JobSpec`: catalog model, steps, mixed
  GPU/region placements, staggered starts) plus a per-``(gpu, region)``
  pool capacity — everything JSON-round-trippable;
* the :class:`~repro.scenarios.pool.TransientPool` holds the shared finite
  capacity.  A revocation *reclaims* a slot for ``reclaim_seconds``, so a
  revoked job's replacement request can be **denied** or **queued** when
  the pool is exhausted — contention the paper's single-job experiments
  never reach;
* :class:`~repro.scenarios.fleet.FleetRun` places every job on one
  simulator: each job is a :class:`~repro.training.session.TrainingSession`
  driven by a :class:`~repro.scenarios.fleet.FleetJobController` (a
  pool-aware :class:`~repro.cmdare.controller.CMDareController`), worker
  lifetimes come from the calibrated
  :class:`~repro.cloud.revocation.RevocationModel` using each region's
  local hour-of-day, and the run loop rides the PR 2 vectorized
  fast-forward path between disturbances;
* execution fans out through :class:`repro.sweeps.SweepRunner` — one sweep
  cell per fleet replicate (``fleet_cell``) — inheriting bit-identical
  serial/parallel execution and cache/resume for free; results aggregate
  into fleet-level tables (makespan, cost, revocations absorbed,
  replacement-denial rate, PS mitigations) via :mod:`repro.analysis`.

Beyond the cold, statically placed baseline, two opt-in knobs extend the
regime (both default off and are payload-bit-identical to the baseline
when off — the golden-fixture contract of
``tests/test_fleet_golden_identity.py``):

* **warm pool** (``warm_capacity``/``warm_seconds``): reclaimed capacity
  returns as still-running warm servers, and replacements granted from
  one pay the Fig. 10 warm overhead instead of a cold boot;
* **adaptive placement** (``placement="adaptive"``): the pool-aware
  :meth:`repro.modeling.launch_advisor.LaunchAdvisor.place` mode picks
  each worker's region from live pool availability plus the revocation
  calibration, at launch and when a replacement would be denied.

A fleet can also execute **sharded** across worker processes
(:mod:`repro.scenarios.shard`, ``REPRO_FLEET_SHARDS`` / ``--shards``):
jobs and their pool cells are partitioned by connected component, each
shard runs its own simulator + wake-set loop, and the one cross-shard
coupling — the shared revocation stream — is served by the parent in
deterministic ``(time, job rank)`` order, so payloads stay bit-identical
to the single-process run at any shard count.

Fleet sweeps can fan out along ``pool_size``, ``queue_policy``,
``warm_seconds``, ``launch_hour``, and ``placement`` axes besides
``replicate`` (see :func:`repro.scenarios.fleet.build_fleet_spec`), and
:func:`repro.scenarios.report.fleet_frontier_table` renders the resulting
cost/makespan frontier.

Six named scenarios live in :mod:`repro.scenarios.catalog`
(``single_region_k80``, ``multi_region_hetero``, ``revocation_storm``,
``capacity_crunch``, ``warm_reuse``, ``adaptive_placement``); each is
also registered as a ``fleet_<name>`` sweep.

Command line (mirrors ``python -m repro.sweeps``)::

    python -m repro.scenarios list
    python -m repro.scenarios run capacity_crunch --workers 2 --cache-dir .fleet-cache
    python -m repro.scenarios resume capacity_crunch --cache-dir .fleet-cache
"""

from repro.scenarios.catalog import (
    SCENARIO_BUILDERS,
    get_scenario,
    list_scenarios,
)
from repro.scenarios.fleet import (
    FleetJobController,
    FleetRun,
    apply_fleet_axes,
    build_fleet_spec,
    fleet_cell,
    run_fleet,
    run_scenario,
)
from repro.scenarios.pool import (
    DENIED,
    GRANTED,
    QUEUED,
    ReplacementTicket,
    TransientPool,
)
from repro.scenarios.report import (
    fleet_frontier_table,
    fleet_hour_histogram,
    fleet_rows,
    fleet_summary_table,
    frontier_rows,
)
from repro.scenarios.shard import (
    DeterministicMessageQueue,
    ShardFleetRun,
    ShardGroup,
    ShardedFleetRun,
    partition_scenario,
    run_fleet_sharded,
)
from repro.scenarios.spec import PLACEMENTS, JobSpec, ScenarioSpec

__all__ = [
    "DENIED",
    "DeterministicMessageQueue",
    "FleetJobController",
    "FleetRun",
    "GRANTED",
    "JobSpec",
    "PLACEMENTS",
    "QUEUED",
    "ReplacementTicket",
    "SCENARIO_BUILDERS",
    "ScenarioSpec",
    "ShardFleetRun",
    "ShardGroup",
    "ShardedFleetRun",
    "TransientPool",
    "apply_fleet_axes",
    "build_fleet_spec",
    "fleet_cell",
    "fleet_frontier_table",
    "fleet_hour_histogram",
    "fleet_rows",
    "fleet_summary_table",
    "frontier_rows",
    "get_scenario",
    "list_scenarios",
    "partition_scenario",
    "run_fleet",
    "run_fleet_sharded",
    "run_scenario",
]
