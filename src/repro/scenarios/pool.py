"""Finite shared pool of transient GPU servers, with warm reuse.

The paper's experiments run one training job at a time, so a replacement
request after a revocation always succeeds.  At fleet scale the picture
changes: concurrent jobs draw from the same per-``(gpu, region)`` transient
capacity, and a revocation means the provider *reclaimed* that capacity —
the slot does not return to the pool until ``reclaim_seconds`` later.  A
replacement request that finds the pool exhausted is therefore **denied**
(the job continues degraded) or **queued** (served FIFO when reclaimed
capacity returns or another job releases its servers), a regime the
single-job experiments never reach.

Warm pool
---------
With ``warm_capacity > 0`` and ``warm_seconds > 0`` the pool additionally
models the Fig. 10 warm-start path: when reclaimed capacity returns it
does so as a *warm* server — an already-running instance that lingers for
``warm_seconds`` before cooling down into plain (cold) capacity.  Grants
taken from a warm server are flagged ``warm=True`` so the grantee can pay
the warm replacement overhead (framework restart + session join + graph
setup plus a short re-acquire handshake, see
:meth:`repro.cloud.startup.StartupTimeModel.sample_warm_reacquire`)
instead of a cold boot.  ``warm_capacity=0`` (the default) disables the
warm path entirely and reproduces the cold-only pool bit for bit — the
payload-identity contract pinned by ``tests/test_fleet_golden_identity.py``.

Bookkeeping invariants (property-tested in ``tests/test_property_based.py``
under random acquire/revoke/release/warm-reuse interleavings):

* conservation: ``in_use + available + warm + reclaimed == capacity`` per
  cell at all times (so ``in_use + available + warm <= capacity``);
* FIFO: queued replacement requests are granted in enqueue order;
* single return: a reclaim timer returns each revoked slot exactly once
  (a warm server taken before its cooldown fires is never resurrected a
  second time by that cooldown).

All pool state changes happen inside simulator event callbacks or
synchronous calls from them, so fleet runs stay deterministic: the FIFO
waiter order and the reclaim-return events are fully determined by the
event order of the simulation.

Versioned snapshots
-------------------
Every observable state transition (slot take, release, revoke, reclaim
return, warm park/cooldown, waiter enqueue/cancel) bumps a monotonic
:attr:`TransientPool.version` counter, and :meth:`TransientPool.snapshot`
returns a frozen, read-only :class:`PoolSnapshot` of the per-cell counters
at that version.  The snapshot exposes the same read methods as the live
pool (``cells`` / ``capacity`` / ``available`` / ``warm_count`` /
``acquirable`` / ``in_use`` / ``pending_waiters``), so the placement
advisor and :mod:`repro.serve` score against an immutable view instead of
reaching into live pool attributes — and anything cached against a
decision can compare its recorded ``pool_version`` with the live counter
to detect staleness.  Snapshots are cached per version: taking one twice
without an intervening transition returns the same object.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigurationError
from repro.simulation.engine import Simulator

#: A pool key: ``(gpu name, region name)``.
PoolKey = Tuple[str, str]

#: Replacement-request outcomes.
GRANTED = "granted"
QUEUED = "queued"
DENIED = "denied"

#: Grant callback: invoked with ``warm=True`` when the assigned slot is a
#: still-running warm server (Fig. 10 warm start), ``False`` for a cold boot.
GrantFn = Callable[[bool], None]


@dataclass
class _PoolState:
    """Mutable per-``(gpu, region)`` accounting."""

    capacity: int
    in_use: int = 0
    reclaimed: int = 0
    warm: int = 0
    peak_in_use: int = 0
    peak_warm: int = 0

    @property
    def available(self) -> int:
        """Cold slots free right now (warm servers counted separately)."""
        return self.capacity - self.in_use - self.reclaimed - self.warm

    def take(self) -> None:
        self.in_use += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)


@dataclass(frozen=True)
class CellSnapshot:
    """Frozen per-``(gpu, region)`` counters at one pool version.

    Attributes:
        capacity: Configured slot count of the cell.
        in_use: Slots occupied by running servers.
        reclaimed: Slots the provider is still holding after revocations.
        warm: Warm (still running, re-acquirable) servers parked in the cell.
        available: Free *cold* slots.
        waiting: Queued replacement requests.
    """

    capacity: int
    in_use: int
    reclaimed: int
    warm: int
    available: int
    waiting: int

    @property
    def acquirable(self) -> int:
        """Slots a request could take right now: cold free plus warm."""
        return self.available + self.warm


@dataclass(frozen=True)
class PoolSnapshot:
    """Read-only view of a :class:`TransientPool` at one state version.

    Mirrors the live pool's read API method for method, so the placement
    advisor (and anything else duck-typed against the pool) can score
    against either interchangeably — but a snapshot never changes: pool
    transitions after it was taken are visible only through a higher
    :attr:`TransientPool.version`, never through the snapshot itself.
    """

    version: int
    _cells: Dict[PoolKey, CellSnapshot] = field(repr=False)

    def _cell(self, gpu_name: str, region_name: str) -> CellSnapshot:
        key = (gpu_name, region_name)
        if key not in self._cells:
            raise CapacityError(f"the pool has no {gpu_name!r} capacity in "
                                f"{region_name!r}")
        return self._cells[key]

    def cells(self) -> Tuple[PoolKey, ...]:
        """All ``(gpu, region)`` cells of the pool, sorted."""
        return tuple(sorted(self._cells))

    def capacity(self, gpu_name: str, region_name: str) -> int:
        """Configured capacity of a ``(gpu, region)`` cell."""
        return self._cell(gpu_name, region_name).capacity

    def available(self, gpu_name: str, region_name: str) -> int:
        """Free *cold* slots for a ``(gpu, region)`` cell at snapshot time."""
        return self._cell(gpu_name, region_name).available

    def warm_count(self, gpu_name: str, region_name: str) -> int:
        """Warm (still running, re-acquirable) servers in a cell."""
        return self._cell(gpu_name, region_name).warm

    def acquirable(self, gpu_name: str, region_name: str) -> int:
        """Slots a request could take at snapshot time: cold free plus warm."""
        return self._cell(gpu_name, region_name).acquirable

    def in_use(self, gpu_name: str, region_name: str) -> int:
        """Slots occupied by running servers at snapshot time."""
        return self._cell(gpu_name, region_name).in_use

    def pending_waiters(self, gpu_name: str, region_name: str) -> int:
        """Queued replacement requests for a ``(gpu, region)`` cell."""
        return self._cell(gpu_name, region_name).waiting


class _WarmServer:
    """One still-running warm server; ``taken`` guards its cooldown timer."""

    __slots__ = ("taken",)

    def __init__(self) -> None:
        self.taken = False


class _Waiter:
    """One queued replacement request."""

    __slots__ = ("label", "grant")

    def __init__(self, label: str, grant: GrantFn) -> None:
        self.label = label
        self.grant = grant


class ReplacementTicket:
    """Handle for one :meth:`TransientPool.request_replacement` call.

    Attributes:
        outcome: ``"granted"``, ``"queued"``, or ``"denied"``.
        key: The ``(gpu, region)`` cell the request targeted.
        warm: For synchronous grants, whether the slot was a warm server.
        cancelled: Whether :meth:`cancel` removed the queued request.
    """

    __slots__ = ("outcome", "key", "warm", "cancelled", "_pool", "_waiter")

    def __init__(self, outcome: str, key: PoolKey, warm: bool = False,
                 pool: Optional["TransientPool"] = None,
                 waiter: Optional[_Waiter] = None) -> None:
        self.outcome = outcome
        self.key = key
        self.warm = warm
        self.cancelled = False
        self._pool = pool
        self._waiter = waiter

    def cancel(self) -> bool:
        """Withdraw a still-queued request (e.g. the session finished).

        Returns:
            True when a queued request was removed from the waiter queue;
            False when there was nothing to cancel (the request was never
            queued, was already granted, or was already cancelled).
        """
        if self._pool is None or self._waiter is None:
            return False
        removed = self._pool._cancel_waiter(self.key, self._waiter)
        self._waiter = None
        if removed:
            self.cancelled = True
        return removed


class TransientPool:
    """Shared finite transient-server capacity for a fleet of jobs.

    Args:
        simulator: Simulator that times reclaimed-capacity returns.
        capacity: Maximum concurrently alive servers per ``(gpu, region)``.
        reclaim_seconds: Delay before revoked capacity returns to the pool.
        warm_seconds: How long a returning reclaimed slot lingers as a warm
            (still running, re-acquirable) server before cooling down into
            plain cold capacity.  0 disables warm reuse.
        warm_capacity: Maximum warm servers kept per ``(gpu, region)`` cell;
            0 (the default) disables warm reuse and reproduces the cold-only
            pool bit for bit.
    """

    def __init__(self, simulator: Simulator, capacity: Mapping[PoolKey, int],
                 reclaim_seconds: float = 3600.0, warm_seconds: float = 0.0,
                 warm_capacity: int = 0):
        if not capacity:
            raise ConfigurationError("a pool needs at least one (gpu, region) cell")
        if reclaim_seconds < 0:
            raise ConfigurationError("reclaim_seconds must be non-negative")
        if warm_seconds < 0:
            raise ConfigurationError("warm_seconds must be non-negative")
        if warm_capacity < 0:
            raise ConfigurationError("warm_capacity must be non-negative")
        self.simulator = simulator
        self.reclaim_seconds = float(reclaim_seconds)
        self.warm_seconds = float(warm_seconds)
        self.warm_capacity = int(warm_capacity)
        self._states: Dict[PoolKey, _PoolState] = {}
        for key, count in capacity.items():
            if count <= 0:
                raise ConfigurationError(f"pool capacity for {key} must be positive")
            self._states[key] = _PoolState(capacity=int(count))
        self._waiters: Dict[PoolKey, Deque[_Waiter]] = {
            key: deque() for key in self._states}
        self._warm: Dict[PoolKey, Deque[_WarmServer]] = {
            key: deque() for key in self._states}
        self.launches = 0
        self.releases = 0
        self.revocations = 0
        self.replacement_requests = 0
        self.replacements_granted = 0
        self.replacements_queued = 0
        self.replacements_denied = 0
        self.replacements_cancelled = 0
        self.replacements_warm = 0
        self._version = 0
        self._snapshot: Optional[PoolSnapshot] = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic state version; bumped on every observable transition."""
        return self._version

    def _bump(self) -> None:
        self._version += 1

    def snapshot(self) -> PoolSnapshot:
        """A frozen read-only view of the pool at its current version.

        Cached per version: repeated calls between transitions return the
        same object, so fleet controllers and the serve layer can snapshot
        eagerly without copying cost on an idle pool.
        """
        snapshot = self._snapshot
        if snapshot is not None and snapshot.version == self._version:
            return snapshot
        cells = {
            key: CellSnapshot(capacity=state.capacity, in_use=state.in_use,
                              reclaimed=state.reclaimed, warm=state.warm,
                              available=state.available,
                              waiting=len(self._waiters[key]))
            for key, state in self._states.items()}
        snapshot = PoolSnapshot(version=self._version, _cells=cells)
        self._snapshot = snapshot
        return snapshot
    @property
    def warm_enabled(self) -> bool:
        """Whether the warm-reuse path is active."""
        return self.warm_capacity > 0 and self.warm_seconds > 0

    def _state(self, gpu_name: str, region_name: str) -> _PoolState:
        key = (gpu_name, region_name)
        if key not in self._states:
            raise CapacityError(f"the pool has no {gpu_name!r} capacity in "
                                f"{region_name!r}")
        return self._states[key]

    def cells(self) -> Tuple[PoolKey, ...]:
        """All ``(gpu, region)`` cells of the pool, sorted."""
        return tuple(sorted(self._states))

    def capacity(self, gpu_name: str, region_name: str) -> int:
        """Configured capacity of a ``(gpu, region)`` cell."""
        return self._state(gpu_name, region_name).capacity

    def available(self, gpu_name: str, region_name: str) -> int:
        """Free *cold* slots for a ``(gpu, region)`` cell right now."""
        return self._state(gpu_name, region_name).available

    def warm_count(self, gpu_name: str, region_name: str) -> int:
        """Warm (still running, re-acquirable) servers in a cell."""
        return self._state(gpu_name, region_name).warm

    def acquirable(self, gpu_name: str, region_name: str) -> int:
        """Slots a request could take right now: cold free plus warm."""
        state = self._state(gpu_name, region_name)
        return state.available + state.warm

    def in_use(self, gpu_name: str, region_name: str) -> int:
        """Slots currently occupied by running servers."""
        return self._state(gpu_name, region_name).in_use

    def pending_waiters(self, gpu_name: str, region_name: str) -> int:
        """Queued replacement requests for a ``(gpu, region)`` cell."""
        return len(self._waiters[(gpu_name, region_name)])

    # ------------------------------------------------------------------
    # Slot lifecycle.
    # ------------------------------------------------------------------
    def _try_take(self, key: PoolKey) -> Optional[bool]:
        """Take one slot if any is free; returns the warm flag, or None.

        Warm servers are preferred: re-acquiring one pays the Fig. 10 warm
        path instead of a cold boot, so it is always at least as good for
        the grantee.  With ``warm_capacity=0`` no warm server ever exists
        and this is exactly the cold-only take.
        """
        state = self._states[key]
        warm_servers = self._warm[key]
        if warm_servers:
            server = warm_servers.popleft()
            server.taken = True
            state.warm -= 1
            state.take()
            self._bump()
            return True
        if state.available > 0:
            state.take()
            self._bump()
            return False
        return None

    def acquire(self, gpu_name: str, region_name: str) -> bool:
        """Take one slot for an initial (fleet-launch) worker.

        Returns:
            Whether the slot was a warm server (never at fleet launch, but
            the pool API stays uniform for direct users).

        Raises:
            CapacityError: If the cell has no free slot; scenario specs
                validate initial demand up front, so this only fires on
                direct misuse of the pool.
        """
        self._state(gpu_name, region_name)
        warm = self._try_take((gpu_name, region_name))
        if warm is None:
            raise CapacityError(
                f"no free {gpu_name} capacity in {region_name} at fleet launch")
        self.launches += 1
        return warm

    def release(self, gpu_name: str, region_name: str) -> None:
        """Return a slot whose server terminated normally (job completed)."""
        state = self._state(gpu_name, region_name)
        if state.in_use <= 0:
            raise CapacityError(f"release without a matching acquire for "
                                f"({gpu_name}, {region_name})")
        state.in_use -= 1
        self.releases += 1
        self._bump()
        self._serve((gpu_name, region_name))

    def revoke(self, gpu_name: str, region_name: str) -> None:
        """Record a revocation: the provider reclaims the slot's capacity.

        The slot moves from *in use* to *reclaimed* and returns to the pool
        ``reclaim_seconds`` later — as a warm server when the warm pool is
        enabled and has room, else as cold capacity — at which point queued
        replacement requests are served FIFO.
        """
        state = self._state(gpu_name, region_name)
        if state.in_use <= 0:
            raise CapacityError(f"revocation without a live server for "
                                f"({gpu_name}, {region_name})")
        state.in_use -= 1
        state.reclaimed += 1
        self.revocations += 1
        self._bump()
        key = (gpu_name, region_name)

        def restore(_sim: Simulator) -> None:
            state.reclaimed -= 1
            self._bump()
            if self.warm_enabled and state.warm < self.warm_capacity:
                self._add_warm(key)
            self._serve(key)

        self.simulator.schedule(self.reclaim_seconds, restore,
                                label=f"pool:reclaim:{gpu_name}:{region_name}")

    def _add_warm(self, key: PoolKey) -> None:
        """Park one returning slot as a warm server for ``warm_seconds``."""
        state = self._states[key]
        server = _WarmServer()
        self._warm[key].append(server)
        state.warm += 1
        state.peak_warm = max(state.peak_warm, state.warm)
        self._bump()

        def cooldown(_sim: Simulator) -> None:
            # The `taken` guard is what makes reclaim/cooldown timers
            # single-shot: a warm server re-acquired before its cooldown
            # fired is already in use and must not return a second time.
            if server.taken:
                return
            server.taken = True
            self._warm[key].remove(server)
            state.warm -= 1
            self._bump()
            self._serve(key)

        self.simulator.schedule(self.warm_seconds, cooldown,
                                label=f"pool:cooldown:{key[0]}:{key[1]}")

    def request_replacement(self, gpu_name: str, region_name: str,
                            grant: GrantFn, queue: bool = False,
                            label: str = "") -> ReplacementTicket:
        """Ask for a replacement slot after a revocation.

        Args:
            gpu_name: GPU type of the replacement.
            region_name: Region of the replacement.
            grant: Invoked as ``grant(warm)`` (synchronously now, or later
                from a reclaim / cooldown / release event) once a slot is
                assigned; ``warm`` says whether it is a warm server.  The
                slot is already taken when the callback runs; a grantee
                that no longer needs it must :meth:`release` it.
            queue: Queue the request FIFO when no slot is free, instead of
                denying it.
            label: Debugging label recorded with queued requests.

        Returns:
            A :class:`ReplacementTicket` whose ``outcome`` is ``"granted"``,
            ``"queued"``, or ``"denied"``; queued tickets can be withdrawn
            with :meth:`ReplacementTicket.cancel` (e.g. when the requesting
            session finishes while still waiting).
        """
        self._state(gpu_name, region_name)
        key = (gpu_name, region_name)
        self.replacement_requests += 1
        warm = self._try_take(key)
        if warm is not None:
            self.replacements_granted += 1
            if warm:
                self.replacements_warm += 1
            grant(warm)
            return ReplacementTicket(GRANTED, key, warm=warm)
        if queue:
            self.replacements_queued += 1
            waiter = _Waiter(label, grant)
            self._waiters[key].append(waiter)
            self._bump()
            return ReplacementTicket(QUEUED, key, pool=self, waiter=waiter)
        self.replacements_denied += 1
        return ReplacementTicket(DENIED, key)

    def _cancel_waiter(self, key: PoolKey, waiter: _Waiter) -> bool:
        """Remove a queued waiter; True when it was still queued."""
        waiters = self._waiters[key]
        if waiter not in waiters:
            return False
        waiters.remove(waiter)
        self.replacements_cancelled += 1
        self._bump()
        return True

    def _serve(self, key: PoolKey) -> None:
        """Hand freed slots to queued replacement requests, FIFO."""
        waiters = self._waiters[key]
        while waiters:
            warm = self._try_take(key)
            if warm is None:
                return
            waiter = waiters.popleft()
            self.replacements_granted += 1
            if warm:
                self.replacements_warm += 1
            waiter.grant(warm)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    @property
    def replacement_denial_rate(self) -> float:
        """Denied replacement requests as a fraction of all requests.

        0.0 for a fleet that never requested a replacement — never a
        ZeroDivisionError or NaN (regression-tested in
        ``tests/test_scenarios.py``).
        """
        if self.replacement_requests == 0:
            return 0.0
        return self.replacements_denied / self.replacement_requests

    @property
    def warm_reuse_rate(self) -> float:
        """Warm grants as a fraction of all granted replacements (0.0 when
        nothing was granted)."""
        if self.replacements_granted == 0:
            return 0.0
        return self.replacements_warm / self.replacements_granted

    def stats(self) -> Dict[str, object]:
        """JSON-encodable pool summary for fleet payloads.

        The warm-reuse and cancellation keys appear only when those paths
        are in play (``warm_enabled`` / at least one cancellation): a
        cold-only pool's stats stay byte-identical to the pre-warm-pool
        payloads, which is the golden-fixture contract of
        ``tests/test_fleet_golden_identity.py``.
        """
        stats: Dict[str, object] = {
            "launches": self.launches,
            "releases": self.releases,
            "revocations": self.revocations,
            "replacement_requests": self.replacement_requests,
            "replacements_granted": self.replacements_granted,
            "replacements_queued": self.replacements_queued,
            "replacements_denied": self.replacements_denied,
            "replacement_denial_rate": self.replacement_denial_rate,
        }
        if self.replacements_cancelled:
            stats["replacements_cancelled"] = self.replacements_cancelled
        if self.warm_enabled:
            stats["replacements_warm"] = self.replacements_warm
            stats["warm_reuse_rate"] = self.warm_reuse_rate
        cells: Dict[str, Dict[str, object]] = {}
        for (gpu, region), state in sorted(self._states.items()):
            cell: Dict[str, object] = {
                "capacity": state.capacity,
                "in_use": state.in_use,
                "reclaimed": state.reclaimed,
                "peak_in_use": state.peak_in_use,
                "waiting": len(self._waiters[(gpu, region)]),
            }
            if self.warm_enabled:
                cell["warm"] = state.warm
                cell["peak_warm"] = state.peak_warm
            cells[f"{gpu}/{region}"] = cell
        stats["cells"] = cells
        return stats

    @staticmethod
    def merge_stats(stats_list: Sequence[Mapping[str, object]]
                    ) -> Dict[str, object]:
        """Merge per-shard :meth:`stats` payloads into one fleet summary.

        The sharded fleet driver (:mod:`repro.scenarios.shard`) partitions
        a fleet's pool cells across shards — every cell is *owned* by
        exactly one shard, so the per-shard stats count disjoint cells and
        disjoint request streams.  Counters therefore sum exactly, the
        derived rates recompute from the summed integers with the same
        guarded divisions as the live properties, and the conditional keys
        (``replacements_cancelled`` appears only when nonzero, the warm
        keys only when the warm path is enabled) follow the same
        presence rules as :meth:`stats`, so a merged summary is
        byte-identical to the one pool of the single-process run.
        """
        merged: Dict[str, object] = {
            key: sum(int(stats[key]) for stats in stats_list)
            for key in ("launches", "releases", "revocations",
                        "replacement_requests", "replacements_granted",
                        "replacements_queued", "replacements_denied")}
        requests = merged["replacement_requests"]
        merged["replacement_denial_rate"] = (
            merged["replacements_denied"] / requests if requests else 0.0)
        cancelled = sum(int(stats.get("replacements_cancelled", 0))
                        for stats in stats_list)
        if cancelled:
            merged["replacements_cancelled"] = cancelled
        if any("replacements_warm" in stats for stats in stats_list):
            warm = sum(int(stats.get("replacements_warm", 0))
                       for stats in stats_list)
            granted = merged["replacements_granted"]
            merged["replacements_warm"] = warm
            merged["warm_reuse_rate"] = warm / granted if granted else 0.0
        cells: Dict[str, Dict[str, object]] = {}
        for stats in stats_list:
            cells.update(stats["cells"])
        merged["cells"] = {key: cells[key] for key in
                           sorted(cells, key=lambda name: tuple(
                               name.partition("/")[::2]))}
        return merged
