"""Finite shared pool of transient GPU servers.

The paper's experiments run one training job at a time, so a replacement
request after a revocation always succeeds.  At fleet scale the picture
changes: concurrent jobs draw from the same per-``(gpu, region)`` transient
capacity, and a revocation means the provider *reclaimed* that capacity —
the slot does not return to the pool until ``reclaim_seconds`` later.  A
replacement request that finds the pool exhausted is therefore **denied**
(the job continues degraded) or **queued** (served FIFO when reclaimed
capacity returns or another job releases its servers), a regime the
single-job experiments never reach.

All pool state changes happen inside simulator event callbacks or
synchronous calls from them, so fleet runs stay deterministic: the FIFO
waiter order and the reclaim-return events are fully determined by the
event order of the simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Mapping, Tuple

from repro.errors import CapacityError, ConfigurationError
from repro.simulation.engine import Simulator

#: A pool key: ``(gpu name, region name)``.
PoolKey = Tuple[str, str]

#: Replacement-request outcomes.
GRANTED = "granted"
QUEUED = "queued"
DENIED = "denied"


@dataclass
class _PoolState:
    """Mutable per-``(gpu, region)`` accounting."""

    capacity: int
    in_use: int = 0
    reclaimed: int = 0
    peak_in_use: int = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use - self.reclaimed

    def take(self) -> None:
        self.in_use += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)


class TransientPool:
    """Shared finite transient-server capacity for a fleet of jobs.

    Args:
        simulator: Simulator that times reclaimed-capacity returns.
        capacity: Maximum concurrently alive servers per ``(gpu, region)``.
        reclaim_seconds: Delay before revoked capacity returns to the pool.
    """

    def __init__(self, simulator: Simulator, capacity: Mapping[PoolKey, int],
                 reclaim_seconds: float = 3600.0):
        if not capacity:
            raise ConfigurationError("a pool needs at least one (gpu, region) cell")
        if reclaim_seconds < 0:
            raise ConfigurationError("reclaim_seconds must be non-negative")
        self.simulator = simulator
        self.reclaim_seconds = float(reclaim_seconds)
        self._states: Dict[PoolKey, _PoolState] = {}
        for key, count in capacity.items():
            if count <= 0:
                raise ConfigurationError(f"pool capacity for {key} must be positive")
            self._states[key] = _PoolState(capacity=int(count))
        self._waiters: Dict[PoolKey, Deque[Tuple[str, Callable[[], None]]]] = {
            key: deque() for key in self._states}
        self.launches = 0
        self.releases = 0
        self.revocations = 0
        self.replacement_requests = 0
        self.replacements_granted = 0
        self.replacements_queued = 0
        self.replacements_denied = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def _state(self, gpu_name: str, region_name: str) -> _PoolState:
        key = (gpu_name, region_name)
        if key not in self._states:
            raise CapacityError(f"the pool has no {gpu_name!r} capacity in "
                                f"{region_name!r}")
        return self._states[key]

    def available(self, gpu_name: str, region_name: str) -> int:
        """Free slots for a ``(gpu, region)`` cell right now."""
        return self._state(gpu_name, region_name).available

    def in_use(self, gpu_name: str, region_name: str) -> int:
        """Slots currently occupied by running servers."""
        return self._state(gpu_name, region_name).in_use

    def pending_waiters(self, gpu_name: str, region_name: str) -> int:
        """Queued replacement requests for a ``(gpu, region)`` cell."""
        return len(self._waiters[(gpu_name, region_name)])

    # ------------------------------------------------------------------
    # Slot lifecycle.
    # ------------------------------------------------------------------
    def acquire(self, gpu_name: str, region_name: str) -> None:
        """Take one slot for an initial (fleet-launch) worker.

        Raises:
            CapacityError: If the cell has no free slot; scenario specs
                validate initial demand up front, so this only fires on
                direct misuse of the pool.
        """
        state = self._state(gpu_name, region_name)
        if state.available <= 0:
            raise CapacityError(
                f"no free {gpu_name} capacity in {region_name} at fleet launch")
        state.take()
        self.launches += 1

    def release(self, gpu_name: str, region_name: str) -> None:
        """Return a slot whose server terminated normally (job completed)."""
        state = self._state(gpu_name, region_name)
        if state.in_use <= 0:
            raise CapacityError(f"release without a matching acquire for "
                                f"({gpu_name}, {region_name})")
        state.in_use -= 1
        self.releases += 1
        self._serve((gpu_name, region_name))

    def revoke(self, gpu_name: str, region_name: str) -> None:
        """Record a revocation: the provider reclaims the slot's capacity.

        The slot moves from *in use* to *reclaimed* and returns to the pool
        ``reclaim_seconds`` later, at which point queued replacement
        requests are served FIFO.
        """
        state = self._state(gpu_name, region_name)
        if state.in_use <= 0:
            raise CapacityError(f"revocation without a live server for "
                                f"({gpu_name}, {region_name})")
        state.in_use -= 1
        state.reclaimed += 1
        self.revocations += 1
        key = (gpu_name, region_name)

        def restore(_sim: Simulator) -> None:
            state.reclaimed -= 1
            self._serve(key)

        self.simulator.schedule(self.reclaim_seconds, restore,
                                label=f"pool:reclaim:{gpu_name}:{region_name}")

    def request_replacement(self, gpu_name: str, region_name: str,
                            grant: Callable[[], None], queue: bool = False,
                            label: str = "") -> str:
        """Ask for a replacement slot after a revocation.

        Args:
            gpu_name: GPU type of the replacement.
            region_name: Region of the replacement.
            grant: Invoked (synchronously now, or later from a reclaim /
                release event) once a slot is assigned.  The slot is already
                taken when the callback runs; a grantee that no longer needs
                it must :meth:`release` it.
            queue: Queue the request FIFO when no slot is free, instead of
                denying it.
            label: Debugging label recorded with queued requests.

        Returns:
            ``"granted"``, ``"queued"``, or ``"denied"``.
        """
        state = self._state(gpu_name, region_name)
        self.replacement_requests += 1
        if state.available > 0:
            state.take()
            self.replacements_granted += 1
            grant()
            return GRANTED
        if queue:
            self.replacements_queued += 1
            self._waiters[(gpu_name, region_name)].append((label, grant))
            return QUEUED
        self.replacements_denied += 1
        return DENIED

    def _serve(self, key: PoolKey) -> None:
        """Hand freed slots to queued replacement requests, FIFO."""
        state = self._states[key]
        waiters = self._waiters[key]
        while waiters and state.available > 0:
            _label, grant = waiters.popleft()
            state.take()
            self.replacements_granted += 1
            grant()

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    @property
    def replacement_denial_rate(self) -> float:
        """Denied replacement requests as a fraction of all requests."""
        if self.replacement_requests == 0:
            return 0.0
        return self.replacements_denied / self.replacement_requests

    def stats(self) -> Dict[str, object]:
        """JSON-encodable pool summary for fleet payloads."""
        return {
            "launches": self.launches,
            "releases": self.releases,
            "revocations": self.revocations,
            "replacement_requests": self.replacement_requests,
            "replacements_granted": self.replacements_granted,
            "replacements_queued": self.replacements_queued,
            "replacements_denied": self.replacements_denied,
            "replacement_denial_rate": self.replacement_denial_rate,
            "cells": {f"{gpu}/{region}": {
                "capacity": state.capacity,
                "in_use": state.in_use,
                "reclaimed": state.reclaimed,
                "peak_in_use": state.peak_in_use,
                "waiting": len(self._waiters[(gpu, region)]),
            } for (gpu, region), state in sorted(self._states.items())},
        }
