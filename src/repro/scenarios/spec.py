"""Declarative fleet-scenario specifications.

A :class:`ScenarioSpec` describes a *fleet*: several concurrent training
jobs (:class:`JobSpec`) sharing one finite pool of transient GPU servers.
Specs round-trip losslessly through JSON (:meth:`ScenarioSpec.to_params` /
:meth:`ScenarioSpec.from_params`), which is what lets the fleet runner fan
scenario cells out through :class:`repro.sweeps.SweepRunner`: the JSON form
is the sweep cell's parameter payload, so per-cell RNG seeding, caching,
and serial/parallel bit-identity all come for free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cloud.gpus import get_gpu
from repro.cloud.regions import get_region
from repro.errors import ConfigurationError
from repro.training.cluster import ClusterSpec, WorkerSpec
from repro.units import wrap_hour

#: A pool key: ``(gpu name, region name)``.
PoolKey = Tuple[str, str]

#: Valid fleet placement modes: ``static`` pins every worker to its
#: declared ``(gpu, region)``; ``adaptive`` lets the pool-aware launch
#: advisor pick regions from live availability and the revocation
#: calibration, at launch and on replacement denial.
PLACEMENTS = ("static", "adaptive")


def _normalize_key(gpu_name: str, region_name: str) -> PoolKey:
    """Canonical ``(gpu, region)`` key, validating both names."""
    return (get_gpu(gpu_name).name, get_region(region_name).name)


@dataclass(frozen=True)
class JobSpec:
    """One training job inside a fleet scenario.

    Attributes:
        name: Fleet-unique job name.
        model_name: Catalog model to train.
        total_steps: Workload size in training steps.
        workers: ``(gpu, region)`` placement of each transient GPU worker.
        num_parameter_servers: On-demand parameter servers for the job.
        ps_region_name: Region hosting the parameter servers; defaults to
            the first worker's region.
        checkpoint_interval_steps: Steps between checkpoints.
        start_delay_seconds: Simulation time at which training begins
            (staggered fleet arrivals).  Pool slots for the initial workers
            are reserved at time zero regardless, mirroring servers that
            are provisioned up front and idle until the job starts.
        queue_replacements: When the pool is exhausted, queue replacement
            requests until reclaimed capacity returns instead of denying
            them outright.
        auto_mitigate_bottleneck: Let the job's controller add a parameter
            server when a PS bottleneck is detected.
        steps_per_event: Simulation granularity (steps per chunk event).
    """

    name: str
    model_name: str
    total_steps: int
    workers: Tuple[PoolKey, ...]
    num_parameter_servers: int = 1
    ps_region_name: Optional[str] = None
    checkpoint_interval_steps: int = 4000
    start_delay_seconds: float = 0.0
    queue_replacements: bool = False
    auto_mitigate_bottleneck: bool = False
    steps_per_event: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a job needs a non-empty name")
        if self.total_steps <= 0:
            raise ConfigurationError("total_steps must be positive")
        if self.start_delay_seconds < 0:
            raise ConfigurationError("start_delay_seconds must be non-negative")
        if not self.workers:
            raise ConfigurationError(f"job {self.name!r} needs at least one worker")
        normalized = tuple(_normalize_key(gpu, region)
                           for gpu, region in self.workers)
        object.__setattr__(self, "workers", normalized)
        # WorkerSpec validates that every region offers its GPU type.
        self.cluster()

    def cluster(self) -> ClusterSpec:
        """The job's :class:`~repro.training.cluster.ClusterSpec`."""
        specs = tuple(WorkerSpec(gpu_name=gpu, region_name=region, transient=True)
                      for gpu, region in self.workers)
        ps_region = self.ps_region_name or self.workers[0][1]
        return ClusterSpec(workers=specs,
                           num_parameter_servers=self.num_parameter_servers,
                           ps_region_name=ps_region)

    def to_params(self) -> Dict[str, Any]:
        """JSON-encodable form (sweep cell parameters)."""
        return {
            "name": self.name,
            "model_name": self.model_name,
            "total_steps": self.total_steps,
            "workers": [list(pair) for pair in self.workers],
            "num_parameter_servers": self.num_parameter_servers,
            "ps_region_name": self.ps_region_name,
            "checkpoint_interval_steps": self.checkpoint_interval_steps,
            "start_delay_seconds": self.start_delay_seconds,
            "queue_replacements": self.queue_replacements,
            "auto_mitigate_bottleneck": self.auto_mitigate_bottleneck,
            "steps_per_event": self.steps_per_event,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a job spec from its :meth:`to_params` form."""
        data = dict(params)
        data["workers"] = tuple((gpu, region) for gpu, region in data["workers"])
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A fleet of concurrent jobs contending for one transient-server pool.

    Attributes:
        name: Scenario name (used for sweep naming and caching).
        description: One-line summary shown by the CLI.
        jobs: The fleet's jobs, in launch order.
        pool_capacity: Maximum concurrently alive transient servers per
            ``(gpu, region)`` pool; must cover every job's initial workers.
        reclaim_seconds: How long revoked capacity stays reclaimed by the
            provider before it returns to the pool (and can serve queued
            replacement requests).
        epoch_hour_utc: Wall-clock UTC hour at simulation time zero, or
            ``None`` to draw it from the scenario's random streams.
        poll_interval_seconds: Cadence of every job controller's
            monitoring loop.
        warm_seconds: How long returning reclaimed capacity lingers as a
            warm (re-acquirable, Fig. 10 warm-start) server before cooling
            down.  0 keeps the pool cold-only.
        warm_capacity: Maximum warm servers kept per ``(gpu, region)``
            cell; 0 (the default) disables warm reuse entirely and is
            bit-identical to the pre-warm-pool fleets.
        placement: ``"static"`` (default: workers pinned to their declared
            cells, bit-identical to pre-placement fleets) or ``"adaptive"``
            (the pool-aware launch advisor picks regions from live
            availability and the revocation calibration, at launch and on
            replacement denial).
    """

    name: str
    description: str
    jobs: Tuple[JobSpec, ...]
    pool_capacity: Mapping[PoolKey, int] = field(default_factory=dict)
    reclaim_seconds: float = 3600.0
    epoch_hour_utc: Optional[float] = None
    poll_interval_seconds: float = 60.0
    warm_seconds: float = 0.0
    warm_capacity: int = 0
    placement: str = "static"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if not self.jobs:
            raise ConfigurationError("a scenario needs at least one job")
        if self.reclaim_seconds < 0:
            raise ConfigurationError("reclaim_seconds must be non-negative")
        if self.poll_interval_seconds <= 0:
            raise ConfigurationError("poll_interval_seconds must be positive")
        if self.warm_seconds < 0:
            raise ConfigurationError("warm_seconds must be non-negative")
        if self.warm_capacity < 0:
            raise ConfigurationError("warm_capacity must be non-negative")
        if self.placement not in PLACEMENTS:
            known = ", ".join(PLACEMENTS)
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; known: {known}")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate job names in scenario {self.name!r}")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        capacity = {_normalize_key(gpu, region): int(count)
                    for (gpu, region), count in dict(self.pool_capacity).items()}
        if any(count <= 0 for count in capacity.values()):
            raise ConfigurationError("pool capacities must be positive")
        object.__setattr__(self, "pool_capacity", capacity)
        if self.epoch_hour_utc is not None:
            object.__setattr__(self, "epoch_hour_utc",
                               wrap_hour(self.epoch_hour_utc))
        demand = self.initial_demand()
        if self.placement == "adaptive":
            # Adaptive placement may move a worker to any pool cell with
            # the same GPU type, so validate demand per GPU type instead of
            # per cell.
            demand_by_gpu: Dict[str, int] = {}
            supply_by_gpu: Dict[str, int] = {}
            for (gpu, _region), needed in demand.items():
                demand_by_gpu[gpu] = demand_by_gpu.get(gpu, 0) + needed
            for (gpu, _region), have in capacity.items():
                supply_by_gpu[gpu] = supply_by_gpu.get(gpu, 0) + have
            for gpu, needed in demand_by_gpu.items():
                have = supply_by_gpu.get(gpu, 0)
                if needed > have:
                    raise ConfigurationError(
                        f"scenario {self.name!r} needs {needed} x {gpu} "
                        f"transient servers up front but the pool only "
                        f"offers {have} across all regions")
        else:
            for key, needed in demand.items():
                have = capacity.get(key, 0)
                if needed > have:
                    raise ConfigurationError(
                        f"scenario {self.name!r} needs {needed} x {key} transient "
                        f"servers up front but the pool only offers {have}")

    def shard_subset(self, job_indices: Tuple[int, ...],
                     cells: Tuple[PoolKey, ...],
                     epoch_hour_utc: Optional[float] = None) -> "ScenarioSpec":
        """The sub-scenario one fleet shard runs: a job/cell slice of this one.

        Used by :mod:`repro.scenarios.shard`: each shard simulates the jobs
        in ``job_indices`` (in their original fleet order, so per-cell pool
        acquisition sequences and launch-draw ordering are preserved)
        against only the pool cells in ``cells``.  ``epoch_hour_utc`` pins
        the fleet epoch explicitly — the parent resolves a ``None`` epoch
        by drawing from the fleet streams exactly once, so every shard
        shares the draw the single-process run would have made.

        The slice revalidates through ``__post_init__``: because the full
        scenario was launchable and ``cells`` covers every sliced job's
        placements, the per-cell demand check passes by construction.
        """
        if not job_indices:
            raise ConfigurationError("a shard needs at least one job")
        jobs = tuple(self.jobs[index] for index in job_indices)
        capacity = {key: self.pool_capacity[key] for key in sorted(cells)}
        epoch = self.epoch_hour_utc if epoch_hour_utc is None else epoch_hour_utc
        return dataclasses.replace(self, jobs=jobs, pool_capacity=capacity,
                                   epoch_hour_utc=epoch)

    def initial_demand(self) -> Dict[PoolKey, int]:
        """Transient servers needed per pool at fleet launch."""
        demand: Dict[PoolKey, int] = {}
        for job in self.jobs:
            for key in job.workers:
                demand[key] = demand.get(key, 0) + 1
        return demand

    def total_workers(self) -> int:
        """GPU workers across the whole fleet at launch."""
        return sum(len(job.workers) for job in self.jobs)

    def to_params(self) -> Dict[str, Any]:
        """JSON-encodable form (sweep cell parameters).

        The warm-pool and placement knobs are emitted **only when they
        differ from their cold/static defaults**: the canonical JSON of a
        cell's parameters keys both its derived RNG seed and its cache
        entry, so a default (cold-only, statically placed) scenario must
        encode byte-identically to its pre-warm-pool form for fleet
        payloads and caches to stay bit-compatible.
        """
        params: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "jobs": [job.to_params() for job in self.jobs],
            "pool_capacity": {f"{gpu}/{region}": count
                              for (gpu, region), count in
                              sorted(self.pool_capacity.items())},
            "reclaim_seconds": self.reclaim_seconds,
            "epoch_hour_utc": self.epoch_hour_utc,
            "poll_interval_seconds": self.poll_interval_seconds,
        }
        if self.warm_seconds != 0.0:
            params["warm_seconds"] = self.warm_seconds
        if self.warm_capacity != 0:
            params["warm_capacity"] = self.warm_capacity
        if self.placement != "static":
            params["placement"] = self.placement
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario spec from its :meth:`to_params` form."""
        data = dict(params)
        data["jobs"] = tuple(JobSpec.from_params(job) for job in data["jobs"])
        capacity: Dict[PoolKey, int] = {}
        for key, count in data["pool_capacity"].items():
            gpu, _, region = key.partition("/")
            capacity[(gpu, region)] = int(count)
        data["pool_capacity"] = capacity
        return cls(**data)

    def describe(self) -> str:
        """Short human-readable summary for CLI listings."""
        pools = ", ".join(f"{count}x {gpu}@{region}"
                          for (gpu, region), count in
                          sorted(self.pool_capacity.items()))
        extras = ""
        if self.placement != "static":
            extras += f"; placement: {self.placement}"
        if self.warm_capacity > 0 and self.warm_seconds > 0:
            extras += (f"; warm: {self.warm_capacity}/cell "
                       f"for {self.warm_seconds:g}s")
        return (f"{len(self.jobs)} jobs / {self.total_workers()} workers; "
                f"pool: {pools}{extras}")
