"""Fleet-level aggregation tables (via :mod:`repro.analysis`)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import DataError
from repro.sweeps import SweepResult

#: Columns of the per-replicate fleet summary table.
FLEET_TABLE_HEADERS = (
    "replicate", "jobs done", "stalled", "makespan (h)", "cost (USD)",
    "revocations", "absorbed", "denied", "denial rate", "PS mitigations",
)


def fleet_rows(result: SweepResult) -> List[List[Any]]:
    """One summary row per fleet replicate of a scenario sweep."""
    rows: List[List[Any]] = []
    for cell_result in result:
        payload = cell_result.payload
        if not isinstance(payload, dict) or "makespan_seconds" not in payload:
            raise DataError("fleet tables need fleet_cell payloads")
        rows.append([
            cell_result.cell.params.get("replicate", cell_result.cell.index),
            f"{payload['jobs_completed']}/{payload['jobs_total']}",
            payload["jobs_stalled"],
            payload["makespan_seconds"] / 3600.0,
            payload["total_cost_usd"],
            payload["revocations"],
            payload["replacements_admitted"],
            payload["replacements_denied"],
            payload["replacement_denial_rate"],
            payload["ps_mitigations"],
        ])
    return rows


def fleet_summary_table(result: SweepResult) -> str:
    """Render a scenario sweep as a fixed-width fleet summary table."""
    scenario = result.spec.fixed.get("scenario", {}).get("name", result.spec.name)
    return format_table(FLEET_TABLE_HEADERS, fleet_rows(result),
                        title=f"fleet scenario {scenario!r}")


def fleet_hour_histogram(payloads: Sequence[Dict[str, Any]]) -> np.ndarray:
    """Local-hour revocation histogram across fleet replicates (Fig. 9 style)."""
    from repro.units import hour_bin

    histogram = np.zeros(24, dtype=int)
    for payload in payloads:
        for hour in payload.get("revocation_hours_local", ()):
            histogram[hour_bin(hour)] += 1
    return histogram
