"""Fleet-level aggregation tables (via :mod:`repro.analysis`).

Two table families:

* :func:`fleet_summary_table` — one row per fleet replicate (the classic
  per-cell view);
* :func:`fleet_frontier_table` — the cost/makespan frontier of a
  multi-axis fleet sweep: cells sharing the same non-``replicate`` axis
  values aggregate into one row (mean makespan/cost, pooled denial and
  warm-reuse rates), and rows on the Pareto frontier of (mean cost, mean
  makespan) — no other row is at least as good on both and better on one —
  are flagged in the ``frontier`` column.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import DataError
from repro.sweeps import SweepResult

#: Columns of the per-replicate fleet summary table.
FLEET_TABLE_HEADERS = (
    "replicate", "jobs done", "stalled", "makespan (h)", "cost (USD)",
    "revocations", "absorbed", "denied", "denial rate", "PS mitigations",
)


def fleet_rows(result: SweepResult) -> List[List[Any]]:
    """One summary row per fleet replicate of a scenario sweep."""
    rows: List[List[Any]] = []
    for cell_result in result:
        payload = cell_result.payload
        if not isinstance(payload, dict) or "makespan_seconds" not in payload:
            raise DataError("fleet tables need fleet_cell payloads")
        rows.append([
            cell_result.cell.params.get("replicate", cell_result.cell.index),
            f"{payload['jobs_completed']}/{payload['jobs_total']}",
            payload["jobs_stalled"],
            payload["makespan_seconds"] / 3600.0,
            payload["total_cost_usd"],
            payload["revocations"],
            payload["replacements_admitted"],
            payload["replacements_denied"],
            payload["replacement_denial_rate"],
            payload["ps_mitigations"],
        ])
    return rows


def fleet_summary_table(result: SweepResult) -> str:
    """Render a scenario sweep as a fixed-width fleet summary table."""
    scenario = result.spec.fixed.get("scenario", {}).get("name", result.spec.name)
    return format_table(FLEET_TABLE_HEADERS, fleet_rows(result),
                        title=f"fleet scenario {scenario!r}")


#: Metric columns of the frontier table (appended after the axis columns).
FRONTIER_METRIC_HEADERS = (
    "fleets", "jobs done", "makespan (h)", "cost (USD)", "denial rate",
    "warm reuse", "frontier",
)


def _frontier_groups(result: SweepResult) -> Tuple[List[str], Dict[tuple, List[Dict[str, Any]]]]:
    """Group a fleet sweep's payloads by their non-replicate axis values."""
    axis_names = [name for name in result.spec.axis_names
                  if name != "replicate"]
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for cell_result in result:
        payload = cell_result.payload
        if not isinstance(payload, dict) or "makespan_seconds" not in payload:
            raise DataError("fleet tables need fleet_cell payloads")
        key = tuple(cell_result.cell.params[name] for name in axis_names)
        groups.setdefault(key, []).append(payload)
    return axis_names, groups


def frontier_rows(result: SweepResult) -> Tuple[List[str], List[List[Any]]]:
    """Aggregate a multi-axis fleet sweep into frontier-table rows.

    Returns:
        ``(headers, rows)``: the axis columns (sweep axes minus
        ``replicate``) followed by :data:`FRONTIER_METRIC_HEADERS`, and one
        row per axis combination.  Rates pool the underlying counts across
        replicates (never NaN: a combination with zero replacement
        requests reports a denial rate of 0.0), and the ``frontier``
        column marks the Pareto-optimal (mean cost, mean makespan) rows
        with ``*``.
    """
    axis_names, groups = _frontier_groups(result)
    aggregated: List[Tuple[tuple, float, float, List[Any]]] = []
    # Insertion order == the sweep's row-major cell order, so rows follow
    # the natural axis ordering (1.0, 2.0, 10.0 — not "10.0" < "2.0").
    for key, payloads in groups.items():
        fleets = len(payloads)
        makespan = float(np.mean([p["makespan_seconds"] for p in payloads])) / 3600.0
        cost = float(np.mean([p["total_cost_usd"] for p in payloads]))
        requests = sum(p["pool"]["replacement_requests"] for p in payloads)
        denied = sum(p["replacements_denied"] for p in payloads)
        granted = sum(p["pool"]["replacements_granted"] for p in payloads)
        warm = sum(p.get("replacements_warm", 0) for p in payloads)
        denial_rate = denied / requests if requests else 0.0
        warm_rate = warm / granted if granted else 0.0
        done = sum(p["jobs_completed"] for p in payloads)
        total = sum(p["jobs_total"] for p in payloads)
        aggregated.append((key, cost, makespan, [
            fleets, f"{done}/{total}", makespan, cost, denial_rate,
            warm_rate]))
    rows: List[List[Any]] = []
    for key, cost, makespan, metrics in aggregated:
        dominated = any(
            other_cost <= cost and other_makespan <= makespan
            and (other_cost < cost or other_makespan < makespan)
            for _key, other_cost, other_makespan, _metrics in aggregated)
        rows.append(list(key) + metrics + ["*" if not dominated else ""])
    headers = list(axis_names) + list(FRONTIER_METRIC_HEADERS)
    return headers, rows


def fleet_frontier_table(result: SweepResult) -> str:
    """Render a multi-axis fleet sweep as its cost/makespan frontier table."""
    scenario = result.spec.fixed.get("scenario", {}).get("name", result.spec.name)
    headers, rows = frontier_rows(result)
    return format_table(headers, rows,
                        title=f"fleet frontier {scenario!r}")


def fleet_hour_histogram(payloads: Sequence[Dict[str, Any]]) -> np.ndarray:
    """Local-hour revocation histogram across fleet replicates (Fig. 9 style)."""
    from repro.units import hour_bin

    histogram = np.zeros(24, dtype=int)
    for payload in payloads:
        for hour in payload.get("revocation_hours_local", ()):
            histogram[hour_bin(hour)] += 1
    return histogram
