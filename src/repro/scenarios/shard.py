"""Sharded multi-process fleet execution with deterministic cross-shard messaging.

One :class:`~repro.scenarios.fleet.FleetRun` multiplexes every job of a
scenario on a single simulator in a single process.  This module partitions
a fleet across N worker processes — *shards* — while keeping the payload
**bit-identical** to the single-process run, so sharding is purely an
execution knob (``REPRO_FLEET_SHARDS`` / ``shards=``), never a modeling
decision.

Ownership
---------
The PR 4 wake-set scheduler already tags every chunk event with its owning
session (``Event.owner``) so the heap top names the one session able to
progress.  Sharding generalizes that ownership one level up:

* **jobs and pool cells are partitioned by connected component.**  Two jobs
  that share a ``(gpu, region)`` :class:`~repro.scenarios.pool.TransientPool`
  cell interact through grants, queues, and warm reuse at event granularity,
  so they must stay on one simulator; jobs in different components never
  touch each other's cells.  :func:`partition_scenario` computes the
  components of the job/cell graph and bin-packs them across shards by
  simulated weight.  Every cell is therefore *owned* by exactly one shard —
  pool FIFO invariants, acquisition order, and per-cell counters are all
  shard-local and merge exactly (``TransientPool.merge_stats``).  Adaptive
  placement couples every same-GPU cell by design, so it always forms one
  component (and runs single-process).
* **each shard runs its own simulator + wake-set loop** over its local
  jobs, riding the existing fast-forward path unchanged.  Within a shard
  the event-ownership invariant holds exactly as in a single-process fleet.

The one cross-shard coupling: the shared revocation stream
----------------------------------------------------------
Worker lifetimes are drawn from one :class:`~repro.cloud.revocation.RevocationModel`
whose generator is consumed in **global event order**, and each draw
consumes a variable amount of the stream (a survivor check, plus candidate
draws only when revoked) — so draw *values* depend on draw *order*, and the
stream cannot be split or pre-advanced per shard.  Sharded fleets therefore
route every draw through a **draw service** in the parent process, which
owns the one true model and replays the exact single-process call sequence:

* a shard needing draws sends a *draw request* ``(time, rank, calls)`` over
  its pipe and blocks; ``rank`` is the job's global fleet index, which is
  exactly the single-process tie-break for simultaneous draws (launch draws
  at equal start delays happen in job wiring order).
* requests are queued in a :class:`DeterministicMessageQueue` and granted
  in ``(time, rank)`` order — never in OS arrival order.  A request is
  granted only once every other shard provably cannot need an earlier draw:
  it is done, is itself blocked on a later request, or has reported a
  progress lower bound past the request's time.  Shards report that bound
  (their simulator's :meth:`~repro.simulation.engine.Simulator.next_event_time`)
  every ``_progress_interval`` processed events — the *epoch barriers* of
  the conductor: between two reports a shard can only fire events, and
  hence request draws, at or after its last reported bound, so the barrier
  makes the conservative grant order safe regardless of OS scheduling.
* the parent executes the real model calls (same arguments, same batching
  as the single-process fleet, hence the same stream consumption) and
  replies with the outcomes plus each draw's global sequence number.

Supervision: restart-replay
---------------------------
Shard death must not abort the fleet.  The parent supervises its children
through the channels it already owns: an EOF or error on a shard's pipe,
a nonzero exit, or a missed heartbeat deadline (no message for
``heartbeat_seconds`` while *not* blocked on a pending grant — progress
reports double as heartbeats) marks the shard dead.  Recovery leans on
determinism instead of checkpoints:

* the draw service appends every grant it sends to a per-shard **grant
  log** ``(calls, outcomes, base rank)`` — the only nondeterministic
  input a shard ever consumes;
* a dead shard is reaped (terminate + join) and respawned with the same
  sub-scenario, streams seed, and spool config, plus a bumped
  *incarnation* counter;
* the respawn re-executes from simulated time zero and re-issues the
  exact same draw-request sequence; the parent answers those requests
  **from the log** (verifying the replayed calls match, without touching
  the revocation model) until the log is exhausted, then routes the
  shard back onto the live draw service.

Because grants are logged at send time and the model is consumed at
grant time, a crash between grant and receipt loses nothing — the replay
re-delivers the logged outcome.  Stale queue entries from a dead
incarnation are skipped at grant time (each queued request carries its
sender's incarnation).  The restart budget (``max_restarts`` /
``REPRO_SHARD_RESTARTS``, default 3 per fleet) bounds the loop: once
exhausted, the run raises :class:`~repro.errors.SimulationError` and the
driver's ``finally`` reaps every child.  Deterministic child *errors*
(the ``error`` message, e.g. a bad model name) still fail fast without a
restart — replaying a deterministic failure would only repeat it.

The :mod:`repro.chaos` harness drives this machinery: ``shard_crash``
faults ``os._exit`` a worker at its nth draw request and ``drop_grant``
faults swallow a grant reply (wedging the shard until the heartbeat
fires), both verified bit-identical to the crash-free golden fixture in
``tests/test_chaos.py`` and the CI chaos-smoke job.

Merging
-------
Each shard returns its ordinary fleet payload plus its revocation records
``(revoke time, global draw rank, local hour)``.  The parent reassembles
the single-process payload exactly: per-job entries in global job order,
``total_cost_usd`` summed in that order (float addition order preserved),
pool stats merged cell-by-cell (cells are disjoint by ownership), and
``revocation_hours_local`` ordered by ``(revoke time, draw rank)`` — the
draw rank reproduces the single-process heap tie-break because revocation
events are scheduled immediately after their draws, in draw order.

Contracts (pinned by ``tests/test_shard.py`` and the golden matrix):

* payloads bit-identical to single-process across ``REPRO_FLEET_SHARDS``
  x ``REPRO_FLEET_SCHEDULER`` x ``REPRO_CORE_FASTFORWARD`` x
  ``REPRO_FLEET_TRACE_LEVEL``;
* ``shards=1`` (the default) byte-identically reuses the single-process
  code path — same streams, same seeds, same sweep cache entries;
* fleets that form one component (every named single-region scenario, and
  any adaptive fleet) also run the single-process path verbatim, whatever
  the shard count.

``benchmarks/fleet_sharded_baseline.py`` records the throughput baseline
(``BENCH_fleet_sharded.json``); CI runs it with ``--quick --check`` under
``REPRO_FLEET_SHARDS=2`` as a regression gate.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import chaos
from repro.cloud.pricing import PriceCatalog
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.errors import ConfigurationError, SimulationError
from repro.scenarios.fleet import FleetRun, _shards_default
from repro.scenarios.pool import TransientPool
from repro.scenarios.spec import PoolKey, ScenarioSpec
from repro.simulation.rng import RandomStreams
from repro.training.session import TrainingSession
from repro.training.worker import WorkerState
from repro.workloads.catalog import ModelCatalog

__all__ = [
    "DeterministicMessageQueue",
    "ShardFleetRun",
    "ShardGroup",
    "ShardMessage",
    "ShardedFleetRun",
    "partition_scenario",
    "run_fleet_sharded",
]

#: Environment default for the per-fleet shard restart budget.
SHARD_RESTARTS_ENV = "REPRO_SHARD_RESTARTS"
DEFAULT_MAX_RESTARTS = 3

#: Environment default for the shard heartbeat deadline (seconds).
SHARD_HEARTBEAT_ENV = "REPRO_SHARD_HEARTBEAT_SECONDS"
DEFAULT_HEARTBEAT_SECONDS = 60.0


def _max_restarts_default() -> int:
    raw = os.environ.get(SHARD_RESTARTS_ENV, "")
    if not raw:
        return DEFAULT_MAX_RESTARTS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SHARD_RESTARTS_ENV} expects a non-negative integer, "
            f"got {raw!r}")
    if value < 0:
        raise ConfigurationError(
            f"{SHARD_RESTARTS_ENV} must be >= 0, got {value}")
    return value


def _heartbeat_default() -> float:
    raw = os.environ.get(SHARD_HEARTBEAT_ENV, "")
    if not raw:
        return DEFAULT_HEARTBEAT_SECONDS
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SHARD_HEARTBEAT_ENV} expects a positive number of seconds, "
            f"got {raw!r}")
    if value <= 0:
        raise ConfigurationError(
            f"{SHARD_HEARTBEAT_ENV} must be > 0, got {value}")
    return value


# ---------------------------------------------------------------------------
# Deterministic cross-shard messaging.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard message, ordered by ``(time, rank, shard, seq)``.

    ``time`` and ``rank`` carry the simulation-level ordering (event time,
    then the global job index as the tie-break); ``shard`` and ``seq`` are
    the sender's identity and its per-sender send counter.  Because a shard
    sends at most one in-flight draw request and numbers its messages
    itself, the full key is a total order fixed by the *senders* — two
    messages compare the same however the OS interleaves their arrival.
    """

    time: float
    rank: int
    shard: int
    seq: int
    payload: Any = None

    @property
    def key(self) -> Tuple[float, int, int, int]:
        return (self.time, self.rank, self.shard, self.seq)


class DeterministicMessageQueue:
    """A drain queue whose pop order is independent of push order.

    Messages drain in :attr:`ShardMessage.key` order — simulation time,
    then job rank, then sender shard, then the sender's own sequence
    number.  Pushing the same set of messages in any arrival order yields
    the same pop sequence (property-tested in
    ``tests/test_property_based.py``), which is what makes the parent's
    draw service — and hence every cross-shard random draw — deterministic
    under arbitrary OS scheduling.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple[float, int, int, int], ShardMessage]] = []

    def push(self, message: ShardMessage) -> None:
        heapq.heappush(self._heap, (message.key, message))

    def peek(self) -> ShardMessage:
        if not self._heap:
            raise IndexError("peek from an empty DeterministicMessageQueue")
        return self._heap[0][1]

    def pop(self) -> ShardMessage:
        if not self._heap:
            raise IndexError("pop from an empty DeterministicMessageQueue")
        return heapq.heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ---------------------------------------------------------------------------
# Partitioning.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardGroup:
    """One shard's slice of a fleet: jobs, owned pool cells, and weight."""

    index: int
    job_indices: Tuple[int, ...]
    cells: Tuple[PoolKey, ...]
    weight: int


def _job_weight(scenario: ScenarioSpec, job_index: int) -> int:
    """Simulated-load proxy for balancing: steps x workers."""
    job = scenario.jobs[job_index]
    return job.total_steps * len(job.workers)


def partition_scenario(scenario: ScenarioSpec,
                       shards: int) -> List[ShardGroup]:
    """Partition a fleet's jobs and pool cells across up to ``shards`` groups.

    Jobs sharing a pool cell interact at event granularity and must stay
    together, so the unit of distribution is a *connected component* of
    the job/cell graph.  Components are balanced across shards greedily by
    descending weight (steps x workers, a proxy for event count) onto the
    least-loaded shard — fully deterministic, no RNG involved.  Pool cells
    no job uses are owned by shard 0, so the merged payload reports the
    same idle cells as the single-process run.

    Adaptive placement lets any job reach any same-GPU cell, coupling the
    whole fleet into one component by design, so it always yields a single
    group (which the driver then runs on the ordinary single-process path).
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    total = len(scenario.jobs)
    all_cells = tuple(sorted(scenario.pool_capacity))
    whole = [ShardGroup(index=0, job_indices=tuple(range(total)),
                        cells=all_cells,
                        weight=sum(_job_weight(scenario, i)
                                   for i in range(total)))]
    if shards == 1 or total == 1 or scenario.placement == "adaptive":
        return whole

    # Union-find over jobs: two jobs sharing any (gpu, region) cell merge.
    parent = list(range(total))

    def find(index: int) -> int:
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    cell_user: Dict[PoolKey, int] = {}
    for job_index, job in enumerate(scenario.jobs):
        for cell in job.workers:
            if cell in cell_user:
                parent[find(job_index)] = find(cell_user[cell])
            else:
                cell_user[cell] = job_index
    components: Dict[int, List[int]] = {}
    for job_index in range(total):
        components.setdefault(find(job_index), []).append(job_index)
    if len(components) == 1:
        return whole

    # Greedy balance: heaviest component first onto the least-loaded bin
    # (ties: lowest bin index), all deterministic.
    ordered = sorted(components.values(),
                     key=lambda ids: (-sum(_job_weight(scenario, i)
                                           for i in ids), ids[0]))
    bins: List[List[int]] = [[] for _ in range(min(shards, len(ordered)))]
    loads = [0] * len(bins)
    for ids in ordered:
        target = loads.index(min(loads))
        bins[target].extend(ids)
        loads[target] += sum(_job_weight(scenario, i) for i in ids)

    spare = sorted(set(scenario.pool_capacity) - set(cell_user))
    groups: List[ShardGroup] = []
    for raw in bins:
        if not raw:
            continue
        job_indices = tuple(sorted(raw))
        cells = {cell for index in job_indices
                 for cell in scenario.jobs[index].workers}
        if not groups:
            cells.update(spare)
        groups.append(ShardGroup(
            index=len(groups), job_indices=job_indices,
            cells=tuple(sorted(cells)),
            weight=sum(_job_weight(scenario, i) for i in job_indices)))
    return groups


# ---------------------------------------------------------------------------
# Worker (shard) side.
# ---------------------------------------------------------------------------
class ShardFleetRun(FleetRun):
    """One shard's slice of a fleet, revocation draws routed to the parent.

    Args:
        scenario: The shard's sub-scenario
            (:meth:`~repro.scenarios.spec.ScenarioSpec.shard_subset`).
        streams: Root fleet streams rebuilt from the fleet seed — job
            streams are name-keyed, so each shard derives exactly the
            streams of its own jobs and touches no other.
        conn: Pipe to the parent draw service.
        job_ranks: Global fleet index of each sub-scenario job, in order.

    Everything else — pool, controllers, wake-set loop, fast-forward —
    is the stock :class:`~repro.scenarios.fleet.FleetRun`; only the two
    revocation-draw entry points and the revoke bookkeeping differ.
    """

    def __init__(self, scenario: ScenarioSpec, streams: RandomStreams, *,
                 conn: Any, job_ranks: Sequence[int],
                 catalog: Optional[ModelCatalog] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 fast_forward: Optional[bool] = None,
                 scheduler: Optional[str] = None,
                 trace_level: Optional[str] = None,
                 telemetry: Optional[Any] = None,
                 chaos_monitor: Optional[chaos.ChaosMonitor] = None):
        super().__init__(scenario, streams, catalog=catalog,
                         price_catalog=price_catalog,
                         fast_forward=fast_forward, scheduler=scheduler,
                         trace_level=trace_level, telemetry=telemetry,
                         telemetry_ranks=job_ranks)
        if self.advisor is not None:
            raise ConfigurationError(
                "adaptive placement couples every cell; it cannot run on a "
                "shard (partition_scenario never produces one)")
        self._conn = conn
        #: Counts draw requests and dies (``os._exit``) when a
        #: ``shard_crash`` fault's trigger comes up; ``None`` outside
        #: chaos runs.
        self._chaos = chaos_monitor
        self._rank_of = {job.session: rank
                         for job, rank in zip(self.jobs, job_ranks)}
        #: ``(revoke time, global draw rank, local hour)`` per fired
        #: revocation; the parent merges these across shards to rebuild
        #: ``revocation_hours_local`` in single-process order.
        self.revocation_records: List[Tuple[float, int, float]] = []
        self._progress_hook = self._report_progress

    # -- draw service client -------------------------------------------
    def _report_progress(self) -> None:
        bound = self.simulator.next_event_time()
        self._conn.send(("progress",
                         math.inf if bound is None else bound))

    def _request_draws(self, rank: int, calls: List[Tuple]) -> Tuple[List, int]:
        """Block until the parent grants this shard's draws, in order."""
        if self._chaos is not None:
            fault = self._chaos.tick()
            if fault is not None:
                chaos.chaos_exit(fault, site="shard_draw",
                                 draw_request=self._chaos.count,
                                 time=self.simulator.now, rank=rank)
        self._conn.send(("draw", self.simulator.now, rank, calls))
        reply = self._conn.recv()
        if reply[0] != "grant":
            raise SimulationError(
                f"draw service protocol violation: expected grant, got "
                f"{reply[0]!r}")
        outcomes, base_rank = reply[1]
        return outcomes, base_rank

    # -- revocation draws, routed --------------------------------------
    def _schedule_launch_revocations(self, session: TrainingSession,
                                     workers: List[WorkerState]) -> None:
        # Same consecutive-(gpu, region) grouping as the base class, but
        # all of the job's batch calls travel in one request: the parent
        # executes them back-to-back, consuming the revocation stream
        # exactly as the single-process interleaved calls would.
        calls: List[Tuple] = []
        index = 0
        count = len(workers)
        while index < count:
            spec = workers[index].spec
            gpu, region_name = spec.gpu_name, spec.region_name
            end = index + 1
            while (end < count and workers[end].spec.gpu_name == gpu
                   and workers[end].spec.region_name == region_name):
                end += 1
            region = get_region(region_name)
            launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
            calls.append(("batch", gpu, region_name, end - index, launch_hour))
            index = end
        outcomes, base_rank = self._request_draws(self._rank_of[session], calls)
        for offset, (worker, outcome) in enumerate(zip(workers, outcomes)):
            self._note_revocation_draw(session, worker, outcome)
            self._schedule_shard_outcome(session, worker, outcome,
                                         base_rank + offset)

    def _schedule_revocation(self, session: TrainingSession,
                             worker: WorkerState) -> None:
        region = get_region(worker.spec.region_name)
        launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
        outcomes, base_rank = self._request_draws(
            self._rank_of[session],
            [("single", worker.spec.gpu_name, worker.spec.region_name, 1,
              launch_hour)])
        self._note_revocation_draw(session, worker, outcomes[0])
        self._schedule_shard_outcome(session, worker, outcomes[0], base_rank)

    def _schedule_shard_outcome(self, session: TrainingSession,
                                worker: WorkerState, outcome: Any,
                                rank: int) -> None:
        """The base ``_schedule_revocation_outcome`` plus draw-rank records."""
        if not outcome.revoked:
            return
        gpu, region_name = worker.spec.gpu_name, worker.spec.region_name

        def revoke(sim) -> None:
            if session.finished or not worker.active:
                return
            hour = float(outcome.revocation_hour_local)
            self.revocation_records.append((sim.now, rank, hour))
            self.revocation_hours_local.append(hour)
            self.pool.revoke(gpu, region_name)
            session.handle_revocation(worker.worker_id)
            self._check_stalled(session)

        self.simulator.schedule(outcome.lifetime_seconds, revoke,
                                label=f"fleet:revoke:{worker.worker_id}")


def _shard_worker(conn, scenario: ScenarioSpec, group: ShardGroup,
                  epoch: float, seed: int, catalog, price_catalog,
                  fast_forward, scheduler, trace_level, telemetry=None,
                  incarnation: int = 0) -> None:
    """Process entry point: run one shard and report back over ``conn``.

    ``incarnation`` is this process's spawn generation (0 on the first
    launch, bumped by the supervisor on every restart); chaos faults match
    it so an injected crash does not re-fire after restart-replay.
    """
    try:
        plan = chaos.active_plan()
        monitor = None
        if plan is not None:
            monitor = plan.monitor("shard_crash", shard=group.index,
                                   incarnation=incarnation)
        spool = None
        if telemetry is not None:
            # Each shard opens its own spool over the shared directory;
            # chunk files are keyed by global job rank, so the combined
            # spool is identical to the single-process one.  A restarted
            # shard deterministically rewrites its own files, so a chunk
            # half-written at crash time is overwritten on replay.
            from repro.telemetry.writer import TelemetrySpool
            spool = TelemetrySpool(telemetry)
        sub = scenario.shard_subset(group.job_indices, group.cells,
                                    epoch_hour_utc=epoch)
        run = ShardFleetRun(sub, RandomStreams(seed=seed), conn=conn,
                            job_ranks=group.job_indices, catalog=catalog,
                            price_catalog=price_catalog,
                            fast_forward=fast_forward, scheduler=scheduler,
                            trace_level=trace_level, telemetry=spool,
                            chaos_monitor=monitor)
        payload = run.run()
        if spool is not None:
            spool.close()
        conn.send(("done", (payload, run.revocation_records,
                            run.events_processed)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent (conductor) side.
# ---------------------------------------------------------------------------
class _ShardHandle:
    """Parent-side bookkeeping for one shard process (all incarnations)."""

    __slots__ = ("group", "process", "conn", "bound", "pending", "done",
                 "result", "incarnation", "grants", "replay_index",
                 "last_seen")

    def __init__(self, group: ShardGroup):
        self.group = group
        self.process = None
        self.conn = None
        #: Progress lower bound: no future draw request from this shard
        #: can carry a time below it.  Monotone within one incarnation;
        #: reset to zero on restart (the respawn re-executes from t=0).
        self.bound = 0.0
        self.pending: Optional[ShardMessage] = None
        self.done = False
        self.result = None
        #: Spawn generation; bumped on every supervised restart.
        self.incarnation = 0
        #: Grant log: ``(calls, outcomes, base_rank)`` per granted draw
        #: request, in grant order — the shard's only nondeterministic
        #: input, hence the entire restart-replay state.
        self.grants: List[Tuple[Any, List[Any], int]] = []
        #: Next grant-log entry a restarted incarnation replays.
        self.replay_index = 0
        #: ``time.monotonic()`` of the last message received (or grant
        #: sent); the heartbeat supervisor's clock.
        self.last_seen = 0.0


class ShardedFleetRun:
    """Partition, conduct, and merge one sharded fleet run.

    Mirrors :class:`~repro.scenarios.fleet.FleetRun`'s construction surface
    plus ``shards``; :meth:`run` returns the fleet payload and leaves
    ``events_processed`` (summed across shards) for the benchmark harness.
    Fleets whose partition yields a single group — ``shards=1``, one
    connected component, or adaptive placement — run the stock
    single-process :class:`~repro.scenarios.fleet.FleetRun` verbatim, which
    is the ``shards=1`` byte-identity contract.

    Supervision knobs (see the module docstring's restart-replay design):
    ``max_restarts`` bounds supervised respawns per fleet (default
    ``REPRO_SHARD_RESTARTS`` or 3; 0 disables restarts) and
    ``heartbeat_seconds`` is the silence deadline after which a shard
    that is neither done nor awaiting a grant is declared dead (default
    ``REPRO_SHARD_HEARTBEAT_SECONDS`` or 60).  :attr:`restarts` records
    every supervised restart for observability.
    """

    def __init__(self, scenario: ScenarioSpec, streams: RandomStreams,
                 catalog: Optional[ModelCatalog] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 fast_forward: Optional[bool] = None,
                 scheduler: Optional[str] = None,
                 trace_level: Optional[str] = None,
                 shards: Optional[int] = None,
                 telemetry: Optional[Any] = None,
                 max_restarts: Optional[int] = None,
                 heartbeat_seconds: Optional[float] = None):
        self.scenario = scenario
        self.streams = streams
        self.catalog = catalog
        self.price_catalog = price_catalog
        self.fast_forward = fast_forward
        self.scheduler = scheduler
        self.trace_level = trace_level
        #: Optional :class:`repro.telemetry.writer.TelemetryConfig` — a
        #: picklable spool description each shard (or the single-process
        #: fallback) opens for itself.
        self.telemetry = telemetry
        self.shards = _shards_default() if shards is None else int(shards)
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        self.max_restarts = (_max_restarts_default() if max_restarts is None
                             else int(max_restarts))
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        self.heartbeat_seconds = (_heartbeat_default()
                                  if heartbeat_seconds is None
                                  else float(heartbeat_seconds))
        if self.heartbeat_seconds <= 0:
            raise ConfigurationError(
                f"heartbeat_seconds must be > 0, got "
                f"{self.heartbeat_seconds}")
        self.groups = partition_scenario(scenario, self.shards)
        self.events_processed = 0
        #: One record per supervised restart: shard index, incarnation,
        #: reason, exit code, and how many grants were replayed.
        self.restarts: List[Dict[str, Any]] = []
        self._restarts_used = 0
        self._context = None
        self._epoch: Optional[float] = None
        self._drop_monitors: Dict[int, chaos.ChaosMonitor] = {}

    def run(self) -> Dict[str, Any]:
        """Run the fleet and return the (merged) JSON payload."""
        if len(self.groups) == 1:
            spool = None
            if self.telemetry is not None:
                from repro.telemetry.writer import TelemetrySpool
                spool = TelemetrySpool(self.telemetry)
            run = FleetRun(self.scenario, self.streams, catalog=self.catalog,
                           price_catalog=self.price_catalog,
                           fast_forward=self.fast_forward,
                           scheduler=self.scheduler,
                           trace_level=self.trace_level,
                           telemetry=spool)
            payload = run.run()
            if spool is not None:
                spool.close()
            self.events_processed = run.events_processed
            return payload
        # Resolve the fleet epoch exactly like FleetRun.__init__ does, so
        # the one draw the single-process run would make happens here,
        # once, and every shard inherits its value explicitly.
        epoch = (self.scenario.epoch_hour_utc
                 if self.scenario.epoch_hour_utc is not None
                 else float(self.streams.get("epoch").uniform(0, 24)))
        model = RevocationModel(rng=self.streams.get("revocation"))
        results = self._conduct(epoch, model)
        return self._merge(results)

    # -- process management --------------------------------------------
    def _spawn(self, handle: _ShardHandle, epoch: float) -> None:
        """(Re)launch one shard process over a fresh pipe."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker,
            args=(child_conn, self.scenario, handle.group, epoch,
                  self.streams.seed, self.catalog, self.price_catalog,
                  self.fast_forward, self.scheduler, self.trace_level,
                  self.telemetry, handle.incarnation),
            name=(f"repro-fleet-shard-{handle.group.index}"
                  f".{handle.incarnation}"))
        handle.process = process
        handle.conn = parent_conn
        process.start()
        child_conn.close()
        handle.last_seen = time.monotonic()

    def _reap(self, handle: _ShardHandle) -> Optional[int]:
        """Close, terminate, and join one shard; returns its exit code."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        process = handle.process
        if process is None:
            return None
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
        process.join()
        return process.exitcode

    def _restart(self, handle: _ShardHandle, reason: str) -> None:
        """Reap a dead shard and respawn it for restart-replay.

        Raises :class:`~repro.errors.SimulationError` once the fleet's
        restart budget is exhausted; the driver's ``finally`` then reaps
        every remaining child.
        """
        exitcode = self._reap(handle)
        if self._restarts_used >= self.max_restarts:
            raise SimulationError(
                f"fleet shard {handle.group.index} died ({reason}, exit "
                f"code {exitcode}) and the restart budget "
                f"({self.max_restarts}) is exhausted")
        self._restarts_used += 1
        handle.incarnation += 1
        handle.pending = None
        handle.bound = 0.0
        handle.replay_index = 0
        record = {"shard": handle.group.index,
                  "incarnation": handle.incarnation, "reason": reason,
                  "exitcode": exitcode, "grants_logged": len(handle.grants)}
        self.restarts.append(record)
        chaos.log_event("shard_restart", **record)
        self._spawn(handle, self._epoch)

    def _conduct(self, epoch: float, model: RevocationModel) -> List[Tuple]:
        self._context = multiprocessing.get_context()
        self._epoch = epoch
        plan = chaos.active_plan()
        handles = [_ShardHandle(group) for group in self.groups]
        if plan is not None:
            for handle in handles:
                monitor = plan.monitor("drop_grant",
                                       shard=handle.group.index)
                if monitor:
                    self._drop_monitors[handle.group.index] = monitor
        try:
            for handle in handles:
                self._spawn(handle, epoch)
            return self._service_loop(handles, model)
        finally:
            for handle in handles:
                self._reap(handle)

    def _service_loop(self, handles: List[_ShardHandle],
                      model: RevocationModel) -> List[Tuple]:
        """Drain shard messages, supervise children, grant draws in order."""
        from multiprocessing.connection import wait as connection_wait

        queue = DeterministicMessageQueue()
        sequences = [0] * len(handles)
        draw_count = 0
        poll_seconds = min(1.0, self.heartbeat_seconds / 4.0)
        while any(not handle.done for handle in handles):
            # conn -> handle is rebuilt per iteration: restarts swap pipes.
            by_conn = {handle.conn: handle for handle in handles
                       if not handle.done}
            ready = connection_wait(list(by_conn), timeout=poll_seconds)
            for conn in ready:
                handle = by_conn[conn]
                if handle.conn is not conn:  # restarted by an earlier peer
                    continue  # pragma: no cover - needs a same-tick race
                try:
                    while True:
                        message = conn.recv()
                        handle.last_seen = time.monotonic()
                        self._handle_message(handle, message, queue,
                                             sequences)
                        if handle.done or not conn.poll():
                            break
                except (EOFError, OSError):
                    if not handle.done:
                        self._restart(handle, "pipe closed")
            if not ready:
                self._check_heartbeats(handles)
            draw_count = self._grant_ready(handles, queue, model, draw_count)
        return [handle.result for handle in handles]

    def _check_heartbeats(self, handles: List[_ShardHandle]) -> None:
        """Restart shards silent past the deadline (and not awaiting us).

        A shard with a pending request is blocked on *our* grant, so its
        silence is expected; anything else should be computing and
        reporting progress every ``_progress_interval`` events.  A dead
        process is restarted immediately; a live-but-wedged one (e.g. a
        chaos-dropped grant reply left it blocked on a pipe nobody will
        write) is terminated first by the reap inside the restart.
        """
        now = time.monotonic()
        for handle in handles:
            if handle.done or handle.pending is not None:
                continue
            alive = handle.process is not None and handle.process.is_alive()
            if not alive or now - handle.last_seen > self.heartbeat_seconds:
                self._restart(
                    handle, "process died" if not alive
                    else f"heartbeat deadline "
                         f"({self.heartbeat_seconds:g}s) missed")

    def _handle_message(self, handle: _ShardHandle, message: Tuple,
                        queue: DeterministicMessageQueue,
                        sequences: List[int]) -> None:
        kind = message[0]
        if kind == "progress":
            handle.bound = max(handle.bound, message[1])
        elif kind == "draw":
            _, event_time, rank, calls = message
            if handle.replay_index < len(handle.grants):
                self._replay_grant(handle, calls)
                return
            index = handle.group.index
            request = ShardMessage(time=event_time, rank=rank, shard=index,
                                   seq=sequences[index],
                                   payload=(handle, calls,
                                            handle.incarnation))
            sequences[index] += 1
            handle.pending = request
            handle.bound = max(handle.bound, event_time)
            queue.push(request)
        elif kind == "done":
            handle.done = True
            handle.bound = math.inf
            handle.result = message[1]
        elif kind == "error":
            raise SimulationError(
                f"fleet shard {handle.group.index} failed:\n{message[1]}")
        else:  # pragma: no cover - future-proofing
            raise SimulationError(f"unknown shard message kind {kind!r}")

    def _replay_grant(self, handle: _ShardHandle, calls: Any) -> None:
        """Answer a restarted shard's draw request from its grant log.

        The revocation model is *not* consumed — these draws were already
        executed for a previous incarnation; the log re-delivers their
        outcomes.  The replayed request must match the logged one call
        for call, or the shard diverged from its own history and exact
        recovery is impossible.
        """
        logged_calls, outcomes, base_rank = handle.grants[handle.replay_index]
        if calls != logged_calls:
            raise SimulationError(
                f"fleet shard {handle.group.index} diverged during "
                f"restart-replay: grant #{handle.replay_index} was logged "
                f"for {logged_calls!r} but the respawn requested {calls!r}")
        handle.replay_index += 1
        try:
            handle.conn.send(("grant", (outcomes, base_rank)))
        except OSError:  # pragma: no cover - died again mid-replay
            pass  # the supervisor will see the EOF and restart again

    def _grant_ready(self, handles: List[_ShardHandle],
                     queue: DeterministicMessageQueue,
                     model: RevocationModel, draw_count: int) -> int:
        """Grant every pending draw whose global order is already decided.

        The queue top is the earliest ``(time, rank)`` pending request; it
        is safe to grant once every *other* shard either is done, is itself
        blocked on a later request, or has a progress bound strictly past
        the request's time (its future draws all happen later).  Granting
        may unblock a shard whose next request is again the minimum, so
        this loops until the top is no longer provably next.
        """
        while queue:
            request = queue.peek()
            requester, calls, incarnation = request.payload
            if incarnation != requester.incarnation:
                # A request from a dead incarnation; the respawn re-issues
                # it (and is answered from the grant log or granted live).
                queue.pop()
                continue
            safe = True
            for other in handles:
                if other is requester or other.done:
                    continue
                if other.pending is not None:
                    # The queue top is the global minimum, so any other
                    # pending request is provably later.
                    continue
                if other.bound > request.time:
                    continue
                safe = False
                break
            if not safe:
                return draw_count
            queue.pop()
            requester.pending = None
            outcomes: List[Any] = []
            for kind, gpu, region, count, launch_hour in calls:
                if kind == "batch":
                    outcomes.extend(model.sample_batch(
                        gpu, region, count, launch_hour_local=launch_hour,
                        stressed=True))
                else:
                    outcomes.append(model.sample(
                        gpu, region, launch_hour_local=launch_hour,
                        stressed=True))
            # Log before sending: a grant is part of the shard's history
            # the moment the model is consumed, delivered or not.
            base_rank = draw_count
            requester.grants.append((calls, outcomes, base_rank))
            requester.replay_index = len(requester.grants)
            draw_count += len(outcomes)
            monitor = self._drop_monitors.get(requester.group.index)
            fault = monitor.tick() if monitor is not None else None
            if fault is not None:
                # Injected reply drop: the shard stays blocked on recv
                # until the heartbeat supervisor restarts it, and the
                # replay re-delivers this very grant from the log.
                chaos.log_event("injected_drop_grant",
                                shard=requester.group.index,
                                grant=len(requester.grants),
                                fault=fault.to_entry())
                continue
            try:
                requester.conn.send(("grant", (outcomes, base_rank)))
            except OSError:
                # The shard died between request and grant; the EOF path
                # restarts it and the log replays this grant.
                continue
            requester.last_seen = time.monotonic()
        return draw_count

    # -- payload merge -------------------------------------------------
    def _merge(self, results: List[Tuple]) -> Dict[str, Any]:
        """Reassemble the single-process payload from per-shard results."""
        payloads = [result[0] for result in results]
        records = [record for result in results for record in result[1]]
        self.events_processed = sum(result[2] for result in results)

        jobs: List[Optional[Dict[str, Any]]] = [None] * len(self.scenario.jobs)
        for group, payload in zip(self.groups, payloads):
            for rank, entry in zip(group.job_indices, payload["jobs"]):
                jobs[rank] = entry
        # total_cost_usd sums per-job costs in global job order, exactly
        # like FleetRun._payload — float addition order is part of the
        # bit-identity contract.
        total_cost = 0.0
        for entry in jobs:
            total_cost += entry["cost_usd"]
        pool_stats = TransientPool.merge_stats(
            [payload["pool"] for payload in payloads])
        # (time, draw rank) reproduces the single-process append order:
        # revoke events are scheduled right after their draws, so their
        # heap sequence numbers — the same-time tie-break — are ordered
        # exactly like the global draw ranks.
        records.sort(key=lambda record: (record[0], record[1]))
        merged: Dict[str, Any] = {
            "scenario": self.scenario.name,
            "epoch_hour_utc": payloads[0]["epoch_hour_utc"],
            "jobs_total": len(jobs),
            "jobs_completed": sum(1 for job in jobs if job["completed"]),
            "jobs_stalled": sum(1 for job in jobs if job["stalled"]),
            "makespan_seconds": max(payload["makespan_seconds"]
                                    for payload in payloads),
            "total_cost_usd": total_cost,
            "revocations": pool_stats["revocations"],
            "replacements_admitted": sum(job["replacements_admitted"]
                                         for job in jobs),
            "replacements_denied": pool_stats["replacements_denied"],
            "replacement_denial_rate": pool_stats["replacement_denial_rate"],
            "ps_mitigations": sum(job["ps_mitigations"] for job in jobs),
            "revocation_hours_local": [record[2] for record in records],
            "pool": pool_stats,
            "jobs": jobs,
        }
        if (self.scenario.warm_capacity > 0
                and self.scenario.warm_seconds > 0):
            merged["replacements_warm"] = pool_stats["replacements_warm"]
            merged["warm_reuse_rate"] = pool_stats["warm_reuse_rate"]
        return merged


def run_fleet_sharded(scenario: ScenarioSpec, streams: RandomStreams,
                      catalog: Optional[ModelCatalog] = None,
                      price_catalog: Optional[PriceCatalog] = None,
                      fast_forward: Optional[bool] = None,
                      scheduler: Optional[str] = None,
                      trace_level: Optional[str] = None,
                      shards: Optional[int] = None,
                      telemetry: Optional[Any] = None,
                      max_restarts: Optional[int] = None,
                      heartbeat_seconds: Optional[float] = None
                      ) -> Dict[str, Any]:
    """Simulate one fleet across ``shards`` supervised worker processes.

    Drop-in for :func:`repro.scenarios.fleet.run_fleet` with extra knobs:
    ``shards`` (``None`` reads ``REPRO_FLEET_SHARDS``, default 1),
    ``telemetry`` (an optional
    :class:`repro.telemetry.writer.TelemetryConfig` every shard spools
    into), and the supervision bounds ``max_restarts`` /
    ``heartbeat_seconds`` (``None`` reads ``REPRO_SHARD_RESTARTS`` /
    ``REPRO_SHARD_HEARTBEAT_SECONDS``).  Payloads are bit-identical to
    the single-process run at every shard count — including runs where
    shards crash and are restart-replayed within the budget; ``shards=1``
    *is* the single-process run.
    """
    return ShardedFleetRun(scenario, streams, catalog=catalog,
                           price_catalog=price_catalog,
                           fast_forward=fast_forward, scheduler=scheduler,
                           trace_level=trace_level, shards=shards,
                           telemetry=telemetry, max_restarts=max_restarts,
                           heartbeat_seconds=heartbeat_seconds).run()
