"""Command-line interface for fleet scenarios (mirrors ``repro.sweeps``).

Usage::

    python -m repro.scenarios list
    python -m repro.scenarios run capacity_crunch --workers 2 --cache-dir .fleet-cache
    python -m repro.scenarios resume capacity_crunch --cache-dir .fleet-cache

``run`` fans a scenario's replicates out through the sweep engine (serial
and parallel runs are bit-identical); with ``--cache-dir`` completed fleet
cells persist, so ``resume`` (or an interrupted ``run``) picks up where it
stopped.  ``--workers`` defaults to the ``REPRO_SWEEP_WORKERS`` environment
variable, matching the benchmark harness.

``--warm-seconds`` and ``--placement`` derive a variant of the named
scenario (warm pool enabled / placement mode overridden) before it runs;
because the derived spec has different parameters it also keys different
cache entries, so overridden and stock runs never collide in a shared
``--cache-dir``.

``--shards`` runs each fleet across N worker processes
(:mod:`repro.scenarios.shard`); payloads are bit-identical to ``--shards
1``, and like the other runtime knobs the setting is fingerprinted into
the sweep cache key, so differently-sharded runs never share entries.

``--chaos`` activates the deterministic fault-injection harness
(:mod:`repro.chaos`) for the run — e.g. ``--chaos
'shard_crash:shard=0,at=2'`` kills shard 0 at its second draw request
and the supervisor must restart-replay it to the bit-identical payload.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional, Sequence

from repro import chaos
from repro.cli import (
    add_run_resume_arguments,
    default_workers,
    resume_requires_cache,
    run_cli,
    write_json_out,
)
from repro.scenarios.catalog import get_scenario, list_scenarios
from repro.scenarios.fleet import (
    FLEET_SHARDS_ENV,
    FLEET_TRACE_LEVEL_ENV,
    apply_fleet_axes,
    run_scenario,
)
from repro.scenarios.report import fleet_summary_table
from repro.scenarios.spec import PLACEMENTS


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="List, run, and resume fleet scenarios.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list named scenarios")

    for command, help_text in (("run", "run a scenario"),
                               ("resume", "resume a cached scenario")):
        sub = commands.add_parser(command, help=help_text)
        add_run_resume_arguments(
            sub, name_help="named scenario",
            workers_default=default_workers(),
            workers_help="worker processes, or 'auto' (default: "
                         "REPRO_SWEEP_WORKERS or 1)",
            cache_help="directory for the per-fleet JSON result cache",
            json_help="also write fleet payloads to a JSON file")
        sub.add_argument("--replicates", type=int, default=2,
                         help="independent fleet replicates (default: 2)")
        sub.add_argument("--trace-level", choices=("full", "summary"),
                         default=None,
                         help="per-session trace detail: 'summary' keeps "
                              "aggregates only, so very large fleets fit "
                              "in memory (payloads are identical; default: "
                              "REPRO_FLEET_TRACE_LEVEL or 'full')")
        sub.add_argument("--warm-seconds", type=float, default=None,
                         metavar="SECONDS",
                         help="enable the warm pool: reclaimed capacity "
                              "returns as warm servers that linger this "
                              "long and are re-acquired via the Fig. 10 "
                              "warm path (0 forces cold-only; default: "
                              "the scenario's own setting)")
        sub.add_argument("--shards", type=int, default=None, metavar="N",
                         help="run each fleet across N worker processes "
                              "(repro.scenarios.shard); payloads are "
                              "bit-identical to --shards 1 at any count "
                              "(default: REPRO_FLEET_SHARDS or 1)")
        sub.add_argument("--chaos", default=None, metavar="SPEC",
                         help="inject deterministic faults (repro.chaos): "
                              "';'-separated entries like "
                              "'shard_crash:shard=0,at=2', plus optional "
                              "'seed=N'; recovery must reproduce the "
                              "fault-free payloads bit-identically "
                              "(default: REPRO_CHAOS or none)")
        sub.add_argument("--telemetry-out", default=None, metavar="PATH",
                         help="also export replicate 0's columnar telemetry "
                              "(step chunks + revocation draws) as a .npz "
                              "artifact (repro.telemetry); honours "
                              "--trace-level/--shards and is bit-identical "
                              "at any shard count")
        sub.add_argument("--placement", choices=PLACEMENTS, default=None,
                         help="placement mode: 'static' pins workers to "
                              "their declared (gpu, region) cells, "
                              "'adaptive' lets the pool-aware launch "
                              "advisor pick regions from live availability "
                              "and the revocation calibration (default: "
                              "the scenario's own setting)")
    return parser


def _apply_overrides(scenario, args):
    """Derive the scenario variant the flags ask for (if any).

    Validation (negative durations, unknown placements) happens inside
    :func:`repro.scenarios.fleet.apply_fleet_axes` / the spec itself and
    surfaces as the CLI's usual ``error:`` line.
    """
    overrides = {}
    if getattr(args, "warm_seconds", None) is not None:
        overrides["warm_seconds"] = args.warm_seconds
    if getattr(args, "placement", None) is not None:
        overrides["placement"] = args.placement
    if not overrides:
        return scenario
    return apply_fleet_axes(scenario, overrides)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    def body() -> int:
        if args.command == "list":
            for scenario in list_scenarios():
                print(f"{scenario.name:24s} {scenario.describe():44s} "
                      f"{scenario.description}")
            return 0

        if resume_requires_cache(args):
            return 2

        # Environment plumbing so pooled sweep workers (which inherit the
        # environment) and the cache-key fingerprint agree; scoped to this
        # invocation so repeated main() calls in one process do not leak
        # the settings into each other.
        knobs = {}
        if getattr(args, "trace_level", None):
            knobs[FLEET_TRACE_LEVEL_ENV] = args.trace_level
        if getattr(args, "shards", None) is not None:
            knobs[FLEET_SHARDS_ENV] = str(args.shards)
        if getattr(args, "chaos", None):
            # Validate the spec up front so a typo fails as a clean
            # ``error:`` line, not deep inside a shard worker.
            chaos.FaultPlan.from_spec(args.chaos)
            knobs[chaos.CHAOS_ENV] = args.chaos
        previous = {env: os.environ.get(env) for env in knobs}
        os.environ.update(knobs)
        try:
            scenario = _apply_overrides(get_scenario(args.name), args)
            result = run_scenario(scenario, replicates=args.replicates,
                                  seed=args.seed, workers=args.workers,
                                  cache_dir=args.cache_dir)
            if getattr(args, "telemetry_out", None):
                from repro.telemetry.export import export_fleet_telemetry
                export_fleet_telemetry(
                    scenario, args.telemetry_out, seed=args.seed,
                    shards=args.shards, trace_level=args.trace_level)
                print(f"wrote telemetry artifact {args.telemetry_out}")
        finally:
            for env, value in previous.items():
                if value is None:
                    os.environ.pop(env, None)
                else:
                    os.environ[env] = value
        print(result.summary())
        print(fleet_summary_table(result))
        if args.json_out:
            write_json_out(args.json_out,
                           {"scenario": scenario.name, "seed": args.seed,
                            "fleets": result.payloads()},
                           len(result), "fleet payloads")
        return 0

    return run_cli(body)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
