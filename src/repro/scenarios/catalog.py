"""Named fleet scenarios.

Six ready-to-run fleets covering the regimes the ROADMAP asks for:

* ``single_region_k80`` — the smallest smoke fleet: three K80 jobs in
  us-west1, the study's most stable K80 region (Table V), with pool
  headroom.  Fast enough for CI.
* ``multi_region_hetero`` — four jobs across four regions and all three
  GPU types, including one heterogeneous cluster, with staggered starts.
* ``revocation_storm`` — K80 jobs in europe-west1, the region where more
  than half the K80 servers die within two hours (Fig. 8), with the fleet
  epoch pinned so jobs run into the late-morning revocation peak (Fig. 9).
  Replacements queue on the reclaimed capacity.
* ``capacity_crunch`` — the pool exactly covers the initial fleet and
  revoked capacity never returns within the run, so every replacement
  request is denied: jobs shrink, slow down, and can stall — the regime
  the paper's single-job experiments never reach.
* ``warm_reuse`` — the revocation storm with a warm pool: reclaimed
  capacity returns as still-running servers that queued replacements
  re-acquire through the Fig. 10 warm path instead of a cold boot.
* ``adaptive_placement`` — the capacity crunch plus spare K80 capacity in
  stable us-west1 and pool-aware placement: the launch advisor spreads
  the initial fleet by live availability x revocation score, and denied
  replacements fall back to the spare region instead of dying on the
  exhausted cell.  Running the same spec with ``placement="static"``
  reproduces the crunch economics (the spare region is never used), which
  is what the denial-rate comparison in ``tests/test_scenarios.py``
  asserts.

Each scenario is also registered as a named sweep (``fleet_<name>``), so
``python -m repro.sweeps run fleet_capacity_crunch`` works alongside the
dedicated ``python -m repro.scenarios`` CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.scenarios.fleet import build_fleet_spec, fleet_cell
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.sweeps import SweepDefinition, SweepResult, register_sweep
from repro.workloads.catalog import default_catalog

#: Default replicates per scenario sweep (>= 2 so parallel runs exercise
#: more than one worker process).
DEFAULT_REPLICATES = 2


def single_region_k80() -> ScenarioSpec:
    """Three small K80 jobs sharing one stable region's pool."""
    jobs = tuple(
        JobSpec(name=f"job-{index}", model_name=model, total_steps=1500,
                workers=(("k80", "us-west1"),) * 2,
                checkpoint_interval_steps=1000)
        for index, model in enumerate(("resnet_15", "resnet_32", "resnet_15")))
    # Duplicate (model, shape) jobs are fine: each job draws from its own
    # named stream family, so they are independent replicas, not copies.
    return ScenarioSpec(
        name="single_region_k80",
        description="3 small K80 jobs, one stable region, pool headroom",
        jobs=jobs,
        pool_capacity={("k80", "us-west1"): 8},
        reclaim_seconds=1800.0,
        epoch_hour_utc=14.0)


def multi_region_hetero() -> ScenarioSpec:
    """Four jobs across regions and GPU types, staggered arrivals."""
    jobs = (
        JobSpec(name="east-k80", model_name="resnet_32", total_steps=2500,
                workers=(("k80", "us-east1"),) * 2),
        JobSpec(name="central-p100", model_name="shake_shake_small",
                total_steps=3000, workers=(("p100", "us-central1"),) * 2,
                start_delay_seconds=300.0),
        JobSpec(name="west-v100", model_name="shake_shake_big",
                total_steps=2000, workers=(("v100", "us-west1"),) * 2,
                start_delay_seconds=600.0, auto_mitigate_bottleneck=True),
        JobSpec(name="europe-mixed", model_name="resnet_15", total_steps=2500,
                workers=(("k80", "europe-west1"), ("p100", "europe-west1")),
                queue_replacements=True),
    )
    return ScenarioSpec(
        name="multi_region_hetero",
        description="4 jobs over 4 regions and 3 GPU types, staggered starts",
        jobs=jobs,
        pool_capacity={
            ("k80", "us-east1"): 3,
            ("p100", "us-central1"): 3,
            ("v100", "us-west1"): 3,
            ("k80", "europe-west1"): 2,
            ("p100", "europe-west1"): 2,
        },
        reclaim_seconds=1800.0)


def revocation_storm() -> ScenarioSpec:
    """K80 fleets in the fastest-dying region, launched into the peak hour.

    europe-west1 is UTC+1 and K80 revocations peak around 10 AM local
    (Fig. 9), so an epoch of 8.5 h UTC puts the whole fleet's first hours
    squarely inside the storm window.
    """
    jobs = tuple(
        JobSpec(name=f"storm-{index}", model_name="resnet_15",
                total_steps=60_000,
                workers=(("k80", "europe-west1"),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(3))
    return ScenarioSpec(
        name="revocation_storm",
        description="3x3 K80 workers in europe-west1 at the 10AM revocation peak",
        jobs=jobs,
        pool_capacity={("k80", "europe-west1"): 12},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5)


def capacity_crunch() -> ScenarioSpec:
    """The pool exactly covers the fleet and reclaimed capacity never returns.

    Every revocation permanently shrinks the available capacity within the
    run, so every replacement request is denied — the fleet degrades and
    reports a nonzero replacement-denial rate.
    """
    jobs = tuple(
        JobSpec(name=f"crunch-{index}", model_name="resnet_15",
                total_steps=60_000,
                workers=(("k80", "europe-west1"),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=False)
        for index in range(3))
    return ScenarioSpec(
        name="capacity_crunch",
        description="pool == initial demand, revoked capacity never returns",
        jobs=jobs,
        pool_capacity={("k80", "europe-west1"): 9},
        reclaim_seconds=86_400.0,
        epoch_hour_utc=8.5)


def warm_reuse() -> ScenarioSpec:
    """The revocation storm with a warm pool (Fig. 10 warm path at scale).

    Reclaimed capacity returns after 20 minutes as still-running warm
    servers that linger for an hour, so the queued replacement requests of
    the storm re-acquire them warm — paying the framework restart, session
    join, and graph setup of a warm start plus a short re-acquisition
    handshake instead of a full cold boot.
    """
    jobs = tuple(
        JobSpec(name=f"warm-{index}", model_name="resnet_15",
                total_steps=60_000,
                workers=(("k80", "europe-west1"),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=True)
        for index in range(3))
    return ScenarioSpec(
        name="warm_reuse",
        description="the revocation storm with a warm pool (Fig. 10 warm path)",
        jobs=jobs,
        pool_capacity={("k80", "europe-west1"): 12},
        reclaim_seconds=1200.0,
        epoch_hour_utc=8.5,
        warm_seconds=3600.0,
        warm_capacity=6)


def adaptive_placement() -> ScenarioSpec:
    """The capacity crunch with a spare stable region and adaptive placement.

    The europe-west1 pool exactly covers the declared fleet and reclaimed
    capacity never returns within the run — the crunch regime — but the
    pool also offers spare K80 capacity in us-west1, the study's most
    stable K80 region.  With ``placement="adaptive"`` the pool-aware
    launch advisor both spreads the initial fleet toward the safer region
    and redirects denied replacements to whatever cell still has capacity,
    so the fleet's replacement-denial rate drops below the static crunch
    (asserted in ``tests/test_scenarios.py`` and visible in the frontier
    table of a ``placements=("static", "adaptive")`` sweep).
    """
    jobs = tuple(
        JobSpec(name=f"adaptive-{index}", model_name="resnet_15",
                total_steps=60_000,
                workers=(("k80", "europe-west1"),) * 3,
                checkpoint_interval_steps=4000,
                queue_replacements=False)
        for index in range(3))
    return ScenarioSpec(
        name="adaptive_placement",
        description="capacity crunch + spare stable region, pool-aware placement",
        jobs=jobs,
        pool_capacity={("k80", "europe-west1"): 9,
                       ("k80", "us-west1"): 6},
        reclaim_seconds=86_400.0,
        epoch_hour_utc=8.5,
        placement="adaptive")


#: All named scenarios, in presentation order.
SCENARIO_BUILDERS: Dict[str, Callable[[], ScenarioSpec]] = {
    "single_region_k80": single_region_k80,
    "multi_region_hetero": multi_region_hetero,
    "revocation_storm": revocation_storm,
    "capacity_crunch": capacity_crunch,
    "warm_reuse": warm_reuse,
    "adaptive_placement": adaptive_placement,
}


def get_scenario(name: str) -> ScenarioSpec:
    """Build a named scenario.

    Raises:
        ConfigurationError: If the name is unknown.
    """
    if name not in SCENARIO_BUILDERS:
        known = ", ".join(sorted(SCENARIO_BUILDERS))
        raise ConfigurationError(f"unknown scenario {name!r}; known: {known}")
    return SCENARIO_BUILDERS[name]()


def list_scenarios() -> List[ScenarioSpec]:
    """All named scenarios, in presentation order."""
    return [builder() for builder in SCENARIO_BUILDERS.values()]


def summarize_fleet_sweep(result: SweepResult) -> str:
    """Render a scenario sweep as the fleet-level summary table."""
    from repro.scenarios.report import fleet_summary_table

    return fleet_summary_table(result)


def _register_named_scenarios() -> None:
    """Expose each named scenario as a ``fleet_<name>`` sweep."""
    for name, builder in SCENARIO_BUILDERS.items():
        register_sweep(SweepDefinition(
            name=f"fleet_{name}",
            description=f"fleet scenario: {builder().description}",
            build_spec=(lambda builder=builder:
                        build_fleet_spec(builder(), DEFAULT_REPLICATES)),
            cell_fn=fleet_cell,
            build_context=default_catalog,
            summarize=summarize_fleet_sweep))


_register_named_scenarios()
