"""``python -m repro.scenarios`` entry point.

The ``__main__`` guard matters: spawn/forkserver multiprocessing workers
re-import this module under a different name, and must not re-run the CLI.
"""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
