"""Fleet execution: many concurrent jobs, one simulator, one shared pool.

One *fleet run* places every job of a :class:`~repro.scenarios.spec.ScenarioSpec`
on a single discrete-event simulator.  Each job is a
:class:`~repro.training.session.TrainingSession` driven by a
:class:`FleetJobController` — a :class:`~repro.cmdare.controller.CMDareController`
whose replacement requests go through the shared
:class:`~repro.scenarios.pool.TransientPool` and can therefore be denied or
queued.  Worker lifetimes are drawn from the calibrated
:class:`~repro.cloud.revocation.RevocationModel` at launch time, using each
region's *local* hour-of-day, so fleet revocations reproduce the paper's
Table V / Fig. 8 / Fig. 9 characterization at pool level.

Fleet execution performance
---------------------------
The fleet loop has two schedulers that produce **bit-identical payloads**
by contract (the golden matrix in ``tests/test_fleet_scheduler.py`` and the
``benchmarks/BENCH_fleet.json`` baseline pin this down):

* the *round-robin* scheduler (the original loop, kept as the reference
  behind ``REPRO_FLEET_SCHEDULER=roundrobin``) — every iteration offers a
  vectorized fast-forward span to *all* N unfinished sessions, scans all N
  jobs for completion, then fires one heap event: O(N) driver work per
  simulator event;
* the *wake-set* scheduler (:meth:`FleetRun.run`, the default) — exploits
  the fact that a session can only replay spans while the heap top is one
  of its **own** chunk events.  Chunk events carry an ownership tag
  (``Event.owner``, see :mod:`repro.simulation.events`), so the wake set —
  the sessions whose fast-forward could make progress right now — is
  exactly ``{owner of the heap top}``; disturbed jobs (the event owner,
  pool-grant recipients, newly started jobs) re-enter it automatically the
  moment their next chunk surfaces at the top.  Together with live
  finished/stalled counters (updated by session/stall callbacks) replacing
  the O(N) ``all(...)`` scan, per-event driver work drops to O(1).

The round-robin reference deliberately does **not** inherit the session's
disturbance-horizon offer cache: its offers go through
:meth:`~repro.training.session.TrainingSession.fast_forward_probed`, which
reproduces the PR 3 per-offer cost model (heap peek + O(workers) id-set
probe), so ``BENCH_fleet.json`` measures the scheduler redesign against
the loop it replaced.  The cache itself serves drivers that re-offer
blindly — a session's own ``run_to_completion`` loop, or any external
multiplexer calling :meth:`~repro.training.session.TrainingSession.fast_forward`
without a pre-peeked top: their declined re-offers cost no heap peeks.

Pool-aware placement and warm replacements
------------------------------------------
Two opt-in scenario knobs extend the fleet beyond the paper's statically
pinned single-job experiments (both default *off*, and the defaults are
payload-bit-identical to the pre-placement fleets — the golden fixture in
``tests/test_fleet_golden_identity.py`` pins this):

* ``placement="adaptive"`` routes placement decisions through the
  pool-aware :meth:`repro.modeling.launch_advisor.LaunchAdvisor.place`
  mode: at launch every worker goes to the feasible ``(gpu, region)`` cell
  with the best combined revocation-calibration + queue-pressure score,
  and when a replacement request would find its preferred cell exhausted
  the controller falls back to the next-best feasible cell instead of
  queueing (or being denied) blindly.  Advisor scoring draws from its own
  stable per-option generators — never from the fleet streams — so runs
  stay deterministic.
* ``warm_capacity > 0`` + ``warm_seconds > 0`` enables the pool's warm
  path: reclaimed capacity returns as still-running warm servers and a
  replacement granted from one pays the Fig. 10 warm overhead (plus a
  short re-acquire handshake) instead of a cold boot.

``fleet_cell`` is the module-level sweep cell function: one cell simulates
one whole fleet from its own derived random streams, which is what makes
scenario sweeps serial/parallel bit-identical and resumable through the
:class:`repro.sweeps.SweepRunner` cache.  Beyond ``replicate``,
:func:`build_fleet_spec` can fan a scenario out along ``pool_size``,
``queue_policy``, ``warm_seconds``, ``launch_hour``, and ``placement``
axes (applied per cell by :func:`apply_fleet_axes`); the cost/makespan
frontier across those axes renders via
:func:`repro.scenarios.report.fleet_frontier_table`.  Three more runtime
knobs, all payload-neutral: ``REPRO_FLEET_SCHEDULER`` selects the
scheduler, ``REPRO_FLEET_TRACE_LEVEL=summary`` switches every session
to the aggregates-only trace sink so 500-job fleets keep O(1) trace memory
per job, and ``REPRO_FLEET_SHARDS`` > 1 partitions the fleet across worker
processes via :mod:`repro.scenarios.shard` (bit-identical payloads; shard
1, the default, is this module's loop byte-identically unchanged).
Regenerate ``benchmarks/BENCH_fleet.json`` with
``python benchmarks/fleet_baseline.py`` after touching this module (CI
runs ``python benchmarks/fleet_baseline.py --quick --check`` as a
regression gate).
"""

from __future__ import annotations

import math
import os
from dataclasses import replace as dataclass_replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.cloud.machines import PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.cloud.revocation import RevocationOutcome
from repro.cmdare.controller import CMDareController, ControllerConfig
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.modeling.launch_advisor import LaunchAdvisor
from repro.modeling.placement import PlacementQuery
from repro.scenarios.pool import DENIED, QUEUED, PoolKey, ReplacementTicket, TransientPool
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import SweepCell, SweepRunner, SweepSpec, SweepResult
from repro.training.cluster import WorkerSpec
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.training.trace import TeeSink, make_step_sink
from repro.training.worker import WorkerState
from repro.units import wrap_hour
from repro.workloads.catalog import ModelCatalog, default_catalog

#: Heap-event/fast-forward budget per fleet job (matches the single-session
#: default of TrainingSession.run_to_completion).
MAX_EVENTS_PER_JOB = 5_000_000

#: Horizon (hours) the adaptive-placement advisor scores each candidate
#: cell over.  A fixed horizon keeps the per-(gpu, region, hour) scores
#: memoizable, which bounds the Monte-Carlo cost of placement to
#: O(cells x 24) samplings per fleet regardless of how many replacements
#: are redirected.
PLACEMENT_HORIZON_HOURS = 2.0

#: Monte-Carlo samples per placement option (smaller than the standalone
#: advisor default: placement ranks a handful of cells, not a 6x24 grid).
PLACEMENT_SAMPLES = 200

#: Fleet sweep axes beyond ``replicate`` that :func:`apply_fleet_axes`
#: knows how to apply to a scenario.
FLEET_AXES = ("pool_size", "queue_policy", "warm_seconds", "launch_hour",
              "placement")

#: Valid ``queue_policy`` axis values.
QUEUE_POLICIES = ("deny", "queue")

#: Environment switch selecting the fleet scheduler (default ``wakeset``).
FLEET_SCHEDULER_ENV = "REPRO_FLEET_SCHEDULER"

#: Environment switch selecting the per-session trace level (default
#: ``full``; ``summary`` keeps aggregates only).
FLEET_TRACE_LEVEL_ENV = "REPRO_FLEET_TRACE_LEVEL"

#: Environment switch selecting the fleet shard count (default 1: the
#: single-process run loop below, byte-identically unchanged).  Values > 1
#: route ``fleet_cell`` through :func:`repro.scenarios.shard.run_fleet_sharded`,
#: which partitions the fleet's jobs and pool cells across worker
#: processes; payloads stay bit-identical by contract.
FLEET_SHARDS_ENV = "REPRO_FLEET_SHARDS"

#: Valid scheduler names: the event-ownership wake-set loop, and the
#: original offer-everyone round-robin loop kept as the bit-identical
#: payload reference.
FLEET_SCHEDULERS = ("wakeset", "roundrobin")


def _scheduler_default() -> str:
    return (os.environ.get(FLEET_SCHEDULER_ENV, "").strip().lower()
            or "wakeset")


def _trace_level_default() -> str:
    return (os.environ.get(FLEET_TRACE_LEVEL_ENV, "").strip().lower()
            or "full")


def _shards_default() -> int:
    """The effective ``REPRO_FLEET_SHARDS`` value (>= 1; default 1)."""
    raw = os.environ.get(FLEET_SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        shards = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{FLEET_SHARDS_ENV} must be a positive integer, got {raw!r}")
    if shards < 1:
        raise ConfigurationError(
            f"{FLEET_SHARDS_ENV} must be >= 1, got {shards}")
    return shards


class FleetJobController(CMDareController):
    """A CM-DARE controller whose replacements contend on a shared pool.

    Args:
        session: The job's training session.
        pool: Shared transient-server pool.
        queue_replacements: Queue exhausted-pool requests instead of
            denying them.
        on_replacement_admitted: Invoked as ``callback(session, worker)``
            when a replacement worker is actually admitted (the fleet uses
            this to schedule the new server's own revocation draw).
        placer: Pool-aware placement fallback (adaptive placement): called
            as ``placer(gpu_name, preferred_key)`` when the preferred cell
            has nothing acquirable, returning the next-best feasible
            ``(gpu, region)`` cell or ``None`` to fall through to the
            normal queue/deny path on the preferred cell.
        config: Controller behaviour switches.
    """

    def __init__(self, session: TrainingSession, pool: TransientPool,
                 queue_replacements: bool = False,
                 on_replacement_admitted: Optional[
                     Callable[[TrainingSession, WorkerState], None]] = None,
                 placer: Optional[
                     Callable[[str, PoolKey], Optional[PoolKey]]] = None,
                 config: Optional[ControllerConfig] = None):
        super().__init__(session, config=config)
        self.pool = pool
        self.queue_replacements = queue_replacements
        self.on_replacement_admitted = on_replacement_admitted
        self.placer = placer
        self.replacements_admitted = 0
        self.replacements_denied = 0
        self.replacements_pending = 0
        self.replacements_warm = 0
        self.replacements_cancelled = 0
        self.placements_redirected = 0
        self._queued_tickets: List[ReplacementTicket] = []
        # A request still queued when the job completes can never be used:
        # withdraw it so the pool's waiter queue holds no dead entries (and
        # a later slot goes straight to a live waiter instead of bouncing
        # through a grant-then-release round trip).
        session.on_finished.append(self._cancel_queued)

    def request_replacement(self, revoked: WorkerState) -> None:
        """Route the replacement request through the shared pool.

        With adaptive placement, a request whose preferred cell (the
        revoked worker's own ``(gpu, region)``) has nothing acquirable is
        redirected to the best feasible alternative cell *before* it
        reaches the pool, so it counts as one granted request instead of a
        denial — the paper's Section V-C placement idea applied at fleet
        scale.
        """
        gpu, region = revoked.spec.gpu_name, revoked.spec.region_name
        spec = revoked.spec
        if (self.placer is not None
                and self.pool.snapshot().acquirable(gpu, region) == 0):
            alternative = self.placer(gpu, (gpu, region))
            if alternative is not None and alternative != (gpu, region):
                spec = WorkerSpec(gpu_name=gpu, region_name=alternative[1],
                                  transient=True)
                self.placements_redirected += 1
                self._log("replacement-redirected",
                          f"pool exhausted in {region}: redirecting {gpu} "
                          f"replacement for {revoked.worker_id} to "
                          f"{alternative[1]}")
        # The grant callback may run synchronously (slot free now) or later
        # (served from the waiter queue); only queued requests count as
        # pending, and only their grants decrement the pending count.
        state: Dict[str, Any] = {"queued": False, "ticket": None}

        def grant(warm: bool) -> None:
            ticket = state["ticket"]
            if ticket is not None and ticket in self._queued_tickets:
                self._queued_tickets.remove(ticket)
            if state["queued"]:
                self.replacements_pending -= 1
            self._admit_replacement(revoked, spec, warm)

        ticket = self.pool.request_replacement(
            spec.gpu_name, spec.region_name, grant,
            queue=self.queue_replacements,
            label=f"{self.session.job.model_name}:{revoked.worker_id}")
        state["ticket"] = ticket
        if ticket.outcome == DENIED:
            self.replacements_denied += 1
            self._log("replacement-denied",
                      f"pool exhausted: no {spec.gpu_name} capacity in "
                      f"{spec.region_name} for {revoked.worker_id}")
        elif ticket.outcome == QUEUED:
            state["queued"] = True
            self.replacements_pending += 1
            self._queued_tickets.append(ticket)
            self._log("replacement-queued",
                      f"pool exhausted: queued {spec.gpu_name} replacement "
                      f"for {revoked.worker_id} in {spec.region_name}")

    def _admit_replacement(self, revoked: WorkerState, spec: WorkerSpec,
                           warm: bool) -> None:
        """A pool slot was assigned; actually add the replacement worker."""
        if self.session.finished:
            # Granted from the queue after the job already completed (e.g.
            # served within the finish cascade before the cancel hook ran):
            # the slot was taken by the pool before the callback, hand it
            # back.
            self.pool.release(spec.gpu_name, spec.region_name)
            return
        worker = super().request_replacement(revoked, cold=not warm, spec=spec)
        self.replacements_admitted += 1
        if warm:
            self.replacements_warm += 1
        if self.on_replacement_admitted is not None:
            self.on_replacement_admitted(self.session, worker)

    def _cancel_queued(self, _session: TrainingSession) -> None:
        """Withdraw still-queued replacement requests at session finish."""
        for ticket in self._queued_tickets:
            if ticket.cancel():
                self.replacements_pending -= 1
                self.replacements_cancelled += 1
        self._queued_tickets.clear()


class _FleetJob:
    """Runtime bundle for one job of the fleet."""

    def __init__(self, spec: JobSpec, session: TrainingSession,
                 controller: FleetJobController):
        self.spec = spec
        self.session = session
        self.controller = controller
        self.stalled = False
        self.stalled_at = 0.0
        self.started = False

    def end_time(self, now: float) -> float:
        """When the job stopped mattering: finish, stall, or the present."""
        if self.session.finished:
            return self.session.trace.end_time
        return self.stalled_at if self.stalled else now


class FleetRun:
    """One fleet simulation, wired and ready to :meth:`run`.

    Args:
        scenario: The scenario to simulate.
        streams: Root random streams of this fleet (one sweep cell).
        catalog: Model catalog resolving job model names.
        price_catalog: Pricing used for fleet cost accounting.
        fast_forward: Core-path override forwarded to every session.
        scheduler: Fleet scheduler (``"wakeset"`` or ``"roundrobin"``);
            ``None`` reads ``REPRO_FLEET_SCHEDULER`` (default wake-set).
            Payloads are bit-identical either way.
        trace_level: Per-session trace level (``"full"`` or ``"summary"``);
            ``None`` reads ``REPRO_FLEET_TRACE_LEVEL`` (default full).
            Payloads are bit-identical either way.
        telemetry: Optional telemetry spool (duck-typed against
            :class:`repro.telemetry.writer.TelemetrySpool`).  When set,
            every session's step rows are teed into the spool and every
            revocation-model draw is recorded; payloads are bit-identical
            with or without it.
        telemetry_ranks: Global job rank per ``scenario.jobs`` entry used
            to key the spool files.  Defaults to ``0..len(jobs)-1``; the
            sharded runner passes each shard's global indices so spool
            contents are shard-invariant.
    """

    def __init__(self, scenario: ScenarioSpec, streams: RandomStreams,
                 catalog: Optional[ModelCatalog] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 fast_forward: Optional[bool] = None,
                 scheduler: Optional[str] = None,
                 trace_level: Optional[str] = None,
                 telemetry: Optional[Any] = None,
                 telemetry_ranks: Optional[Sequence[int]] = None):
        self.scenario = scenario
        self.streams = streams
        self.catalog = catalog if catalog is not None else default_catalog()
        self.prices = (price_catalog if price_catalog is not None
                       else default_price_catalog())
        self.fast_forward = fast_forward
        self.scheduler = scheduler if scheduler is not None else _scheduler_default()
        if self.scheduler not in FLEET_SCHEDULERS:
            known = ", ".join(FLEET_SCHEDULERS)
            raise ConfigurationError(
                f"unknown fleet scheduler {self.scheduler!r}; known: {known}")
        self.trace_level = (trace_level if trace_level is not None
                            else _trace_level_default())
        epoch = (scenario.epoch_hour_utc if scenario.epoch_hour_utc is not None
                 else float(streams.get("epoch").uniform(0, 24)))
        self.simulator = Simulator(epoch_hour_utc=epoch)
        self.pool = TransientPool(self.simulator, scenario.pool_capacity,
                                  reclaim_seconds=scenario.reclaim_seconds,
                                  warm_seconds=scenario.warm_seconds,
                                  warm_capacity=scenario.warm_capacity)
        self.revocation_model = RevocationModel(rng=streams.get("revocation"))
        # Adaptive placement scores cells through the pool-aware launch
        # advisor; its Monte-Carlo draws come from stable per-option
        # generators (seeded off the fleet's derived placement stream, not
        # consumed from it), so static fleets touch no extra streams and
        # adaptive fleets stay deterministic.
        self.advisor: Optional[LaunchAdvisor] = None
        if scenario.placement == "adaptive":
            self.advisor = LaunchAdvisor(
                revocation_model=self.revocation_model,
                samples_per_option=PLACEMENT_SAMPLES,
                seed=streams.spawn("placement").seed)
        self.revocation_hours_local: List[float] = []
        #: Live completion counters: bumped by the session-finished and
        #: stall hooks so the run loop never scans all N jobs per event.
        self._jobs_finished = 0
        self._jobs_stalled = 0
        #: Optional progress callback fired every ``_progress_interval``
        #: processed events by both run loops.  The sharded fleet driver
        #: installs one so each worker process periodically reports its
        #: progress lower bound to the parent's draw service; ``None`` (the
        #: default) costs one pointer comparison per loop iteration.
        self._progress_hook: Optional[Callable[[], None]] = None
        self._progress_interval = 2048
        self._telemetry = telemetry
        self._telemetry_ranks: Sequence[int] = (
            telemetry_ranks if telemetry_ranks is not None
            else range(len(scenario.jobs)))
        self._job_telemetry: Dict[TrainingSession, Any] = {}
        self._wired_jobs = 0
        self.jobs: List[_FleetJob] = [self._wire_job(spec)
                                      for spec in scenario.jobs]
        self._job_of: Dict[TrainingSession, _FleetJob] = {
            job.session: job for job in self.jobs}

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def _wire_job(self, spec: JobSpec) -> _FleetJob:
        # Initial workers reserve their pool slots at fleet launch, before
        # any job starts training (the spec validated the demand fits).
        # With adaptive placement the advisor picks each worker's region
        # from live availability first; the job then trains on the placed
        # spec.
        placed = self._place_job(spec)
        profile = self.catalog.profile(placed.model_name)
        job = TrainingJob(profile=profile, total_steps=placed.total_steps,
                          checkpoint_interval_steps=placed.checkpoint_interval_steps)
        step_sink = None
        handle = None
        if self._telemetry is not None:
            # Tee the job's normal sink with a telemetry sink: the primary
            # answers every read the payload makes, so attaching telemetry
            # is payload-bit-identical.
            rank = int(self._telemetry_ranks[self._wired_jobs])
            handle = self._telemetry.job(rank, placed.name, placed.model_name,
                                         profile.gflops)
            step_sink = TeeSink(make_step_sink(self.trace_level),
                                handle.step_sink())
        self._wired_jobs += 1
        session = TrainingSession(
            self.simulator, placed.cluster(), job,
            streams=self.streams.spawn(f"job:{placed.name}"),
            steps_per_event=placed.steps_per_event,
            fast_forward=self.fast_forward,
            trace_level=self.trace_level,
            step_sink=step_sink)
        if handle is not None:
            for worker in session.workers.values():
                handle.register_worker(worker.worker_id, worker.spec.gpu_name,
                                       worker.spec.region_name)
            self._job_telemetry[session] = handle
        controller = FleetJobController(
            session, self.pool, queue_replacements=placed.queue_replacements,
            on_replacement_admitted=self._schedule_revocation,
            placer=self._place_replacement if self.advisor is not None else None,
            config=ControllerConfig(
                auto_mitigate_bottleneck=placed.auto_mitigate_bottleneck,
                poll_interval_seconds=self.scenario.poll_interval_seconds))
        session.on_finished.append(self._note_finished)
        fleet_job = _FleetJob(placed, session, controller)
        self.simulator.schedule(placed.start_delay_seconds,
                                lambda _sim, fj=fleet_job: self._start_job(fj),
                                label=f"fleet:start:{placed.name}")
        return fleet_job

    def _place_job(self, spec: JobSpec) -> JobSpec:
        """Reserve launch slots; adaptively re-place workers when asked.

        Static placement acquires the declared cells as-is.  Adaptive
        placement asks the pool-aware advisor for the best feasible cell
        per worker (same GPU type, any pool region), acquiring greedily so
        each decision sees the availability left by the previous one.
        """
        if self.advisor is None:
            for gpu, region in spec.workers:
                self.pool.acquire(gpu, region)
            return spec
        hour_utc = self.simulator.hour_of_day_utc()
        placed: List[PoolKey] = []
        for gpu, _declared_region in spec.workers:
            # Each worker queries against a fresh snapshot: acquiring the
            # previous worker's slot bumped the pool version, so every
            # decision sees the availability the last one left behind.
            decision = self.advisor.answer(
                PlacementQuery(gpu_name=gpu,
                               duration_hours=PLACEMENT_HORIZON_HOURS,
                               hour_of_day_utc=hour_utc),
                pool=self.pool.snapshot())
            option = decision.best
            if option is None:
                raise CapacityError(
                    f"no feasible {gpu} placement for job {spec.name!r} at "
                    f"fleet launch")
            self.pool.acquire(gpu, option.region_name)
            placed.append((gpu, option.region_name))
        if tuple(placed) == spec.workers:
            return spec
        return dataclass_replace(spec, workers=tuple(placed))

    def _place_replacement(self, gpu_name: str,
                           preferred: PoolKey) -> Optional[PoolKey]:
        """Next-best feasible cell for a replacement denied at ``preferred``."""
        decision = self.advisor.answer(
            PlacementQuery(gpu_name=gpu_name,
                           duration_hours=PLACEMENT_HORIZON_HOURS,
                           hour_of_day_utc=self.simulator.hour_of_day_utc()),
            pool=self.pool.snapshot())
        option = decision.best
        if option is None:
            return None
        return (option.gpu_name, option.region_name)

    def _start_job(self, fleet_job: _FleetJob) -> None:
        fleet_job.started = True
        fleet_job.session.start()
        fleet_job.controller.start_monitoring()
        self._schedule_launch_revocations(
            fleet_job.session, list(fleet_job.session.workers.values()))

    def _note_finished(self, session: TrainingSession) -> None:
        """A job completed: count it and return surviving servers."""
        self._jobs_finished += 1
        for worker in session.active_workers():
            if worker.is_transient:
                self.pool.release(worker.spec.gpu_name, worker.spec.region_name)

    def _schedule_launch_revocations(self, session: TrainingSession,
                                     workers: List[WorkerState]) -> None:
        """Draw the launch-time fates of a job's workers, batched.

        Consecutive workers sharing a ``(gpu, region)`` placement draw
        their fates through one :meth:`RevocationModel.sample_batch` call —
        the batched sampler consumes the revocation stream exactly like the
        per-worker draws it replaces, so payloads are unchanged.
        """
        index = 0
        count = len(workers)
        while index < count:
            spec = workers[index].spec
            gpu, region_name = spec.gpu_name, spec.region_name
            end = index + 1
            while (end < count and workers[end].spec.gpu_name == gpu
                   and workers[end].spec.region_name == region_name):
                end += 1
            region = get_region(region_name)
            launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
            outcomes = self.revocation_model.sample_batch(
                gpu, region_name, end - index,
                launch_hour_local=launch_hour, stressed=True)
            for worker, outcome in zip(workers[index:end], outcomes):
                self._note_revocation_draw(session, worker, outcome)
                self._schedule_revocation_outcome(session, worker, outcome)
            index = end

    def _schedule_revocation(self, session: TrainingSession,
                             worker: WorkerState) -> None:
        """Draw one worker's fate from the calibrated revocation model.

        The draw happens at launch time using the region's *local* hour of
        day, exactly like the simulated provider does, so fleet-level
        revocations carry the paper's hour-of-day clustering (Fig. 9).
        """
        region = get_region(worker.spec.region_name)
        launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
        outcome = self.revocation_model.sample(worker.spec.gpu_name,
                                               worker.spec.region_name,
                                               launch_hour_local=launch_hour,
                                               stressed=True)
        self._note_revocation_draw(session, worker, outcome)
        self._schedule_revocation_outcome(session, worker, outcome)

    def _note_revocation_draw(self, session: TrainingSession,
                              worker: WorkerState,
                              outcome: RevocationOutcome) -> None:
        """Record one revocation-model draw in the telemetry spool (if any).

        Replacement workers are registered on first sight (registration is
        idempotent), and the launch hour is recomputed with the exact
        expression the draw sites used, so the recorded row reproduces the
        draw's inputs.
        """
        if self._telemetry is None:
            return
        handle = self._job_telemetry.get(session)
        if handle is None:
            return
        region = get_region(worker.spec.region_name)
        launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
        handle.register_worker(worker.worker_id, worker.spec.gpu_name,
                               worker.spec.region_name)
        handle.record_draw(worker.worker_id, launch_hour, outcome)

    def _schedule_revocation_outcome(self, session: TrainingSession,
                                     worker: WorkerState,
                                     outcome: RevocationOutcome) -> None:
        """Turn a sampled fate into a scheduled revocation event (if any)."""
        if not outcome.revoked:
            # The server survives to the 24-hour reclamation; fleet jobs
            # complete well before, so no termination event is scheduled.
            return
        gpu, region_name = worker.spec.gpu_name, worker.spec.region_name

        def revoke(_sim: Simulator) -> None:
            if session.finished or not worker.active:
                return
            self.revocation_hours_local.append(
                float(outcome.revocation_hour_local))
            self.pool.revoke(gpu, region_name)
            session.handle_revocation(worker.worker_id)
            self._check_stalled(session)

        self.simulator.schedule(outcome.lifetime_seconds, revoke,
                                label=f"fleet:revoke:{worker.worker_id}")

    def _check_stalled(self, session: TrainingSession) -> None:
        """Detect a job that lost every worker with no replacement coming.

        Such a job can never finish: stop its monitoring loop so the heap
        drains instead of polling forever, and mark it stalled.
        """
        fleet_job = self._job_of.get(session)
        if fleet_job is None:
            return
        if (not session.finished and not session.active_workers()
                and fleet_job.controller.replacements_pending == 0
                and not fleet_job.stalled):
            fleet_job.stalled = True
            fleet_job.stalled_at = self.simulator.now
            fleet_job.controller.stop_monitoring()
            self._jobs_stalled += 1

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Run the fleet to completion and return the JSON payload.

        The wake-set scheduler (default) maps the heap top to its owning
        session and lets only that session fast-forward; the round-robin
        reference offers a span to every unfinished session per event.
        Both stop the moment every job finished or stalled — a stalled job
        has no queued replacement left by definition, so nothing in the
        heap (pool reclaim returns, stale revocation draws) can revive it,
        and draining events up to a day in the future would inflate the
        fleet clock past the last meaningful moment.  Payloads are
        bit-identical across schedulers.
        """
        max_events = MAX_EVENTS_PER_JOB * len(self.jobs)
        if self.scheduler == "roundrobin":
            processed = self._run_roundrobin(max_events)
        else:
            processed = self._run_wakeset(max_events)
        #: Events processed (chunk completions + fired heap events) —
        #: the throughput numerator of ``benchmarks/fleet_baseline.py``.
        self.events_processed = processed
        if processed >= max_events:
            raise SimulationError(
                f"fleet {self.scenario.name!r} exceeded {max_events} events")
        return self._payload()

    def _run_wakeset(self, max_events: int) -> int:
        """O(1)-per-event loop driven by heap-top event ownership.

        Only the session owning the next-due chunk event can replay a
        fast-forward span (any other session's offer would find a foreign
        event first and decline); everything else — job starts, pool
        grants, revocations, controller polls — reaches the disturbed
        session through ordinary heap events, after which its next chunk
        surfaces at the top and wakes it again.
        """
        sim = self.simulator
        peek_next = sim.peek_next
        step = sim.step
        jobs_total = len(self.jobs)
        hook = self._progress_hook
        next_report = self._progress_interval
        processed = 0
        while processed < max_events:
            if hook is not None and processed >= next_report:
                hook()
                next_report = processed + self._progress_interval
            if self._jobs_finished + self._jobs_stalled >= jobs_total:
                break
            top = peek_next()
            if top is None:
                break
            owner = top.owner
            if owner is not None:
                replayed = owner._fast_forward(max_events - processed, top=top)
                if replayed:
                    processed += replayed
                    continue
            if step() is None:
                break
            processed += 1
        return processed

    def _run_roundrobin(self, max_events: int) -> int:
        """The original O(jobs)-per-event loop, kept as the reference.

        Selected with ``REPRO_FLEET_SCHEDULER=roundrobin``; the wake-set
        scheduler must reproduce its payloads bit for bit.  Offers go
        through :meth:`TrainingSession.fast_forward_probed`, which keeps
        the PR 3 per-offer cost model (heap peek + O(workers) id-set
        probe, no disturbance-horizon cache), so the fleet baseline
        measures the scheduler redesign against the loop it replaced
        rather than against a reference that silently inherits it.
        """
        hook = self._progress_hook
        next_report = self._progress_interval
        processed = 0
        while processed < max_events:
            if hook is not None and processed >= next_report:
                hook()
                next_report = processed + self._progress_interval
            for fleet_job in self.jobs:
                if not fleet_job.session.finished:
                    processed += fleet_job.session.fast_forward_probed(
                        max_events - processed)
            if all(job.session.finished or job.stalled for job in self.jobs):
                break
            if self.simulator.step() is None:
                break
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def _job_cost(self, fleet_job: _FleetJob, end_time: float) -> float:
        """Cloud cost of one job: per-second billing of workers and PSs."""
        cost = 0.0
        for worker in fleet_job.session.workers.values():
            stop = worker.revoked_at if worker.revoked_at is not None else end_time
            span = max(0.0, stop - worker.joined_at)
            machine = gpu_worker_machine(worker.spec.gpu_name)
            cost += self.prices.cost(machine, worker.is_transient, span)
        cost += fleet_job.spec.num_parameter_servers * self.prices.cost(
            PARAMETER_SERVER_MACHINE, False, end_time)
        # Parameter servers added mid-run by bottleneck mitigation bill
        # from the moment they were provisioned.
        for action in fleet_job.controller.actions:
            if action.kind == "mitigation":
                cost += self.prices.cost(PARAMETER_SERVER_MACHINE, False,
                                         max(0.0, end_time - action.time))
        return cost

    def _payload(self) -> Dict[str, Any]:
        jobs: List[Dict[str, Any]] = []
        makespan = 0.0
        total_cost = 0.0
        for fleet_job in self.jobs:
            session = fleet_job.session
            completed = session.finished
            end = fleet_job.end_time(self.simulator.now)
            makespan = max(makespan, end)
            cost = self._job_cost(fleet_job, end)
            total_cost += cost
            controller = fleet_job.controller
            summary = controller.summary()
            entry = {
                "name": fleet_job.spec.name,
                "model": fleet_job.spec.model_name,
                "workers": len(fleet_job.spec.workers),
                "completed": completed,
                "stalled": fleet_job.stalled,
                "steps_done": session.cluster_steps,
                "total_steps": fleet_job.spec.total_steps,
                "duration_seconds": end - fleet_job.spec.start_delay_seconds,
                "end_time_seconds": end,
                "cost_usd": cost,
                "revocations": summary["num_revocations_seen"],
                "replacements_admitted": controller.replacements_admitted,
                "replacements_denied": controller.replacements_denied,
                "replacements_pending": controller.replacements_pending,
                "ps_mitigations": summary["extra_parameter_servers"],
                "final_active_workers": len(session.active_workers()),
            }
            # Opt-in features report their counters only when enabled, so
            # cold-only statically placed payloads stay byte-identical to
            # the pre-placement fleets (golden-fixture contract).
            if self.pool.warm_enabled:
                entry["replacements_warm"] = controller.replacements_warm
            if self.advisor is not None:
                entry["placements_redirected"] = controller.placements_redirected
            jobs.append(entry)
        pool_stats = self.pool.stats()
        payload = {
            "scenario": self.scenario.name,
            "epoch_hour_utc": self.simulator.epoch_hour_utc,
            "jobs_total": len(self.jobs),
            "jobs_completed": sum(1 for job in jobs if job["completed"]),
            "jobs_stalled": sum(1 for job in jobs if job["stalled"]),
            "makespan_seconds": makespan,
            "total_cost_usd": total_cost,
            "revocations": pool_stats["revocations"],
            "replacements_admitted": sum(j["replacements_admitted"] for j in jobs),
            "replacements_denied": pool_stats["replacements_denied"],
            "replacement_denial_rate": pool_stats["replacement_denial_rate"],
            "ps_mitigations": sum(j["ps_mitigations"] for j in jobs),
            "revocation_hours_local": list(self.revocation_hours_local),
            "pool": pool_stats,
            "jobs": jobs,
        }
        if self.pool.warm_enabled:
            payload["replacements_warm"] = pool_stats["replacements_warm"]
            payload["warm_reuse_rate"] = pool_stats["warm_reuse_rate"]
        if self.advisor is not None:
            payload["placement"] = self.scenario.placement
            payload["placements_redirected"] = sum(
                j["placements_redirected"] for j in jobs)
        return payload


def run_fleet(scenario: ScenarioSpec, streams: RandomStreams,
              catalog: Optional[ModelCatalog] = None,
              price_catalog: Optional[PriceCatalog] = None,
              fast_forward: Optional[bool] = None,
              scheduler: Optional[str] = None,
              trace_level: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one fleet and return its JSON-encodable summary payload."""
    return FleetRun(scenario, streams, catalog=catalog,
                    price_catalog=price_catalog, fast_forward=fast_forward,
                    scheduler=scheduler, trace_level=trace_level).run()


# ---------------------------------------------------------------------------
# Sweep integration.
# ---------------------------------------------------------------------------
def apply_fleet_axes(scenario: ScenarioSpec,
                     params: Mapping[str, Any]) -> ScenarioSpec:
    """Derive the scenario one sweep cell actually runs from its params.

    Recognized axis parameters (all optional; absent keys leave the
    scenario untouched, so a plain ``replicate`` sweep runs the scenario
    verbatim and stays bit-compatible with pre-multi-axis fleet sweeps):

    * ``pool_size`` — positive scale factor applied to every pool cell's
      capacity (rounded up, never below the cell's initial demand so the
      derived scenario stays launchable);
    * ``queue_policy`` — ``"queue"`` / ``"deny"``: overrides every job's
      ``queue_replacements`` flag;
    * ``warm_seconds`` — warm-pool linger duration; enabling it on a
      scenario without a ``warm_capacity`` defaults the per-cell warm cap
      to the largest cell capacity (effectively uncapped);
    * ``launch_hour`` — fleet epoch (UTC hour at simulation time zero);
    * ``placement`` — ``"static"`` / ``"adaptive"`` placement mode.
    """
    derived = scenario
    if "pool_size" in params:
        factor = float(params["pool_size"])
        if factor <= 0:
            raise ConfigurationError("pool_size factors must be positive")
        demand = scenario.initial_demand()
        capacity = {key: max(demand.get(key, 0),
                             int(math.ceil(count * factor)), 1)
                    for key, count in scenario.pool_capacity.items()}
        derived = dataclass_replace(derived, pool_capacity=capacity)
    if "queue_policy" in params:
        policy = params["queue_policy"]
        if policy not in QUEUE_POLICIES:
            known = ", ".join(QUEUE_POLICIES)
            raise ConfigurationError(
                f"unknown queue_policy {policy!r}; known: {known}")
        queue = policy == "queue"
        derived = dataclass_replace(derived, jobs=tuple(
            dataclass_replace(job, queue_replacements=queue)
            for job in derived.jobs))
    if "warm_seconds" in params:
        warm_seconds = float(params["warm_seconds"])
        warm_capacity = derived.warm_capacity
        if warm_seconds > 0 and warm_capacity == 0:
            warm_capacity = max(derived.pool_capacity.values())
        derived = dataclass_replace(
            derived, warm_seconds=warm_seconds,
            warm_capacity=warm_capacity if warm_seconds > 0
            else derived.warm_capacity)
    if "launch_hour" in params:
        derived = dataclass_replace(
            derived, epoch_hour_utc=wrap_hour(float(params["launch_hour"])))
    if "placement" in params:
        derived = dataclass_replace(derived, placement=params["placement"])
    return derived


def fleet_cell(cell: SweepCell, streams: RandomStreams,
               context: Any) -> Dict[str, Any]:
    """Sweep cell: simulate one whole fleet (one scenario replicate).

    Axis parameters beyond ``replicate`` (see :func:`apply_fleet_axes`)
    derive the per-cell scenario before it runs.  ``context`` is the shared
    :class:`~repro.workloads.catalog.ModelCatalog` (its fingerprint keys
    the result cache).  With ``REPRO_FLEET_SHARDS`` > 1 the fleet executes
    through the sharded multi-process driver
    (:func:`repro.scenarios.shard.run_fleet_sharded`), whose payloads are
    bit-identical to this single-process path; the default of 1 runs the
    code below byte-identically unchanged.
    """
    scenario = ScenarioSpec.from_params(cell.params["scenario"])
    scenario = apply_fleet_axes(scenario, cell.params)
    shards = _shards_default()
    if shards > 1:
        from repro.scenarios.shard import run_fleet_sharded

        return run_fleet_sharded(scenario, streams, catalog=context,
                                 shards=shards)
    return run_fleet(scenario, streams, catalog=context)


def build_fleet_spec(scenario: ScenarioSpec, replicates: int = 2, *,
                     pool_sizes: Optional[Sequence[float]] = None,
                     queue_policies: Optional[Sequence[str]] = None,
                     warm_seconds: Optional[Sequence[float]] = None,
                     launch_hours: Optional[Sequence[float]] = None,
                     placements: Optional[Sequence[str]] = None) -> SweepSpec:
    """A fleet sweep over ``scenario``: optional axes x replicates.

    With no axis arguments this is the classic one-cell-per-replicate
    sweep (cell parameters unchanged from the single-axis era, so derived
    seeds, caches, and payloads stay bit-compatible).  Each provided axis
    fans the scenario out along one :func:`apply_fleet_axes` dimension;
    every combination runs ``replicates`` independent fleets.  Axis values
    are validated eagerly by deriving a scenario from each, so a bad value
    fails at spec build time, not mid-sweep.
    """
    if replicates < 1:
        raise SimulationError("replicates must be >= 1")
    axes: Dict[str, List[Any]] = {}
    for name, values in (("pool_size", pool_sizes),
                         ("queue_policy", queue_policies),
                         ("warm_seconds", warm_seconds),
                         ("launch_hour", launch_hours),
                         ("placement", placements)):
        if values is None:
            continue
        values = [float(value) if name in ("pool_size", "warm_seconds",
                                           "launch_hour") else value
                  for value in values]
        for value in values:
            apply_fleet_axes(scenario, {name: value})
        axes[name] = values
    axes["replicate"] = list(range(int(replicates)))
    return SweepSpec(f"fleet_{scenario.name}", axes=axes,
                     fixed={"scenario": scenario.to_params()})


def run_scenario(scenario: ScenarioSpec, replicates: int = 2, seed: int = 0,
                 workers: Optional[int] = None, cache_dir: Optional[str] = None,
                 catalog: Optional[ModelCatalog] = None,
                 pool_sizes: Optional[Sequence[float]] = None,
                 queue_policies: Optional[Sequence[str]] = None,
                 warm_seconds: Optional[Sequence[float]] = None,
                 launch_hours: Optional[Sequence[float]] = None,
                 placements: Optional[Sequence[str]] = None) -> SweepResult:
    """Run a scenario's (optionally multi-axis) sweep through the engine.

    Serial and parallel executions are bit-identical, and with a
    ``cache_dir`` interrupted scenario sweeps resume from completed cells,
    both inherited from :class:`~repro.sweeps.SweepRunner` — multi-axis
    fleet grids get the same contracts for free because every cell is one
    self-contained fleet with its own derived streams.
    """
    spec = build_fleet_spec(scenario, replicates, pool_sizes=pool_sizes,
                            queue_policies=queue_policies,
                            warm_seconds=warm_seconds,
                            launch_hours=launch_hours, placements=placements)
    runner = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed)
    return runner.run(spec, fleet_cell,
                      context=catalog if catalog is not None else default_catalog())
