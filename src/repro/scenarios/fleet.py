"""Fleet execution: many concurrent jobs, one simulator, one shared pool.

One *fleet run* places every job of a :class:`~repro.scenarios.spec.ScenarioSpec`
on a single discrete-event simulator.  Each job is a
:class:`~repro.training.session.TrainingSession` driven by a
:class:`FleetJobController` — a :class:`~repro.cmdare.controller.CMDareController`
whose replacement requests go through the shared
:class:`~repro.scenarios.pool.TransientPool` and can therefore be denied or
queued.  Worker lifetimes are drawn from the calibrated
:class:`~repro.cloud.revocation.RevocationModel` at launch time, using each
region's *local* hour-of-day, so fleet revocations reproduce the paper's
Table V / Fig. 8 / Fig. 9 characterization at pool level.

Fleet execution performance
---------------------------
The fleet loop has two schedulers that produce **bit-identical payloads**
by contract (the golden matrix in ``tests/test_fleet_scheduler.py`` and the
``benchmarks/BENCH_fleet.json`` baseline pin this down):

* the *round-robin* scheduler (the original loop, kept as the reference
  behind ``REPRO_FLEET_SCHEDULER=roundrobin``) — every iteration offers a
  vectorized fast-forward span to *all* N unfinished sessions, scans all N
  jobs for completion, then fires one heap event: O(N) driver work per
  simulator event;
* the *wake-set* scheduler (:meth:`FleetRun.run`, the default) — exploits
  the fact that a session can only replay spans while the heap top is one
  of its **own** chunk events.  Chunk events carry an ownership tag
  (``Event.owner``, see :mod:`repro.simulation.events`), so the wake set —
  the sessions whose fast-forward could make progress right now — is
  exactly ``{owner of the heap top}``; disturbed jobs (the event owner,
  pool-grant recipients, newly started jobs) re-enter it automatically the
  moment their next chunk surfaces at the top.  Together with live
  finished/stalled counters (updated by session/stall callbacks) replacing
  the O(N) ``all(...)`` scan, per-event driver work drops to O(1).

The round-robin reference deliberately does **not** inherit the session's
disturbance-horizon offer cache: its offers go through
:meth:`~repro.training.session.TrainingSession.fast_forward_probed`, which
reproduces the PR 3 per-offer cost model (heap peek + O(workers) id-set
probe), so ``BENCH_fleet.json`` measures the scheduler redesign against
the loop it replaced.  The cache itself serves drivers that re-offer
blindly — a session's own ``run_to_completion`` loop, or any external
multiplexer calling :meth:`~repro.training.session.TrainingSession.fast_forward`
without a pre-peeked top: their declined re-offers cost no heap peeks.

``fleet_cell`` is the module-level sweep cell function: one cell simulates
one whole fleet from its own derived random streams, which is what makes
scenario sweeps serial/parallel bit-identical and resumable through the
:class:`repro.sweeps.SweepRunner` cache.  Two more runtime knobs, both
payload-neutral: ``REPRO_FLEET_SCHEDULER`` selects the scheduler and
``REPRO_FLEET_TRACE_LEVEL=summary`` switches every session to the
aggregates-only trace sink so 500-job fleets keep O(1) trace memory per
job.  Regenerate ``benchmarks/BENCH_fleet.json`` with
``python benchmarks/fleet_baseline.py`` after touching this module (CI
runs ``python benchmarks/fleet_baseline.py --quick --check`` as a
regression gate).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.cloud.machines import PARAMETER_SERVER_MACHINE, gpu_worker_machine
from repro.cloud.pricing import PriceCatalog, default_price_catalog
from repro.cloud.regions import get_region
from repro.cloud.revocation import RevocationModel
from repro.cloud.revocation import RevocationOutcome
from repro.cmdare.controller import CMDareController, ControllerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.scenarios.pool import DENIED, QUEUED, TransientPool
from repro.scenarios.spec import JobSpec, ScenarioSpec
from repro.simulation.engine import Simulator
from repro.simulation.rng import RandomStreams
from repro.sweeps import SweepCell, SweepRunner, SweepSpec, SweepResult
from repro.training.job import TrainingJob
from repro.training.session import TrainingSession
from repro.training.worker import WorkerState
from repro.workloads.catalog import ModelCatalog, default_catalog

#: Heap-event/fast-forward budget per fleet job (matches the single-session
#: default of TrainingSession.run_to_completion).
MAX_EVENTS_PER_JOB = 5_000_000

#: Environment switch selecting the fleet scheduler (default ``wakeset``).
FLEET_SCHEDULER_ENV = "REPRO_FLEET_SCHEDULER"

#: Environment switch selecting the per-session trace level (default
#: ``full``; ``summary`` keeps aggregates only).
FLEET_TRACE_LEVEL_ENV = "REPRO_FLEET_TRACE_LEVEL"

#: Valid scheduler names: the event-ownership wake-set loop, and the
#: original offer-everyone round-robin loop kept as the bit-identical
#: payload reference.
FLEET_SCHEDULERS = ("wakeset", "roundrobin")


def _scheduler_default() -> str:
    return (os.environ.get(FLEET_SCHEDULER_ENV, "").strip().lower()
            or "wakeset")


def _trace_level_default() -> str:
    return (os.environ.get(FLEET_TRACE_LEVEL_ENV, "").strip().lower()
            or "full")


class FleetJobController(CMDareController):
    """A CM-DARE controller whose replacements contend on a shared pool.

    Args:
        session: The job's training session.
        pool: Shared transient-server pool.
        queue_replacements: Queue exhausted-pool requests instead of
            denying them.
        on_replacement_admitted: Invoked as ``callback(session, worker)``
            when a replacement worker is actually admitted (the fleet uses
            this to schedule the new server's own revocation draw).
        config: Controller behaviour switches.
    """

    def __init__(self, session: TrainingSession, pool: TransientPool,
                 queue_replacements: bool = False,
                 on_replacement_admitted: Optional[
                     Callable[[TrainingSession, WorkerState], None]] = None,
                 config: Optional[ControllerConfig] = None):
        super().__init__(session, config=config)
        self.pool = pool
        self.queue_replacements = queue_replacements
        self.on_replacement_admitted = on_replacement_admitted
        self.replacements_admitted = 0
        self.replacements_denied = 0
        self.replacements_pending = 0

    def request_replacement(self, revoked: WorkerState) -> None:
        """Route the replacement request through the shared pool."""
        gpu, region = revoked.spec.gpu_name, revoked.spec.region_name
        # The grant callback may run synchronously (slot free now) or later
        # (served from the waiter queue); only queued requests count as
        # pending, and only their grants decrement the pending count.
        state = {"queued": False}

        def grant() -> None:
            if state["queued"]:
                self.replacements_pending -= 1
            self._admit_replacement(revoked)

        outcome = self.pool.request_replacement(
            gpu, region, grant, queue=self.queue_replacements,
            label=f"{self.session.job.model_name}:{revoked.worker_id}")
        if outcome == DENIED:
            self.replacements_denied += 1
            self._log("replacement-denied",
                      f"pool exhausted: no {gpu} capacity in {region} for "
                      f"{revoked.worker_id}")
        elif outcome == QUEUED:
            state["queued"] = True
            self.replacements_pending += 1
            self._log("replacement-queued",
                      f"pool exhausted: queued {gpu} replacement for "
                      f"{revoked.worker_id} in {region}")

    def _admit_replacement(self, revoked: WorkerState) -> None:
        """A pool slot was assigned; actually add the replacement worker."""
        if self.session.finished:
            # Granted from the queue after the job already completed: the
            # slot was taken by the pool before the callback, hand it back.
            self.pool.release(revoked.spec.gpu_name, revoked.spec.region_name)
            return
        worker = super().request_replacement(revoked)
        self.replacements_admitted += 1
        if self.on_replacement_admitted is not None:
            self.on_replacement_admitted(self.session, worker)


class _FleetJob:
    """Runtime bundle for one job of the fleet."""

    def __init__(self, spec: JobSpec, session: TrainingSession,
                 controller: FleetJobController):
        self.spec = spec
        self.session = session
        self.controller = controller
        self.stalled = False
        self.stalled_at = 0.0
        self.started = False

    def end_time(self, now: float) -> float:
        """When the job stopped mattering: finish, stall, or the present."""
        if self.session.finished:
            return self.session.trace.end_time
        return self.stalled_at if self.stalled else now


class FleetRun:
    """One fleet simulation, wired and ready to :meth:`run`.

    Args:
        scenario: The scenario to simulate.
        streams: Root random streams of this fleet (one sweep cell).
        catalog: Model catalog resolving job model names.
        price_catalog: Pricing used for fleet cost accounting.
        fast_forward: Core-path override forwarded to every session.
        scheduler: Fleet scheduler (``"wakeset"`` or ``"roundrobin"``);
            ``None`` reads ``REPRO_FLEET_SCHEDULER`` (default wake-set).
            Payloads are bit-identical either way.
        trace_level: Per-session trace level (``"full"`` or ``"summary"``);
            ``None`` reads ``REPRO_FLEET_TRACE_LEVEL`` (default full).
            Payloads are bit-identical either way.
    """

    def __init__(self, scenario: ScenarioSpec, streams: RandomStreams,
                 catalog: Optional[ModelCatalog] = None,
                 price_catalog: Optional[PriceCatalog] = None,
                 fast_forward: Optional[bool] = None,
                 scheduler: Optional[str] = None,
                 trace_level: Optional[str] = None):
        self.scenario = scenario
        self.streams = streams
        self.catalog = catalog if catalog is not None else default_catalog()
        self.prices = (price_catalog if price_catalog is not None
                       else default_price_catalog())
        self.fast_forward = fast_forward
        self.scheduler = scheduler if scheduler is not None else _scheduler_default()
        if self.scheduler not in FLEET_SCHEDULERS:
            known = ", ".join(FLEET_SCHEDULERS)
            raise ConfigurationError(
                f"unknown fleet scheduler {self.scheduler!r}; known: {known}")
        self.trace_level = (trace_level if trace_level is not None
                            else _trace_level_default())
        epoch = (scenario.epoch_hour_utc if scenario.epoch_hour_utc is not None
                 else float(streams.get("epoch").uniform(0, 24)))
        self.simulator = Simulator(epoch_hour_utc=epoch)
        self.pool = TransientPool(self.simulator, scenario.pool_capacity,
                                  reclaim_seconds=scenario.reclaim_seconds)
        self.revocation_model = RevocationModel(rng=streams.get("revocation"))
        self.revocation_hours_local: List[float] = []
        #: Live completion counters: bumped by the session-finished and
        #: stall hooks so the run loop never scans all N jobs per event.
        self._jobs_finished = 0
        self._jobs_stalled = 0
        self.jobs: List[_FleetJob] = [self._wire_job(spec)
                                      for spec in scenario.jobs]
        self._job_of: Dict[TrainingSession, _FleetJob] = {
            job.session: job for job in self.jobs}

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def _wire_job(self, spec: JobSpec) -> _FleetJob:
        profile = self.catalog.profile(spec.model_name)
        job = TrainingJob(profile=profile, total_steps=spec.total_steps,
                          checkpoint_interval_steps=spec.checkpoint_interval_steps)
        session = TrainingSession(
            self.simulator, spec.cluster(), job,
            streams=self.streams.spawn(f"job:{spec.name}"),
            steps_per_event=spec.steps_per_event,
            fast_forward=self.fast_forward,
            trace_level=self.trace_level)
        controller = FleetJobController(
            session, self.pool, queue_replacements=spec.queue_replacements,
            on_replacement_admitted=self._schedule_revocation,
            config=ControllerConfig(
                auto_mitigate_bottleneck=spec.auto_mitigate_bottleneck,
                poll_interval_seconds=self.scenario.poll_interval_seconds))
        # Initial workers reserve their pool slots at fleet launch, before
        # any job starts training (the spec validated the demand fits).
        for gpu, region in spec.workers:
            self.pool.acquire(gpu, region)
        session.on_finished.append(self._note_finished)
        fleet_job = _FleetJob(spec, session, controller)
        self.simulator.schedule(spec.start_delay_seconds,
                                lambda _sim, fj=fleet_job: self._start_job(fj),
                                label=f"fleet:start:{spec.name}")
        return fleet_job

    def _start_job(self, fleet_job: _FleetJob) -> None:
        fleet_job.started = True
        fleet_job.session.start()
        fleet_job.controller.start_monitoring()
        self._schedule_launch_revocations(
            fleet_job.session, list(fleet_job.session.workers.values()))

    def _note_finished(self, session: TrainingSession) -> None:
        """A job completed: count it and return surviving servers."""
        self._jobs_finished += 1
        for worker in session.active_workers():
            if worker.is_transient:
                self.pool.release(worker.spec.gpu_name, worker.spec.region_name)

    def _schedule_launch_revocations(self, session: TrainingSession,
                                     workers: List[WorkerState]) -> None:
        """Draw the launch-time fates of a job's workers, batched.

        Consecutive workers sharing a ``(gpu, region)`` placement draw
        their fates through one :meth:`RevocationModel.sample_batch` call —
        the batched sampler consumes the revocation stream exactly like the
        per-worker draws it replaces, so payloads are unchanged.
        """
        index = 0
        count = len(workers)
        while index < count:
            spec = workers[index].spec
            gpu, region_name = spec.gpu_name, spec.region_name
            end = index + 1
            while (end < count and workers[end].spec.gpu_name == gpu
                   and workers[end].spec.region_name == region_name):
                end += 1
            region = get_region(region_name)
            launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
            outcomes = self.revocation_model.sample_batch(
                gpu, region_name, end - index,
                launch_hour_local=launch_hour, stressed=True)
            for worker, outcome in zip(workers[index:end], outcomes):
                self._schedule_revocation_outcome(session, worker, outcome)
            index = end

    def _schedule_revocation(self, session: TrainingSession,
                             worker: WorkerState) -> None:
        """Draw one worker's fate from the calibrated revocation model.

        The draw happens at launch time using the region's *local* hour of
        day, exactly like the simulated provider does, so fleet-level
        revocations carry the paper's hour-of-day clustering (Fig. 9).
        """
        region = get_region(worker.spec.region_name)
        launch_hour = region.local_hour(self.simulator.hour_of_day_utc())
        outcome = self.revocation_model.sample(worker.spec.gpu_name,
                                               worker.spec.region_name,
                                               launch_hour_local=launch_hour,
                                               stressed=True)
        self._schedule_revocation_outcome(session, worker, outcome)

    def _schedule_revocation_outcome(self, session: TrainingSession,
                                     worker: WorkerState,
                                     outcome: RevocationOutcome) -> None:
        """Turn a sampled fate into a scheduled revocation event (if any)."""
        if not outcome.revoked:
            # The server survives to the 24-hour reclamation; fleet jobs
            # complete well before, so no termination event is scheduled.
            return
        gpu, region_name = worker.spec.gpu_name, worker.spec.region_name

        def revoke(_sim: Simulator) -> None:
            if session.finished or not worker.active:
                return
            self.revocation_hours_local.append(
                float(outcome.revocation_hour_local))
            self.pool.revoke(gpu, region_name)
            session.handle_revocation(worker.worker_id)
            self._check_stalled(session)

        self.simulator.schedule(outcome.lifetime_seconds, revoke,
                                label=f"fleet:revoke:{worker.worker_id}")

    def _check_stalled(self, session: TrainingSession) -> None:
        """Detect a job that lost every worker with no replacement coming.

        Such a job can never finish: stop its monitoring loop so the heap
        drains instead of polling forever, and mark it stalled.
        """
        fleet_job = self._job_of.get(session)
        if fleet_job is None:
            return
        if (not session.finished and not session.active_workers()
                and fleet_job.controller.replacements_pending == 0
                and not fleet_job.stalled):
            fleet_job.stalled = True
            fleet_job.stalled_at = self.simulator.now
            fleet_job.controller.stop_monitoring()
            self._jobs_stalled += 1

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Run the fleet to completion and return the JSON payload.

        The wake-set scheduler (default) maps the heap top to its owning
        session and lets only that session fast-forward; the round-robin
        reference offers a span to every unfinished session per event.
        Both stop the moment every job finished or stalled — a stalled job
        has no queued replacement left by definition, so nothing in the
        heap (pool reclaim returns, stale revocation draws) can revive it,
        and draining events up to a day in the future would inflate the
        fleet clock past the last meaningful moment.  Payloads are
        bit-identical across schedulers.
        """
        max_events = MAX_EVENTS_PER_JOB * len(self.jobs)
        if self.scheduler == "roundrobin":
            processed = self._run_roundrobin(max_events)
        else:
            processed = self._run_wakeset(max_events)
        #: Events processed (chunk completions + fired heap events) —
        #: the throughput numerator of ``benchmarks/fleet_baseline.py``.
        self.events_processed = processed
        if processed >= max_events:
            raise SimulationError(
                f"fleet {self.scenario.name!r} exceeded {max_events} events")
        return self._payload()

    def _run_wakeset(self, max_events: int) -> int:
        """O(1)-per-event loop driven by heap-top event ownership.

        Only the session owning the next-due chunk event can replay a
        fast-forward span (any other session's offer would find a foreign
        event first and decline); everything else — job starts, pool
        grants, revocations, controller polls — reaches the disturbed
        session through ordinary heap events, after which its next chunk
        surfaces at the top and wakes it again.
        """
        sim = self.simulator
        peek_next = sim.peek_next
        step = sim.step
        jobs_total = len(self.jobs)
        processed = 0
        while processed < max_events:
            if self._jobs_finished + self._jobs_stalled >= jobs_total:
                break
            top = peek_next()
            if top is None:
                break
            owner = top.owner
            if owner is not None:
                replayed = owner._fast_forward(max_events - processed, top=top)
                if replayed:
                    processed += replayed
                    continue
            if step() is None:
                break
            processed += 1
        return processed

    def _run_roundrobin(self, max_events: int) -> int:
        """The original O(jobs)-per-event loop, kept as the reference.

        Selected with ``REPRO_FLEET_SCHEDULER=roundrobin``; the wake-set
        scheduler must reproduce its payloads bit for bit.  Offers go
        through :meth:`TrainingSession.fast_forward_probed`, which keeps
        the PR 3 per-offer cost model (heap peek + O(workers) id-set
        probe, no disturbance-horizon cache), so the fleet baseline
        measures the scheduler redesign against the loop it replaced
        rather than against a reference that silently inherits it.
        """
        processed = 0
        while processed < max_events:
            for fleet_job in self.jobs:
                if not fleet_job.session.finished:
                    processed += fleet_job.session.fast_forward_probed(
                        max_events - processed)
            if all(job.session.finished or job.stalled for job in self.jobs):
                break
            if self.simulator.step() is None:
                break
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    def _job_cost(self, fleet_job: _FleetJob, end_time: float) -> float:
        """Cloud cost of one job: per-second billing of workers and PSs."""
        cost = 0.0
        for worker in fleet_job.session.workers.values():
            stop = worker.revoked_at if worker.revoked_at is not None else end_time
            span = max(0.0, stop - worker.joined_at)
            machine = gpu_worker_machine(worker.spec.gpu_name)
            cost += self.prices.cost(machine, worker.is_transient, span)
        cost += fleet_job.spec.num_parameter_servers * self.prices.cost(
            PARAMETER_SERVER_MACHINE, False, end_time)
        # Parameter servers added mid-run by bottleneck mitigation bill
        # from the moment they were provisioned.
        for action in fleet_job.controller.actions:
            if action.kind == "mitigation":
                cost += self.prices.cost(PARAMETER_SERVER_MACHINE, False,
                                         max(0.0, end_time - action.time))
        return cost

    def _payload(self) -> Dict[str, Any]:
        jobs: List[Dict[str, Any]] = []
        makespan = 0.0
        total_cost = 0.0
        for fleet_job in self.jobs:
            session = fleet_job.session
            completed = session.finished
            end = fleet_job.end_time(self.simulator.now)
            makespan = max(makespan, end)
            cost = self._job_cost(fleet_job, end)
            total_cost += cost
            controller = fleet_job.controller
            summary = controller.summary()
            jobs.append({
                "name": fleet_job.spec.name,
                "model": fleet_job.spec.model_name,
                "workers": len(fleet_job.spec.workers),
                "completed": completed,
                "stalled": fleet_job.stalled,
                "steps_done": session.cluster_steps,
                "total_steps": fleet_job.spec.total_steps,
                "duration_seconds": end - fleet_job.spec.start_delay_seconds,
                "end_time_seconds": end,
                "cost_usd": cost,
                "revocations": summary["num_revocations_seen"],
                "replacements_admitted": controller.replacements_admitted,
                "replacements_denied": controller.replacements_denied,
                "replacements_pending": controller.replacements_pending,
                "ps_mitigations": summary["extra_parameter_servers"],
                "final_active_workers": len(session.active_workers()),
            })
        pool_stats = self.pool.stats()
        return {
            "scenario": self.scenario.name,
            "epoch_hour_utc": self.simulator.epoch_hour_utc,
            "jobs_total": len(self.jobs),
            "jobs_completed": sum(1 for job in jobs if job["completed"]),
            "jobs_stalled": sum(1 for job in jobs if job["stalled"]),
            "makespan_seconds": makespan,
            "total_cost_usd": total_cost,
            "revocations": pool_stats["revocations"],
            "replacements_admitted": sum(j["replacements_admitted"] for j in jobs),
            "replacements_denied": pool_stats["replacements_denied"],
            "replacement_denial_rate": pool_stats["replacement_denial_rate"],
            "ps_mitigations": sum(j["ps_mitigations"] for j in jobs),
            "revocation_hours_local": list(self.revocation_hours_local),
            "pool": pool_stats,
            "jobs": jobs,
        }


def run_fleet(scenario: ScenarioSpec, streams: RandomStreams,
              catalog: Optional[ModelCatalog] = None,
              price_catalog: Optional[PriceCatalog] = None,
              fast_forward: Optional[bool] = None,
              scheduler: Optional[str] = None,
              trace_level: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one fleet and return its JSON-encodable summary payload."""
    return FleetRun(scenario, streams, catalog=catalog,
                    price_catalog=price_catalog, fast_forward=fast_forward,
                    scheduler=scheduler, trace_level=trace_level).run()


# ---------------------------------------------------------------------------
# Sweep integration.
# ---------------------------------------------------------------------------
def fleet_cell(cell: SweepCell, streams: RandomStreams,
               context: Any) -> Dict[str, Any]:
    """Sweep cell: simulate one whole fleet (one scenario replicate).

    ``context`` is the shared :class:`~repro.workloads.catalog.ModelCatalog`
    (its fingerprint keys the result cache).
    """
    scenario = ScenarioSpec.from_params(cell.params["scenario"])
    return run_fleet(scenario, streams, catalog=context)


def build_fleet_spec(scenario: ScenarioSpec, replicates: int = 2) -> SweepSpec:
    """One sweep cell per fleet replicate of ``scenario``."""
    if replicates < 1:
        raise SimulationError("replicates must be >= 1")
    return SweepSpec(f"fleet_{scenario.name}",
                     axes={"replicate": list(range(int(replicates)))},
                     fixed={"scenario": scenario.to_params()})


def run_scenario(scenario: ScenarioSpec, replicates: int = 2, seed: int = 0,
                 workers: Optional[int] = None, cache_dir: Optional[str] = None,
                 catalog: Optional[ModelCatalog] = None) -> SweepResult:
    """Run a scenario's replicates through the sweep engine.

    Serial and parallel executions are bit-identical, and with a
    ``cache_dir`` interrupted scenario sweeps resume from completed cells,
    both inherited from :class:`~repro.sweeps.SweepRunner`.
    """
    spec = build_fleet_spec(scenario, replicates)
    runner = SweepRunner(workers=workers, cache_dir=cache_dir, seed=seed)
    return runner.run(spec, fleet_cell,
                      context=catalog if catalog is not None else default_catalog())
